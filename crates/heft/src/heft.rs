//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., TPDS 2002).
//!
//! 1. Compute upward ranks with mean expected execution and communication
//!    costs and order tasks by decreasing rank (a topological order).
//! 2. For each task in order, compute its earliest finish time on every
//!    processor using the insertion-based policy and commit it to the
//!    processor minimizing EFT.
//!
//! Durations are the **expected** execution times `UL·B` — the paper's
//! schedulers see only expectations (§1). The reported `makespan` is the
//! critical-path evaluation of the resulting schedule's disjunctive graph,
//! which matches the internal timeline by construction (asserted in tests)
//! and keeps `MakespanHEFT` on the same footing as every other makespan in
//! the workspace.

use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_sched::schedule::Schedule;
use rds_sched::timing::TimedSchedule;

use crate::ranks::rank_order;
use crate::timeline::ProcTimeline;

/// Output of a list-scheduling heuristic.
#[derive(Debug, Clone)]
pub struct HeftResult {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Start/finish times under expected durations.
    pub timed: TimedSchedule,
    /// Expected makespan `M₀` (critical path of the disjunctive graph).
    pub makespan: f64,
}

/// Runs HEFT on an instance.
///
/// ```
/// use rds_heft::heft_schedule;
/// use rds_sched::InstanceSpec;
///
/// let inst = InstanceSpec::new(30, 4).seed(7).build()?;
/// let result = heft_schedule(&inst);
/// assert!(result.makespan > 0.0);
/// assert!(result.schedule.validate_against(&inst.graph).is_ok());
/// # Ok::<(), String>(())
/// ```
///
/// # Panics
/// Panics if the instance has no processors (impossible through
/// [`rds_platform::Platform`] constructors) or the internal schedule fails
/// validation, which would indicate a bug.
pub fn heft_schedule(inst: &Instance) -> HeftResult {
    schedule_by_priority_list(
        inst,
        &rank_order(&inst.graph, &inst.platform, &inst.timing),
        true,
    )
}

/// List-schedules tasks following an explicit priority order (must be a
/// topological order). Exposed so CPOP and the ablation benches (insertion
/// on/off) can share the machinery.
pub fn schedule_by_priority_list(inst: &Instance, order: &[TaskId], insertion: bool) -> HeftResult {
    let n = inst.task_count();
    let m = inst.proc_count();
    debug_assert_eq!(order.len(), n);

    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut assigned_proc: Vec<ProcId> = vec![ProcId(0); n];
    let mut finish: Vec<f64> = vec![0.0; n];

    // Type-affinity filtering only engages on typed platforms with
    // constrained tasks, so untyped instances walk the exact same EFT loop
    // as before (bit-identical schedules).
    let typed = inst.platform.is_typed() && inst.graph.has_affinity_constraints();

    for &t in order {
        let ti = t.index();
        let mask = inst.graph.affinity_of(t);
        // A task whose mask matches no processor type falls back to the
        // full processor set (keeps list scheduling infallible; validation
        // against impossible masks belongs to the caller).
        let restrict = typed
            && mask != u64::MAX
            && inst.platform.procs().any(|p| inst.platform.supports(p, mask));
        let mut best: Option<(f64, f64, ProcId)> = None; // (eft, est, proc)
        for p in inst.platform.procs() {
            if restrict && !inst.platform.supports(p, mask) {
                continue;
            }
            // Ready time on p: all predecessor data must have arrived.
            let mut ready = 0.0_f64;
            for e in inst.graph.predecessors(t) {
                let q = e.task;
                let arrive = finish[q.index()]
                    + inst.platform.comm_time(e.data, assigned_proc[q.index()], p);
                if arrive > ready {
                    ready = arrive;
                }
            }
            let dur = inst.timing.expected(ti, p);
            let est = timelines[p.index()].earliest_start(ready, dur, insertion);
            let eft = est + dur;
            let better = match best {
                None => true,
                Some((beft, _, bp)) => {
                    eft < beft - 1e-12 || (eft <= beft + 1e-12 && p < bp && eft < beft + 1e-12)
                }
            };
            if better {
                best = Some((eft, est, p));
            }
        }
        let (eft, est, p) = best.expect("platform has at least one processor");
        timelines[p.index()].commit(est, eft - est, t);
        assigned_proc[ti] = p;
        finish[ti] = eft;
    }

    let proc_tasks: Vec<Vec<TaskId>> = timelines.iter().map(ProcTimeline::task_order).collect();
    let schedule =
        Schedule::from_proc_lists(n, proc_tasks).expect("list scheduling covers every task once");
    let timed =
        rds_sched::timing::evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &schedule)
            .expect("list schedule respects precedence");
    let makespan = timed.makespan;
    HeftResult {
        schedule,
        timed,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_graph::TaskGraphBuilder;
    use rds_platform::{Platform, TimingModel};
    use rds_sched::instance::InstanceSpec;
    use rds_stats::matrix::Matrix;

    /// The classic 3-task fixture where greedy EFT is checkable by hand:
    /// chain 0 -> 1 plus independent 2.
    fn tiny_instance() -> Instance {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 10.0)
            .add_edge(TaskId(0), TaskId(2), 10.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(2, 1.0).unwrap();
        // proc 0 fast for everyone, proc 1 slow.
        let bcet = Matrix::from_rows(&[&[2.0, 4.0], &[2.0, 4.0], &[2.0, 4.0]]);
        let t = TimingModel::deterministic(bcet).unwrap();
        Instance::new(g, p, t).unwrap()
    }

    #[test]
    fn heft_on_tiny_instance() {
        let inst = tiny_instance();
        let r = heft_schedule(&inst);
        // Task 0 goes to p0 (EFT 2 vs 4). Then tasks 1,2 (equal ranks, id
        // order): task 1 on p0 (ready 2, EFT 4) beats p1 (ready 2+10=12,
        // EFT 16). Task 2 on p0: ready 2, start 4 (after task 1), EFT 6;
        // p1: ready 12, EFT 16 -> p0.
        assert_eq!(r.schedule.proc_of(TaskId(0)), ProcId(0));
        assert_eq!(r.schedule.proc_of(TaskId(1)), ProcId(0));
        assert_eq!(r.schedule.proc_of(TaskId(2)), ProcId(0));
        assert_eq!(r.makespan, 6.0);
    }

    #[test]
    fn heft_beats_random_on_average() {
        use crate::random::random_schedule;
        use rds_stats::rng::rng_from_seed;
        let mut wins = 0;
        let total = 10;
        for seed in 0..total {
            let inst = InstanceSpec::new(50, 4).seed(seed).build().unwrap();
            let heft = heft_schedule(&inst);
            let mut rng = rng_from_seed(seed ^ 0xabcd);
            let rand_s = random_schedule(&inst, &mut rng);
            let rand_m = rds_sched::timing::evaluate_expected(
                &inst.graph,
                &inst.platform,
                &inst.timing,
                &rand_s,
            )
            .unwrap()
            .makespan;
            if heft.makespan < rand_m {
                wins += 1;
            }
        }
        assert!(wins >= 8, "HEFT won only {wins}/{total} against random");
    }

    #[test]
    fn heft_schedule_is_valid_and_deterministic() {
        let inst = InstanceSpec::new(60, 4).seed(5).build().unwrap();
        let a = heft_schedule(&inst);
        let b = heft_schedule(&inst);
        assert_eq!(a.schedule, b.schedule);
        assert!(a.schedule.validate_against(&inst.graph).is_ok());
        assert!(a.makespan > 0.0);
    }

    #[test]
    fn insertion_never_hurts() {
        for seed in 0..8 {
            let inst = InstanceSpec::new(40, 3)
                .seed(seed)
                .ccr(1.0)
                .build()
                .unwrap();
            let order = rank_order(&inst.graph, &inst.platform, &inst.timing);
            let with = schedule_by_priority_list(&inst, &order, true);
            let without = schedule_by_priority_list(&inst, &order, false);
            assert!(
                with.makespan <= without.makespan + 1e-9,
                "seed {seed}: insertion {} > append {}",
                with.makespan,
                without.makespan
            );
        }
    }

    #[test]
    fn makespan_lower_bounded_by_best_critical_path() {
        // The makespan can never beat the critical path under per-task best
        // expected durations with zero communication.
        let inst = InstanceSpec::new(40, 4).seed(9).build().unwrap();
        let best_dur = |t: TaskId| {
            inst.platform
                .procs()
                .map(|p| inst.expected(t, p))
                .fold(f64::INFINITY, f64::min)
        };
        let lower = rds_graph::paths::critical_path_length(&inst.graph, best_dur, |_, _, _| 0.0);
        let r = heft_schedule(&inst);
        assert!(r.makespan >= lower - 1e-9, "{} < {lower}", r.makespan);
    }

    #[test]
    fn typed_affinity_masks_restrict_placement() {
        // Two processors, types 0 and 1; every task prefers the *slow*
        // proc 1 by affinity — HEFT must obey the mask even though proc 0
        // would give better finish times.
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 10.0)
            .add_edge(TaskId(0), TaskId(2), 10.0);
        let mut g = b.build().unwrap();
        for t in 0..3 {
            g.set_affinity(TaskId(t), 1 << 1);
        }
        let p = Platform::uniform(2, 1.0)
            .unwrap()
            .with_core_types(vec![0, 1])
            .unwrap();
        let bcet = Matrix::from_rows(&[&[2.0, 4.0], &[2.0, 4.0], &[2.0, 4.0]]);
        let t = TimingModel::deterministic(bcet).unwrap();
        let inst = Instance::new(g, p, t).unwrap();
        let r = heft_schedule(&inst);
        for task in 0..3 {
            assert_eq!(r.schedule.proc_of(TaskId(task)), ProcId(1));
        }
    }

    #[test]
    fn untyped_platform_ignores_affinity_bit_identically() {
        // Affinity annotations on an *untyped* platform must not change the
        // schedule at all.
        let base = InstanceSpec::new(40, 4).seed(13).build().unwrap();
        let reference = heft_schedule(&base);
        let mut g = base.graph.clone();
        for t in 0..40 {
            g.set_affinity(TaskId(t), 0b1);
        }
        let annotated =
            Instance::new(g, base.platform.clone(), base.timing.clone()).unwrap();
        let r = heft_schedule(&annotated);
        assert_eq!(r.schedule, reference.schedule);
        assert_eq!(r.makespan.to_bits(), reference.makespan.to_bits());
    }

    #[test]
    fn impossible_mask_falls_back_to_all_processors() {
        // Mask selects type 5, which no processor has: HEFT falls back to
        // the unrestricted EFT loop instead of failing.
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(1), 1.0);
        let mut g = b.build().unwrap();
        g.set_affinity(TaskId(0), 1 << 5);
        let p = Platform::uniform(2, 1.0)
            .unwrap()
            .with_core_types(vec![0, 1])
            .unwrap();
        let bcet = Matrix::from_rows(&[&[2.0, 4.0], &[2.0, 4.0]]);
        let t = TimingModel::deterministic(bcet).unwrap();
        let inst = Instance::new(g, p, t).unwrap();
        let r = heft_schedule(&inst);
        assert!(r.schedule.validate_against(&inst.graph).is_ok());
        // Fell back to the fast processor.
        assert_eq!(r.schedule.proc_of(TaskId(0)), ProcId(0));
    }

    #[test]
    fn single_processor_heft_serializes_everything() {
        let inst = InstanceSpec::new(20, 1).seed(2).build().unwrap();
        let r = heft_schedule(&inst);
        assert_eq!(r.schedule.tasks_on(ProcId(0)).len(), 20);
        // Makespan equals the sum of expected durations (no gaps needed:
        // zero comm on one processor means tasks can run back-to-back).
        let sum: f64 = (0..20).map(|i| inst.timing.expected(i, ProcId(0))).sum();
        assert!((r.makespan - sum).abs() < 1e-9);
    }
}

//! The null baseline: a uniformly random valid schedule.
//!
//! Mirrors the GA's random chromosome construction (§4.2.2): a random
//! topological order plus an independent uniform processor pick per task.

use rand::Rng;

use rds_graph::topo::random_topological_order;
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_sched::schedule::Schedule;

/// Draws a uniformly random valid schedule for the instance.
pub fn random_schedule<R: Rng + ?Sized>(inst: &Instance, rng: &mut R) -> Schedule {
    let order = random_topological_order(&inst.graph, rng);
    let m = inst.proc_count();
    let assignment: Vec<ProcId> = (0..inst.task_count())
        .map(|_| ProcId(rng.gen_range(0..m) as u32))
        .collect();
    Schedule::from_order_and_assignment(&order, &assignment, m)
        .expect("random topological order covers every task once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    #[test]
    fn random_schedules_are_valid() {
        let inst = InstanceSpec::new(40, 4).seed(1).build().unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..20 {
            let s = random_schedule(&inst, &mut rng);
            assert!(s.validate_against(&inst.graph).is_ok());
            assert_eq!(s.task_count(), 40);
        }
    }

    #[test]
    fn random_schedules_differ() {
        let inst = InstanceSpec::new(30, 3).seed(1).build().unwrap();
        let mut rng = rng_from_seed(3);
        let a = random_schedule(&inst, &mut rng);
        let b = random_schedule(&inst, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn uses_all_processors_eventually() {
        let inst = InstanceSpec::new(50, 4).seed(1).build().unwrap();
        let mut rng = rng_from_seed(4);
        let s = random_schedule(&inst, &mut rng);
        let used = (0..4)
            .filter(|&p| !s.tasks_on(ProcId(p)).is_empty())
            .count();
        assert_eq!(used, 4, "50 tasks over 4 procs should hit each");
    }
}

//! Partial-graph HEFT rescheduling — the planner behind migrate-on-failure
//! recovery.
//!
//! Given an execution frozen mid-flight (some tasks finished, some
//! processors dead, each survivor busy until some time), re-runs HEFT's
//! upward-rank + insertion-EFT pass over the *unfinished* subgraph on the
//! *surviving* processors. The result extends the past instead of
//! rewriting it: finished tasks keep their realized placements and finish
//! times, and data produced on a dead processor is still consumable (the
//! fault model assumes storage outlives compute).
//!
//! `rds_sched::recovery` embeds the same rank + EFT mathematics inline
//! (the crate dependency points the other way); this module is the public
//! entry point for callers that already sit above `rds-heft` — e.g. a
//! driver restarting a paused experiment, or tooling exploring "what would
//! HEFT do from here".

use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_sched::schedule::Schedule;

use crate::ranks::rank_order;
use crate::timeline::ProcTimeline;

/// A frozen execution prefix to reschedule from.
#[derive(Debug, Clone)]
pub struct PartialState {
    /// Per-task completion: `Some((proc, finish_time))` for tasks already
    /// finished (or irrevocably committed), `None` for tasks to plan.
    pub finished: Vec<Option<(ProcId, f64)>>,
    /// Per-processor liveness; dead processors receive no new work.
    pub alive: Vec<bool>,
    /// Earliest time each alive processor can accept new work (ignored for
    /// dead processors).
    pub free_at: Vec<f64>,
}

impl PartialState {
    /// The initial state: nothing finished, everything alive and free at 0.
    #[must_use]
    pub fn fresh(tasks: usize, procs: usize) -> Self {
        Self {
            finished: vec![None; tasks],
            alive: vec![true; procs],
            free_at: vec![0.0; procs],
        }
    }
}

/// Result of a partial reschedule.
#[derive(Debug, Clone)]
pub struct RescheduleResult {
    /// Combined schedule: finished tasks on their realized processors (in
    /// finish-time order), re-planned tasks on their new ones.
    pub schedule: Schedule,
    /// Per-task finish estimates: realized values for finished tasks,
    /// expected-duration EFT estimates for re-planned ones.
    pub est_finish: Vec<f64>,
    /// Estimated overall makespan (max over `est_finish`).
    pub est_makespan: f64,
    /// Number of tasks that were re-planned.
    pub replanned: usize,
}

/// Ways a partial reschedule can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RescheduleError {
    /// `alive`/`free_at`/`finished` lengths disagree with the instance.
    ShapeMismatch,
    /// No processor is alive.
    NoAliveProcessor,
    /// A finished task's placement names a processor outside the platform.
    InvalidPlacement(TaskId),
}

impl std::fmt::Display for RescheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShapeMismatch => write!(f, "state dimensions disagree with the instance"),
            Self::NoAliveProcessor => write!(f, "no processor is alive"),
            Self::InvalidPlacement(t) => write!(f, "finished task {t} placed off-platform"),
        }
    }
}

impl std::error::Error for RescheduleError {}

/// Re-runs HEFT over the unfinished subgraph of `inst` on the surviving
/// processors described by `state`.
///
/// Tasks are visited in full-graph upward-rank order (finished ones are
/// skipped), so every unfinished task sees its predecessors either realized
/// (from `state.finished`) or already re-planned. Processor choice is
/// insertion-based earliest finish time, floored at the processor's
/// `free_at`.
///
/// # Errors
/// Returns a [`RescheduleError`] on dimension mismatches, when every
/// processor is dead, or when a finished task's placement is off-platform.
pub fn heft_reschedule(
    inst: &Instance,
    state: &PartialState,
) -> Result<RescheduleResult, RescheduleError> {
    let n = inst.task_count();
    let m = inst.proc_count();
    if state.finished.len() != n || state.alive.len() != m || state.free_at.len() != m {
        return Err(RescheduleError::ShapeMismatch);
    }
    if !state.alive.iter().any(|&a| a) {
        return Err(RescheduleError::NoAliveProcessor);
    }
    for (t, f) in state.finished.iter().enumerate() {
        if let Some((p, _)) = f {
            if p.index() >= m {
                return Err(RescheduleError::InvalidPlacement(TaskId(t as u32)));
            }
        }
    }

    let order = rank_order(&inst.graph, &inst.platform, &inst.timing);
    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut est_finish: Vec<f64> = (0..n)
        .map(|t| state.finished[t].map_or(f64::NAN, |(_, f)| f))
        .collect();
    let mut placement: Vec<ProcId> = (0..n)
        .map(|t| state.finished[t].map_or(ProcId(0), |(p, _)| p))
        .collect();
    let mut replanned = 0usize;

    for &t in &order {
        let ti = t.index();
        if state.finished[ti].is_some() {
            continue;
        }
        let mut best: Option<(f64, f64, ProcId)> = None; // (eft, est, proc)
        for p in inst.platform.procs() {
            if !state.alive[p.index()] {
                continue;
            }
            let mut ready = state.free_at[p.index()];
            for e in inst.graph.predecessors(t) {
                let q = e.task;
                debug_assert!(
                    !est_finish[q.index()].is_nan(),
                    "rank order visits predecessors first"
                );
                let arrive = est_finish[q.index()]
                    + inst.platform.comm_time(e.data, placement[q.index()], p);
                if arrive > ready {
                    ready = arrive;
                }
            }
            let dur = inst.timing.expected(ti, p);
            let est = timelines[p.index()].earliest_start(ready, dur, true);
            let eft = est + dur;
            // Same comparison as `schedule_by_priority_list`, so a fresh
            // state reproduces plain HEFT exactly.
            let better = match best {
                None => true,
                Some((beft, _, bp)) => {
                    eft < beft - 1e-12 || (eft <= beft + 1e-12 && p < bp && eft < beft + 1e-12)
                }
            };
            if better {
                best = Some((eft, est, p));
            }
        }
        let (eft, est, p) = best.expect("at least one alive processor was verified above");
        timelines[p.index()].commit(est, eft - est, t);
        est_finish[ti] = eft;
        placement[ti] = p;
        replanned += 1;
    }

    // Combined schedule: finished tasks prefixed in realized finish order,
    // replanned tasks appended in their new timeline order.
    let mut proc_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut finished_by_proc: Vec<Vec<(f64, TaskId)>> = vec![Vec::new(); m];
    for (t, f) in state.finished.iter().enumerate() {
        if let Some((p, at)) = f {
            finished_by_proc[p.index()].push((*at, TaskId(t as u32)));
        }
    }
    for (p, done) in finished_by_proc.iter_mut().enumerate() {
        done.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        proc_tasks[p].extend(done.iter().map(|&(_, t)| t));
        proc_tasks[p].extend(timelines[p].task_order());
    }
    let schedule = Schedule::from_proc_lists(n, proc_tasks)
        .expect("finished and replanned tasks partition the task set");
    let est_makespan = est_finish.iter().copied().fold(0.0f64, f64::max);
    Ok(RescheduleResult {
        schedule,
        est_finish,
        est_makespan,
        replanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heft::heft_schedule;
    use rds_sched::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(40, 4)
            .seed(seed)
            .uncertainty_level(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_state_reproduces_plain_heft() {
        for seed in 0..6 {
            let i = inst(seed);
            let plain = heft_schedule(&i);
            let fresh = PartialState::fresh(i.task_count(), i.proc_count());
            let re = heft_reschedule(&i, &fresh).unwrap();
            assert_eq!(re.schedule, plain.schedule, "seed {seed}");
            assert_eq!(re.replanned, i.task_count());
            assert!((re.est_makespan - plain.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn reschedule_after_failure_avoids_dead_processor() {
        let i = inst(7);
        let plain = heft_schedule(&i);
        // Freeze the execution at 40% of the makespan: everything that
        // finished by then is done, processor 0 dies, survivors are busy
        // until the freeze point.
        let cut = 0.4 * plain.makespan;
        let finished: Vec<Option<(ProcId, f64)>> = (0..i.task_count())
            .map(|t| {
                let tid = TaskId(t as u32);
                let f = plain.timed.finish_of(tid);
                (f <= cut).then(|| (plain.schedule.proc_of(tid), f))
            })
            .collect();
        assert!(
            finished.iter().any(Option::is_some) && finished.iter().any(Option::is_none),
            "cut must split the task set"
        );
        let mut alive = vec![true; i.proc_count()];
        alive[0] = false;
        let state = PartialState {
            finished: finished.clone(),
            alive,
            free_at: vec![cut; i.proc_count()],
        };
        let re = heft_reschedule(&i, &state).unwrap();
        assert!(re.schedule.validate_against(&i.graph).is_ok());
        // Dead processor receives no *new* work.
        for &t in re.schedule.tasks_on(ProcId(0)) {
            assert!(
                finished[t.index()].is_some(),
                "{t} was newly planned onto the dead processor"
            );
        }
        // Re-planned tasks start no earlier than the freeze point.
        for (t, f) in finished.iter().enumerate() {
            if f.is_none() {
                assert!(re.est_finish[t] >= cut - 1e-9);
            }
        }
        assert!(re.est_makespan >= plain.makespan * 0.4);
        assert_eq!(
            re.replanned,
            finished.iter().filter(|f| f.is_none()).count()
        );
    }

    #[test]
    fn shape_and_liveness_errors() {
        let i = inst(1);
        let mut bad = PartialState::fresh(i.task_count(), i.proc_count());
        bad.alive = vec![false; i.proc_count()];
        assert!(matches!(
            heft_reschedule(&i, &bad),
            Err(RescheduleError::NoAliveProcessor)
        ));
        let wrong = PartialState::fresh(i.task_count() + 1, i.proc_count());
        assert!(matches!(
            heft_reschedule(&i, &wrong),
            Err(RescheduleError::ShapeMismatch)
        ));
    }
}

//! Partial-graph HEFT rescheduling — the planner behind migrate-on-failure
//! recovery.
//!
//! Given an execution frozen mid-flight (some tasks finished, some
//! processors dead, each survivor busy until some time), re-runs HEFT's
//! upward-rank + insertion-EFT pass over the *unfinished* subgraph on the
//! *surviving* processors. The result extends the past instead of
//! rewriting it: finished tasks keep their realized placements and finish
//! times, and data produced on a dead processor is still consumable (the
//! fault model assumes storage outlives compute).
//!
//! The rank + EFT core is shared with `rds_sched::recovery`'s runtime
//! replanner: both delegate to `rds_sched::replan::replan_partial` (the
//! crate dependency points the other way, so the single implementation
//! lives below in `rds-sched`). This module is the public entry point for
//! callers that already sit above `rds-heft` — e.g. a driver restarting a
//! paused experiment, or tooling exploring "what would HEFT do from here"
//! — and `tests/reschedule_crosscheck.rs` pins the two call paths to
//! identical output.

use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_sched::replan::{rank_order, replan_partial, FrozenState, ReplanError};
use rds_sched::schedule::Schedule;

/// A frozen execution prefix to reschedule from.
#[derive(Debug, Clone)]
pub struct PartialState {
    /// Per-task completion: `Some((proc, finish_time))` for tasks already
    /// finished (or irrevocably committed), `None` for tasks to plan.
    pub finished: Vec<Option<(ProcId, f64)>>,
    /// Per-processor liveness; dead processors receive no new work.
    pub alive: Vec<bool>,
    /// Earliest time each alive processor can accept new work (ignored for
    /// dead processors).
    pub free_at: Vec<f64>,
}

impl PartialState {
    /// The initial state: nothing finished, everything alive and free at 0.
    #[must_use]
    pub fn fresh(tasks: usize, procs: usize) -> Self {
        Self {
            finished: vec![None; tasks],
            alive: vec![true; procs],
            free_at: vec![0.0; procs],
        }
    }
}

/// Result of a partial reschedule.
#[derive(Debug, Clone)]
pub struct RescheduleResult {
    /// Combined schedule: finished tasks on their realized processors (in
    /// finish-time order), re-planned tasks on their new ones.
    pub schedule: Schedule,
    /// Per-task finish estimates: realized values for finished tasks,
    /// expected-duration EFT estimates for re-planned ones.
    pub est_finish: Vec<f64>,
    /// Estimated overall makespan (max over `est_finish`).
    pub est_makespan: f64,
    /// Number of tasks that were re-planned.
    pub replanned: usize,
}

/// Ways a partial reschedule can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RescheduleError {
    /// `alive`/`free_at`/`finished` lengths disagree with the instance.
    ShapeMismatch,
    /// No processor is alive.
    NoAliveProcessor,
    /// A finished task's placement names a processor outside the platform.
    InvalidPlacement(TaskId),
}

impl std::fmt::Display for RescheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShapeMismatch => write!(f, "state dimensions disagree with the instance"),
            Self::NoAliveProcessor => write!(f, "no processor is alive"),
            Self::InvalidPlacement(t) => write!(f, "finished task {t} placed off-platform"),
        }
    }
}

impl std::error::Error for RescheduleError {}

/// Re-runs HEFT over the unfinished subgraph of `inst` on the surviving
/// processors described by `state`.
///
/// Tasks are visited in full-graph upward-rank order (finished ones are
/// skipped), so every unfinished task sees its predecessors either realized
/// (from `state.finished`) or already re-planned. Processor choice is
/// insertion-based earliest finish time, floored at the processor's
/// `free_at`.
///
/// # Errors
/// Returns a [`RescheduleError`] on dimension mismatches, when every
/// processor is dead, or when a finished task's placement is off-platform.
pub fn heft_reschedule(
    inst: &Instance,
    state: &PartialState,
) -> Result<RescheduleResult, RescheduleError> {
    let n = inst.task_count();
    let m = inst.proc_count();
    let frozen = FrozenState {
        finished: state.finished.clone(),
        alive: state.alive.clone(),
        free_at: state.free_at.clone(),
        skip: vec![false; state.finished.len()],
    };
    let order = rank_order(inst);
    let result = replan_partial(inst, &order, &frozen).map_err(|e| match e {
        ReplanError::ShapeMismatch => RescheduleError::ShapeMismatch,
        ReplanError::NoAliveProcessor => RescheduleError::NoAliveProcessor,
        ReplanError::InvalidPlacement(t) => RescheduleError::InvalidPlacement(t),
    })?;

    // Combined schedule: finished tasks prefixed in realized finish order,
    // replanned tasks appended in their new timeline order.
    let mut proc_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut finished_by_proc: Vec<Vec<(f64, TaskId)>> = vec![Vec::new(); m];
    for (t, f) in state.finished.iter().enumerate() {
        if let Some((p, at)) = f {
            finished_by_proc[p.index()].push((*at, TaskId(t as u32)));
        }
    }
    for (p, done) in finished_by_proc.iter_mut().enumerate() {
        done.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        proc_tasks[p].extend(done.iter().map(|&(_, t)| t));
        proc_tasks[p].extend(result.proc_tasks[p].iter().copied());
    }
    let schedule = Schedule::from_proc_lists(n, proc_tasks)
        .expect("finished and replanned tasks partition the task set");
    Ok(RescheduleResult {
        schedule,
        est_finish: result.est_finish,
        est_makespan: result.est_makespan,
        replanned: result.replanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heft::heft_schedule;
    use rds_sched::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(40, 4)
            .seed(seed)
            .uncertainty_level(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_state_reproduces_plain_heft() {
        for seed in 0..6 {
            let i = inst(seed);
            let plain = heft_schedule(&i);
            let fresh = PartialState::fresh(i.task_count(), i.proc_count());
            let re = heft_reschedule(&i, &fresh).unwrap();
            assert_eq!(re.schedule, plain.schedule, "seed {seed}");
            assert_eq!(re.replanned, i.task_count());
            assert!((re.est_makespan - plain.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn reschedule_after_failure_avoids_dead_processor() {
        let i = inst(7);
        let plain = heft_schedule(&i);
        // Freeze the execution at 40% of the makespan: everything that
        // finished by then is done, processor 0 dies, survivors are busy
        // until the freeze point.
        let cut = 0.4 * plain.makespan;
        let finished: Vec<Option<(ProcId, f64)>> = (0..i.task_count())
            .map(|t| {
                let tid = TaskId(t as u32);
                let f = plain.timed.finish_of(tid);
                (f <= cut).then(|| (plain.schedule.proc_of(tid), f))
            })
            .collect();
        assert!(
            finished.iter().any(Option::is_some) && finished.iter().any(Option::is_none),
            "cut must split the task set"
        );
        let mut alive = vec![true; i.proc_count()];
        alive[0] = false;
        let state = PartialState {
            finished: finished.clone(),
            alive,
            free_at: vec![cut; i.proc_count()],
        };
        let re = heft_reschedule(&i, &state).unwrap();
        assert!(re.schedule.validate_against(&i.graph).is_ok());
        // Dead processor receives no *new* work.
        for &t in re.schedule.tasks_on(ProcId(0)) {
            assert!(
                finished[t.index()].is_some(),
                "{t} was newly planned onto the dead processor"
            );
        }
        // Re-planned tasks start no earlier than the freeze point.
        for (t, f) in finished.iter().enumerate() {
            if f.is_none() {
                assert!(re.est_finish[t] >= cut - 1e-9);
            }
        }
        assert!(re.est_makespan >= plain.makespan * 0.4);
        assert_eq!(
            re.replanned,
            finished.iter().filter(|f| f.is_none()).count()
        );
    }

    #[test]
    fn shape_and_liveness_errors() {
        let i = inst(1);
        let mut bad = PartialState::fresh(i.task_count(), i.proc_count());
        bad.alive = vec![false; i.proc_count()];
        assert!(matches!(
            heft_reschedule(&i, &bad),
            Err(RescheduleError::NoAliveProcessor)
        ));
        let wrong = PartialState::fresh(i.task_count() + 1, i.proc_count());
        assert!(matches!(
            heft_reschedule(&i, &wrong),
            Err(RescheduleError::ShapeMismatch)
        ));
    }
}

//! Stochastic-information-guided list scheduling — the paper's future
//! work (§6: "Our future works are directed toward guiding the scheduling
//! algorithm with stochastic information about the environment"),
//! implemented as a HEFT variant.
//!
//! Plain HEFT sees only the *expected* duration `E[c_ij] = UL_ij·b_ij`.
//! Under the realization law `c_ij ~ U(b_ij, (2·UL_ij−1)·b_ij)` the
//! standard deviation is available in closed form:
//!
//! ```text
//! σ_ij = ((2·UL_ij−1)·b_ij − b_ij) / √12 = (UL_ij − 1)·b_ij / √3
//! ```
//!
//! The stochastic variant plans with the *risk-adjusted* duration
//! `E[c_ij] + k·σ_ij` — a mean-plus-k-sigma rule that biases both the
//! ranking and the processor choice away from high-variance placements.
//! `k = 0` recovers HEFT exactly; larger `k` buys robustness with expected
//! makespan (the same trade-off the ε-constraint GA navigates, obtained
//! here for free from distribution knowledge).

use rds_platform::TimingModel;
use rds_sched::instance::Instance;
use rds_stats::matrix::Matrix;

use crate::heft::{heft_schedule, HeftResult};

/// Risk-adjusted planning durations: `E[c] + k·σ` per (task, processor).
///
/// # Panics
/// Panics when `k` is negative or non-finite.
#[must_use]
pub fn risk_adjusted_durations(inst: &Instance, k: f64) -> Matrix {
    assert!(k.is_finite() && k >= 0.0, "k must be a non-negative factor");
    let n = inst.task_count();
    let m = inst.proc_count();
    let sqrt3 = 3.0_f64.sqrt();
    Matrix::from_fn(n, m, |t, p| {
        let b = inst.timing.bcet_matrix()[(t, p)];
        let ul = inst.timing.ul_matrix()[(t, p)];
        let mean = ul * b;
        let sigma = (ul - 1.0) * b / sqrt3;
        mean + k * sigma
    })
}

/// Runs HEFT with risk-adjusted durations (`SHEFT(k)`).
///
/// The returned [`HeftResult`]'s `timed`/`makespan` are re-evaluated with
/// the **true expected** durations, so results are directly comparable to
/// [`heft_schedule`]'s.
///
/// # Panics
/// Panics when `k` is negative or non-finite.
pub fn sheft_schedule(inst: &Instance, k: f64) -> HeftResult {
    // Plan on a surrogate instance whose expected durations are the
    // risk-adjusted ones (UL ≡ 1 makes `expected == bcet == adjusted`).
    let adjusted = risk_adjusted_durations(inst, k);
    let surrogate_timing =
        TimingModel::deterministic(adjusted).expect("adjusted durations are positive");
    let surrogate = Instance::new(inst.graph.clone(), inst.platform.clone(), surrogate_timing)
        .expect("surrogate shares the instance dimensions");
    let planned = heft_schedule(&surrogate);

    // Re-time the schedule under the true expected durations.
    let timed = rds_sched::timing::evaluate_expected(
        &inst.graph,
        &inst.platform,
        &inst.timing,
        &planned.schedule,
    )
    .expect("planned schedule respects precedence");
    let makespan = timed.makespan;
    HeftResult {
        schedule: planned.schedule,
        timed,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;
    use rds_sched::realization::{monte_carlo, RealizationConfig};

    fn inst(seed: u64, ul: f64) -> Instance {
        InstanceSpec::new(40, 4)
            .seed(seed)
            .uncertainty_level(ul)
            .build()
            .unwrap()
    }

    #[test]
    fn k_zero_recovers_heft_exactly() {
        let i = inst(1, 4.0);
        let heft = heft_schedule(&i);
        let sheft = sheft_schedule(&i, 0.0);
        assert_eq!(sheft.schedule, heft.schedule);
        assert_eq!(sheft.makespan, heft.makespan);
    }

    #[test]
    fn adjusted_durations_formula() {
        let i = inst(2, 4.0);
        let adj = risk_adjusted_durations(&i, 1.0);
        let b = i.timing.bcet_matrix()[(0, 0)];
        let ul = i.timing.ul_matrix()[(0, 0)];
        let expect = ul * b + (ul - 1.0) * b / 3.0_f64.sqrt();
        assert!((adj[(0, 0)] - expect).abs() < 1e-12);
        // k=0 gives the plain expectation.
        let adj0 = risk_adjusted_durations(&i, 0.0);
        assert!((adj0[(0, 0)] - ul * b).abs() < 1e-12);
    }

    #[test]
    fn sheft_schedules_are_valid_and_deterministic() {
        let i = inst(3, 6.0);
        let a = sheft_schedule(&i, 1.0);
        let b = sheft_schedule(&i, 1.0);
        assert_eq!(a.schedule, b.schedule);
        assert!(a.schedule.validate_against(&i.graph).is_ok());
        assert!(a.makespan > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_k_rejected() {
        let i = inst(4, 2.0);
        let _ = sheft_schedule(&i, -1.0);
    }

    #[test]
    fn sheft_expected_makespan_stays_comparable() {
        // Risk adjustment must not blow up the expected makespan: it plans
        // with inflated durations but executes the same task set. Allow a
        // generous factor.
        for seed in 0..5 {
            let i = inst(seed, 6.0);
            let heft = heft_schedule(&i);
            let sheft = sheft_schedule(&i, 1.0);
            assert!(
                sheft.makespan <= 1.5 * heft.makespan,
                "seed {seed}: SHEFT {} vs HEFT {}",
                sheft.makespan,
                heft.makespan
            );
        }
    }

    #[test]
    fn sheft_tends_to_reduce_tail_risk_at_high_uncertainty() {
        // Aggregate over several instances: the 95th-percentile realized
        // makespan (absolute time, not relative) under SHEFT(1) should on
        // average not exceed HEFT's — the variance-aware placements avoid
        // high-σ processors.
        let mut wins = 0usize;
        let total = 8;
        for seed in 0..total {
            let i = inst(seed as u64, 8.0);
            let mc = RealizationConfig::with_realizations(300).seed(seed as u64);
            let heft = heft_schedule(&i);
            let sheft = sheft_schedule(&i, 1.0);
            let h = monte_carlo(&i, &heft.schedule, &mc).unwrap();
            let s = monte_carlo(&i, &sheft.schedule, &mc).unwrap();
            if s.makespans.quantile(0.95) <= h.makespans.quantile(0.95) * 1.02 {
                wins += 1;
            }
        }
        assert!(
            wins >= total / 2,
            "SHEFT should be tail-competitive on at least half the instances, won {wins}/{total}"
        );
    }
}

//! CPOP — Critical Path on a Processor (Topcuoglu et al., TPDS 2002 §IV).
//!
//! CPOP prioritizes tasks by `rank_u + rank_d`, pins every critical-path
//! task onto the single processor minimizing the critical path's total
//! expected execution time, and schedules the rest by earliest finish time
//! with insertion. It serves as a second classical baseline for the
//! ablation benches.

use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_sched::schedule::Schedule;

use crate::heft::HeftResult;
use crate::ranks::{downward_ranks, upward_ranks};
use crate::timeline::ProcTimeline;

/// Runs CPOP on an instance.
pub fn cpop_schedule(inst: &Instance) -> HeftResult {
    let n = inst.task_count();
    let ranks_u = upward_ranks(&inst.graph, &inst.platform, &inst.timing);
    let ranks_d = downward_ranks(&inst.graph, &inst.platform, &inst.timing);
    let priority: Vec<f64> = (0..n).map(|i| ranks_u[i] + ranks_d[i]).collect();

    // Critical tasks: priority equal (within tolerance) to the maximum.
    let cp_len = priority.iter().copied().fold(0.0, f64::max);
    let tol = 1e-9 * cp_len.max(1.0);
    let critical: Vec<TaskId> = (0..n as u32)
        .map(TaskId)
        .filter(|t| (priority[t.index()] - cp_len).abs() <= tol)
        .collect();

    // The critical-path processor minimizes total expected time of the
    // critical tasks.
    let cp_proc = inst
        .platform
        .procs()
        .min_by(|&a, &b| {
            let cost = |p: ProcId| -> f64 { critical.iter().map(|t| inst.expected(*t, p)).sum() };
            cost(a).total_cmp(&cost(b))
        })
        .expect("at least one processor");
    let is_critical: Vec<bool> = {
        let mut v = vec![false; n];
        for t in &critical {
            v[t.index()] = true;
        }
        v
    };

    // Priority queue of ready tasks by decreasing priority.
    let mut indeg: Vec<usize> = inst
        .graph
        .tasks()
        .map(|t| inst.graph.in_degree(t))
        .collect();
    let mut ready: Vec<TaskId> = inst
        .graph
        .tasks()
        .filter(|t| indeg[t.index()] == 0)
        .collect();

    let m = inst.proc_count();
    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut assigned: Vec<ProcId> = vec![ProcId(0); n];
    let mut finish: Vec<f64> = vec![0.0; n];

    while !ready.is_empty() {
        // Pop the highest-priority ready task (ties by id).
        let (idx, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                priority[a.index()]
                    .total_cmp(&priority[b.index()])
                    .then_with(|| b.cmp(a))
            })
            .expect("ready set non-empty");
        let t = ready.swap_remove(idx);
        let ti = t.index();

        let ready_on = |p: ProcId, assigned: &[ProcId], finish: &[f64]| -> f64 {
            let mut r = 0.0_f64;
            for e in inst.graph.predecessors(t) {
                let q = e.task;
                let arrive =
                    finish[q.index()] + inst.platform.comm_time(e.data, assigned[q.index()], p);
                if arrive > r {
                    r = arrive;
                }
            }
            r
        };

        let (p, est) = if is_critical[ti] {
            let r = ready_on(cp_proc, &assigned, &finish);
            let dur = inst.timing.expected(ti, cp_proc);
            (
                cp_proc,
                timelines[cp_proc.index()].earliest_start(r, dur, true),
            )
        } else {
            let mut best: Option<(f64, f64, ProcId)> = None;
            for p in inst.platform.procs() {
                let r = ready_on(p, &assigned, &finish);
                let dur = inst.timing.expected(ti, p);
                let est = timelines[p.index()].earliest_start(r, dur, true);
                let eft = est + dur;
                if best.is_none_or(|(beft, _, _)| eft < beft - 1e-12) {
                    best = Some((eft, est, p));
                }
            }
            let (_, est, p) = best.expect("at least one processor");
            (p, est)
        };
        let dur = inst.timing.expected(ti, p);
        timelines[p.index()].commit(est, dur, t);
        assigned[ti] = p;
        finish[ti] = est + dur;

        for e in inst.graph.successors(t) {
            indeg[e.task.index()] -= 1;
            if indeg[e.task.index()] == 0 {
                ready.push(e.task);
            }
        }
    }

    let proc_tasks: Vec<Vec<TaskId>> = timelines.iter().map(ProcTimeline::task_order).collect();
    let schedule = Schedule::from_proc_lists(n, proc_tasks).expect("CPOP covers every task once");
    let timed =
        rds_sched::timing::evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &schedule)
            .expect("CPOP schedule respects precedence");
    let makespan = timed.makespan;
    HeftResult {
        schedule,
        timed,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    #[test]
    fn cpop_produces_valid_schedules() {
        for seed in 0..6 {
            let inst = InstanceSpec::new(50, 4).seed(seed).build().unwrap();
            let r = cpop_schedule(&inst);
            assert!(
                r.schedule.validate_against(&inst.graph).is_ok(),
                "seed {seed}"
            );
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn cpop_deterministic() {
        let inst = InstanceSpec::new(40, 3).seed(8).build().unwrap();
        assert_eq!(cpop_schedule(&inst).schedule, cpop_schedule(&inst).schedule);
    }

    #[test]
    fn cpop_pins_critical_tasks_together_zero_comm_case() {
        // With zero CCR, the critical path is purely computational; CPOP
        // should place all critical tasks on one processor.
        let inst = InstanceSpec::new(30, 4).seed(3).ccr(0.0).build().unwrap();
        let ranks_u = upward_ranks(&inst.graph, &inst.platform, &inst.timing);
        let ranks_d = downward_ranks(&inst.graph, &inst.platform, &inst.timing);
        let n = inst.task_count();
        let prio: Vec<f64> = (0..n).map(|i| ranks_u[i] + ranks_d[i]).collect();
        let cp = prio.iter().copied().fold(0.0, f64::max);
        let r = cpop_schedule(&inst);
        let critical_procs: std::collections::HashSet<_> = (0..n)
            .filter(|&i| (prio[i] - cp).abs() <= 1e-9 * cp)
            .map(|i| r.schedule.proc_of(TaskId(i as u32)))
            .collect();
        assert_eq!(critical_procs.len(), 1);
    }

    #[test]
    fn cpop_competitive_with_heft() {
        // CPOP is usually a bit worse than HEFT but in the same ballpark.
        let mut ratio_sum = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let inst = InstanceSpec::new(50, 4).seed(seed).build().unwrap();
            let h = crate::heft::heft_schedule(&inst).makespan;
            let c = cpop_schedule(&inst).makespan;
            ratio_sum += c / h;
        }
        let mean_ratio = ratio_sum / runs as f64;
        assert!(
            (0.7..1.6).contains(&mean_ratio),
            "CPOP/HEFT mean ratio {mean_ratio} out of plausible range"
        );
    }
}

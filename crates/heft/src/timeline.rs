//! Per-processor timelines with insertion-based slot search.
//!
//! HEFT's processor selection computes, for every candidate processor, the
//! earliest start compatible with (a) the task's ready time and (b) the
//! processor's already-committed busy intervals — optionally *inserting*
//! the task into an idle gap between two committed intervals (the
//! "insertion-based scheduling policy" of Topcuoglu et al. §III-C).

use rds_graph::TaskId;

/// One busy interval on a processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// Start time.
    pub start: f64,
    /// Finish time.
    pub finish: f64,
    /// The occupying task.
    pub task: TaskId,
}

/// A processor's committed busy intervals, kept sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct ProcTimeline {
    slots: Vec<Slot>,
}

impl ProcTimeline {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The committed intervals in time order.
    #[inline]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// The finish time of the last committed interval (0 when idle).
    pub fn last_finish(&self) -> f64 {
        self.slots.last().map_or(0.0, |s| s.finish)
    }

    /// Earliest start time `≥ ready` for a task of length `duration`.
    ///
    /// With `insertion`, idle gaps between committed intervals are
    /// considered; otherwise the task can only go after the last interval.
    pub fn earliest_start(&self, ready: f64, duration: f64, insertion: bool) -> f64 {
        if insertion {
            // Gap before the first slot.
            let mut prev_finish = 0.0_f64;
            for s in &self.slots {
                let candidate = ready.max(prev_finish);
                if candidate + duration <= s.start {
                    return candidate;
                }
                prev_finish = prev_finish.max(s.finish);
            }
            ready.max(prev_finish)
        } else {
            ready.max(self.last_finish())
        }
    }

    /// Commits the interval `[start, start + duration)` for `task`.
    ///
    /// # Panics
    /// Panics (debug assertions) when the interval overlaps a committed one
    /// — callers must only commit starts returned by
    /// [`Self::earliest_start`].
    pub fn commit(&mut self, start: f64, duration: f64, task: TaskId) {
        let finish = start + duration;
        let idx = self.slots.partition_point(|s| s.start < start);
        debug_assert!(
            idx == 0 || self.slots[idx - 1].finish <= start + 1e-9,
            "overlap with previous slot"
        );
        debug_assert!(
            idx == self.slots.len() || finish <= self.slots[idx].start + 1e-9,
            "overlap with next slot"
        );
        self.slots.insert(
            idx,
            Slot {
                start,
                finish,
                task,
            },
        );
    }

    /// The tasks in execution order.
    pub fn task_order(&self) -> Vec<TaskId> {
        self.slots.iter().map(|s| s.task).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_starts_at_ready() {
        let t = ProcTimeline::new();
        assert_eq!(t.earliest_start(3.0, 2.0, true), 3.0);
        assert_eq!(t.earliest_start(0.0, 2.0, false), 0.0);
        assert_eq!(t.last_finish(), 0.0);
    }

    #[test]
    fn append_only_ignores_gaps() {
        let mut t = ProcTimeline::new();
        t.commit(5.0, 5.0, TaskId(0));
        // A gap [0,5) exists but append-only scheduling skips it.
        assert_eq!(t.earliest_start(0.0, 2.0, false), 10.0);
        assert_eq!(t.earliest_start(0.0, 2.0, true), 0.0);
    }

    #[test]
    fn insertion_finds_middle_gap() {
        let mut t = ProcTimeline::new();
        t.commit(0.0, 2.0, TaskId(0)); // [0,2)
        t.commit(6.0, 2.0, TaskId(1)); // [6,8)
                                       // Gap [2,6): a 3-long task fits at 2.
        assert_eq!(t.earliest_start(0.0, 3.0, true), 2.0);
        // A 5-long task does not fit; goes after 8.
        assert_eq!(t.earliest_start(0.0, 5.0, true), 8.0);
        // Ready time inside the gap shifts the candidate.
        assert_eq!(t.earliest_start(3.0, 3.0, true), 3.0);
        // Ready time that leaves too little room pushes past the gap.
        assert_eq!(t.earliest_start(4.0, 3.0, true), 8.0);
    }

    #[test]
    fn commit_keeps_slots_sorted() {
        let mut t = ProcTimeline::new();
        t.commit(6.0, 2.0, TaskId(1));
        t.commit(0.0, 2.0, TaskId(0));
        t.commit(3.0, 1.0, TaskId(2));
        assert_eq!(t.task_order(), vec![TaskId(0), TaskId(2), TaskId(1)]);
        assert_eq!(t.last_finish(), 8.0);
    }

    #[test]
    fn exact_fit_in_gap() {
        let mut t = ProcTimeline::new();
        t.commit(0.0, 2.0, TaskId(0));
        t.commit(5.0, 1.0, TaskId(1));
        // Gap [2,5): exactly 3 long.
        assert_eq!(t.earliest_start(0.0, 3.0, true), 2.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overlap")]
    fn overlapping_commit_panics_in_debug() {
        let mut t = ProcTimeline::new();
        t.commit(0.0, 5.0, TaskId(0));
        t.commit(3.0, 1.0, TaskId(1));
    }
}

//! Task ranks (Topcuoglu et al. §III-B).
//!
//! * **Upward rank**: `rank_u(i) = w̄_i + max_{j ∈ succ(i)} (c̄_ij + rank_u(j))`
//!   with `w̄_i` the mean *expected* execution cost over processors and
//!   `c̄_ij` the mean communication cost over processor pairs. Scheduling in
//!   decreasing `rank_u` order is a topological order.
//! * **Downward rank**: `rank_d(i) = max_{j ∈ pred(i)} (rank_d(j) + w̄_j + c̄_ji)`.
//!   `rank_u + rank_d` identifies the critical path; CPOP uses it.

use rds_graph::paths::{bottom_levels, top_levels};
use rds_graph::{TaskGraph, TaskId};
use rds_platform::Platform;
use rds_platform::TimingModel;

/// Mean expected execution cost of every task (`w̄`).
pub fn mean_costs(graph: &TaskGraph, timing: &TimingModel) -> Vec<f64> {
    (0..graph.task_count())
        .map(|i| timing.mean_expected(i))
        .collect()
}

/// Upward ranks of all tasks: the bottom level under mean execution and
/// mean communication weights.
pub fn upward_ranks(graph: &TaskGraph, platform: &Platform, timing: &TimingModel) -> Vec<f64> {
    let w = mean_costs(graph, timing);
    bottom_levels(
        graph,
        |t: TaskId| w[t.index()],
        |_, _, data| platform.mean_comm_time(data),
    )
}

/// Downward ranks of all tasks: the top level under the same mean weights.
pub fn downward_ranks(graph: &TaskGraph, platform: &Platform, timing: &TimingModel) -> Vec<f64> {
    let w = mean_costs(graph, timing);
    top_levels(
        graph,
        |t: TaskId| w[t.index()],
        |_, _, data| platform.mean_comm_time(data),
    )
}

/// Tasks sorted by decreasing upward rank (HEFT's scheduling order). Ties
/// break by task id so the order is deterministic.
pub fn rank_order(graph: &TaskGraph, platform: &Platform, timing: &TimingModel) -> Vec<TaskId> {
    let ranks = upward_ranks(graph, platform, timing);
    let mut order: Vec<TaskId> = graph.tasks().collect();
    order.sort_by(|&a, &b| {
        ranks[b.index()]
            .total_cmp(&ranks[a.index()])
            .then_with(|| a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_graph::{is_topological_order, TaskGraphBuilder};
    use rds_platform::Platform;
    use rds_stats::matrix::Matrix;

    /// Chain 0 -> 1 -> 2 with uniform expected costs 2 and data 4 on rate-2
    /// links across 2 procs (mean comm = 1/2 * 4/2 = 1).
    fn chain_fixture() -> (TaskGraph, Platform, TimingModel) {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 4.0)
            .add_edge(TaskId(1), TaskId(2), 4.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(2, 2.0).unwrap();
        let bcet = Matrix::filled(3, 2, 2.0);
        let t = TimingModel::deterministic(bcet).unwrap();
        (g, p, t)
    }

    #[test]
    fn chain_upward_ranks() {
        let (g, p, t) = chain_fixture();
        let r = upward_ranks(&g, &p, &t);
        // rank(2) = 2; rank(1) = 2 + 1 + 2 = 5; rank(0) = 2 + 1 + 5 = 8.
        assert_eq!(r, vec![8.0, 5.0, 2.0]);
    }

    #[test]
    fn chain_downward_ranks() {
        let (g, p, t) = chain_fixture();
        let r = downward_ranks(&g, &p, &t);
        assert_eq!(r, vec![0.0, 3.0, 6.0]);
    }

    #[test]
    fn rank_order_is_topological() {
        let (g, p, t) = chain_fixture();
        let order = rank_order(&g, &p, &t);
        assert!(is_topological_order(&g, &order));
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn rank_order_topological_on_random_graphs() {
        use rds_graph::gen::cov::CovMatrixSpec;
        use rds_graph::gen::layered::LayeredDagSpec;
        for seed in 0..5 {
            let g = LayeredDagSpec::with_tasks(60).generate(seed).unwrap();
            let p = Platform::uniform(4, 1.0).unwrap();
            let bcet = CovMatrixSpec::bcet(60, 4).generate(seed).unwrap();
            let t = TimingModel::deterministic(bcet).unwrap();
            let order = rank_order(&g, &p, &t);
            assert!(is_topological_order(&g, &order), "seed {seed}");
        }
    }

    #[test]
    fn heterogeneous_costs_change_ranks() {
        // Task 1 much more expensive than task 2 on average.
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 0.0)
            .add_edge(TaskId(0), TaskId(2), 0.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(2, 1.0).unwrap();
        let bcet = Matrix::from_rows(&[&[1.0, 1.0], &[10.0, 20.0], &[1.0, 3.0]]);
        let t = TimingModel::deterministic(bcet).unwrap();
        let r = upward_ranks(&g, &p, &t);
        assert_eq!(r[1], 15.0);
        assert_eq!(r[2], 2.0);
        assert_eq!(r[0], 1.0 + 15.0);
        let order = rank_order(&g, &p, &t);
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn single_proc_has_zero_mean_comm() {
        let (g, _, t) = chain_fixture();
        let p1 = Platform::uniform(1, 1.0).unwrap();
        let r = upward_ranks(&g, &p1, &t);
        assert_eq!(r, vec![6.0, 4.0, 2.0]);
    }
}

//! Lookahead HEFT (one-level child lookahead, after Bittencourt,
//! Sakellariou & Madeira, PDP 2010).
//!
//! Plain HEFT picks the processor minimizing the task's own earliest
//! finish time — a purely greedy choice that can strand a task's children
//! behind expensive transfers. The lookahead variant scores each candidate
//! processor by the *children's* estimated finish: tentatively place the
//! task, then for every immediate child estimate its best EFT over all
//! processors (without committing), and minimize the worst child estimate.
//! One extra level of foresight, `O(m²·deg)` per task instead of `O(m)`.
//!
//! Provided as an additional baseline: a third list scheduler between
//! HEFT's speed and the GA's search.

use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_sched::schedule::Schedule;

use crate::heft::HeftResult;
use crate::ranks::rank_order;
use crate::timeline::ProcTimeline;

/// Runs lookahead HEFT.
pub fn lookahead_heft_schedule(inst: &Instance) -> HeftResult {
    let n = inst.task_count();
    let m = inst.proc_count();
    let order = rank_order(&inst.graph, &inst.platform, &inst.timing);

    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut assigned: Vec<ProcId> = vec![ProcId(0); n];
    let mut finish: Vec<f64> = vec![0.0; n];
    let mut scheduled = vec![false; n];

    // Ready time of `t` on `p` given the committed placements, with an
    // optional hypothetical placement override for one task.
    let ready_on = |t: TaskId,
                    p: ProcId,
                    assigned: &[ProcId],
                    finish: &[f64],
                    scheduled: &[bool],
                    hypo: Option<(TaskId, ProcId, f64)>|
     -> Option<f64> {
        let mut ready = 0.0_f64;
        for e in inst.graph.predecessors(t) {
            let q = e.task;
            let (qp, qf) = match hypo {
                Some((ht, hp, hf)) if ht == q => (hp, hf),
                _ => {
                    if !scheduled[q.index()] {
                        return None; // child not yet estimable
                    }
                    (assigned[q.index()], finish[q.index()])
                }
            };
            let arrive = qf + inst.platform.comm_time(e.data, qp, p);
            if arrive > ready {
                ready = arrive;
            }
        }
        Some(ready)
    };

    for &t in &order {
        let ti = t.index();
        let mut best: Option<(f64, f64, f64, ProcId)> = None; // (score, eft, est, proc)
        for p in inst.platform.procs() {
            let ready = ready_on(t, p, &assigned, &finish, &scheduled, None)
                .expect("rank order schedules predecessors first");
            let dur = inst.timing.expected(ti, p);
            let est = timelines[p.index()].earliest_start(ready, dur, true);
            let eft = est + dur;

            // One-level lookahead: worst child's best estimated EFT if t
            // finishes at `eft` on `p`. Children whose other predecessors
            // are still unscheduled are skipped (their readiness is not
            // estimable yet); with no estimable children the score is the
            // task's own EFT, i.e. plain HEFT.
            let mut score = eft;
            for ce in inst.graph.successors(t) {
                let c = ce.task;
                let mut child_best = f64::INFINITY;
                for cp in inst.platform.procs() {
                    if let Some(cready) =
                        ready_on(c, cp, &assigned, &finish, &scheduled, Some((t, p, eft)))
                    {
                        let cdur = inst.timing.expected(c.index(), cp);
                        let cest = timelines[cp.index()].earliest_start(cready, cdur, true);
                        child_best = child_best.min(cest + cdur);
                    }
                }
                if child_best.is_finite() && child_best > score {
                    score = child_best;
                }
            }

            let better = match best {
                None => true,
                Some((bscore, beft, _, _)) => {
                    score < bscore - 1e-12
                        || ((score - bscore).abs() <= 1e-12 && eft < beft - 1e-12)
                }
            };
            if better {
                best = Some((score, eft, est, p));
            }
        }
        let (_, eft, est, p) = best.expect("at least one processor");
        timelines[p.index()].commit(est, eft - est, t);
        assigned[ti] = p;
        finish[ti] = eft;
        scheduled[ti] = true;
    }

    let proc_tasks: Vec<Vec<TaskId>> = timelines.iter().map(ProcTimeline::task_order).collect();
    let schedule =
        Schedule::from_proc_lists(n, proc_tasks).expect("lookahead HEFT covers every task once");
    let timed =
        rds_sched::timing::evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &schedule)
            .expect("lookahead HEFT respects precedence");
    let makespan = timed.makespan;
    HeftResult {
        schedule,
        timed,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heft::heft_schedule;
    use rds_sched::instance::InstanceSpec;

    #[test]
    fn lookahead_schedules_are_valid_and_deterministic() {
        for seed in 0..5 {
            let inst = InstanceSpec::new(40, 4)
                .seed(seed)
                .ccr(1.0)
                .build()
                .unwrap();
            let a = lookahead_heft_schedule(&inst);
            let b = lookahead_heft_schedule(&inst);
            assert_eq!(a.schedule, b.schedule);
            assert!(
                a.schedule.validate_against(&inst.graph).is_ok(),
                "seed {seed}"
            );
            assert!(a.makespan > 0.0);
        }
    }

    #[test]
    fn lookahead_competitive_with_heft_at_high_ccr() {
        // Lookahead pays off when communication matters; it should at
        // least stay competitive on average.
        let mut ratio_sum = 0.0;
        let runs = 10;
        for seed in 0..runs {
            let inst = InstanceSpec::new(50, 4)
                .seed(seed)
                .ccr(2.0)
                .build()
                .unwrap();
            let h = heft_schedule(&inst).makespan;
            let la = lookahead_heft_schedule(&inst).makespan;
            ratio_sum += la / h;
        }
        let mean_ratio = ratio_sum / runs as f64;
        assert!(
            mean_ratio < 1.05,
            "lookahead/HEFT mean ratio {mean_ratio} should be competitive"
        );
    }

    #[test]
    fn lookahead_wins_sometimes() {
        let mut wins = 0;
        let runs = 12;
        for seed in 0..runs {
            let inst = InstanceSpec::new(50, 4)
                .seed(seed)
                .ccr(2.0)
                .build()
                .unwrap();
            if lookahead_heft_schedule(&inst).makespan < heft_schedule(&inst).makespan - 1e-9 {
                wins += 1;
            }
        }
        assert!(
            wins >= 2,
            "lookahead should beat HEFT on some instances, won {wins}/{runs}"
        );
    }

    #[test]
    fn single_processor_degenerates_to_serial() {
        let inst = InstanceSpec::new(15, 1).seed(3).build().unwrap();
        let r = lookahead_heft_schedule(&inst);
        assert_eq!(r.schedule.tasks_on(rds_platform::ProcId(0)).len(), 15);
    }
}

//! Simulated annealing over the scheduling search space.
//!
//! §1 of the paper groups genetic algorithms and simulated annealing under
//! "guided random search methods". This crate provides the SA counterpart
//! used by the ablation benches (`bench_moop_methods`): same chromosome
//! encoding, same precedence-window mutation as the neighbourhood move,
//! same objectives — only the acceptance rule differs (Metropolis with a
//! geometric cooling schedule).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rand::Rng;

use rds_ga::chromosome::Chromosome;
use rds_ga::mutation::mutate;
use rds_ga::objective::{evaluate, Evaluation, Objective};
use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_stats::rng::rng_from_seed;

/// Typed error from [`try_anneal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Parameter validation failed; the message names the offending field.
    InvalidParams(String),
    /// An assignment places a task on a processor outside the task's
    /// type-affinity mask (typed platforms only).
    AffinityViolation {
        /// The offending task.
        task: TaskId,
        /// The processor it was assigned to.
        proc: ProcId,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParams(msg) => write!(f, "{msg}"),
            Self::AffinityViolation { task, proc } => write!(
                f,
                "task {} assigned to processor {} outside its type-affinity mask",
                task.index(),
                proc.index()
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// First type-affinity violation of an assignment, if any. Untyped
/// platforms and unconstrained graphs never violate.
fn affinity_violation(inst: &Instance, c: &Chromosome) -> Option<(TaskId, ProcId)> {
    if !inst.platform.is_typed() || !inst.graph.has_affinity_constraints() {
        return None;
    }
    c.assignment.iter().enumerate().find_map(|(t, &p)| {
        let task = TaskId(t as u32);
        let mask = inst.graph.affinity_of(task);
        (!inst.platform.supports(p, mask)).then_some((task, p))
    })
}

/// Simulated annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Initial temperature, in units of the energy scale.
    pub initial_temp: f64,
    /// Geometric cooling factor per temperature step (0 < factor < 1).
    pub cooling: f64,
    /// Moves attempted per temperature step.
    pub moves_per_temp: usize,
    /// Stop when the temperature falls below this value.
    pub min_temp: f64,
    /// Start from the HEFT schedule (otherwise a random chromosome).
    pub seed_heft: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaParams {
    fn default() -> Self {
        Self {
            initial_temp: 1.0,
            cooling: 0.95,
            moves_per_temp: 50,
            min_temp: 1e-3,
            seed_heft: true,
            seed: 0,
        }
    }
}

impl SaParams {
    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A small, fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            moves_per_temp: 20,
            cooling: 0.9,
            ..Self::default()
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        // NaN must fail too, hence not `<= 0.0`.
        if !self.initial_temp.is_finite() || self.initial_temp <= 0.0 {
            return Err("initial_temp must be positive".into());
        }
        if !(self.cooling > 0.0 && self.cooling < 1.0) {
            return Err("cooling must be in (0,1)".into());
        }
        if self.moves_per_temp == 0 {
            return Err("moves_per_temp must be positive".into());
        }
        if !(self.min_temp > 0.0 && self.min_temp < self.initial_temp) {
            return Err("min_temp must be in (0, initial_temp)".into());
        }
        Ok(())
    }
}

/// Result of an SA run.
#[derive(Debug, Clone)]
pub struct SaResult {
    /// Best chromosome found.
    pub best: Chromosome,
    /// Its evaluation.
    pub best_eval: Evaluation,
    /// Total moves attempted.
    pub moves: usize,
    /// Moves accepted.
    pub accepted: usize,
}

/// Scalar energy (lower = better) of an evaluation under an objective,
/// normalized by a reference scale so one temperature schedule fits all
/// objectives. For constrained objectives, every infeasible state sits in
/// an energy band strictly above every feasible state (offset + graded
/// violation), so the Metropolis walk can pass through infeasible regions
/// but the incumbent best is always feasible when any feasible state was
/// visited.
fn energy(obj: &Objective, e: &Evaluation, scale: f64) -> f64 {
    match obj.bound() {
        Some(bound) => {
            if e.makespan <= bound {
                -e.avg_slack / scale
            } else {
                // Feasible energies are ≥ -slack/scale > -(a few); 100 puts
                // every infeasible state above them.
                100.0 + (e.makespan - bound) / scale
            }
        }
        None => {
            let fitness = obj.fitness(std::slice::from_ref(e))[0];
            -fitness / scale
        }
    }
}

/// Runs simulated annealing on an instance.
///
/// # Panics
/// Panics when `params` fail validation; long-running callers (the
/// scheduling service) should use [`try_anneal`] instead.
pub fn anneal(inst: &Instance, params: SaParams, objective: Objective) -> SaResult {
    try_anneal(inst, params, objective).expect("invalid SA parameters")
}

/// Runs simulated annealing, reporting invalid parameters and
/// affinity-infeasible starting assignments as values instead of
/// panicking.
///
/// On typed platforms the walk stays inside the type-feasible region:
/// candidate moves that would place a task outside its affinity mask are
/// rejected outright (counted as attempted, never accepted). Untyped
/// platforms take the exact same path as before.
///
/// # Errors
/// Returns [`SolveError::InvalidParams`] for the first
/// [`SaParams::validate`] failure, or [`SolveError::AffinityViolation`]
/// when the starting assignment (HEFT fallback on an impossible mask, or
/// an unlucky random start) violates a task's type-affinity mask.
pub fn try_anneal(
    inst: &Instance,
    params: SaParams,
    objective: Objective,
) -> Result<SaResult, SolveError> {
    params.validate().map_err(SolveError::InvalidParams)?;
    let mut rng = rng_from_seed(params.seed);

    let mut current = if params.seed_heft {
        let heft = rds_heft::heft_schedule(inst);
        Chromosome::from_schedule(&inst.graph, &heft.schedule)
    } else {
        Chromosome::random_for(inst, &mut rng)
    };
    if let Some((task, proc)) = affinity_violation(inst, &current) {
        return Err(SolveError::AffinityViolation { task, proc });
    }
    let mut current_eval = evaluate(inst, &current);
    // Energy scale: the starting makespan keeps ΔE dimensionless-ish.
    let scale = current_eval.makespan.max(1.0);

    let mut best = current.clone();
    let mut best_eval = current_eval;
    let mut best_energy = energy(&objective, &best_eval, scale);
    let mut current_energy = best_energy;

    let mut temp = params.initial_temp;
    let mut moves = 0usize;
    let mut accepted = 0usize;

    while temp > params.min_temp {
        for _ in 0..params.moves_per_temp {
            moves += 1;
            let mut cand = current.clone();
            mutate(&mut cand, &inst.graph, inst.proc_count(), &mut rng);
            if affinity_violation(inst, &cand).is_some() {
                continue;
            }
            let cand_eval = evaluate(inst, &cand);
            let cand_energy = energy(&objective, &cand_eval, scale);
            let de = cand_energy - current_energy;
            if de <= 0.0 || rng.gen::<f64>() < (-de / temp).exp() {
                current = cand;
                current_eval = cand_eval;
                current_energy = cand_energy;
                accepted += 1;
                if current_energy < best_energy {
                    best = current.clone();
                    best_eval = current_eval;
                    best_energy = current_energy;
                }
            }
        }
        temp *= params.cooling;
    }

    Ok(SaResult {
        best,
        best_eval,
        moves,
        accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(25, 3).seed(seed).build().unwrap()
    }

    #[test]
    fn try_anneal_reports_invalid_params_as_value() {
        let i = inst(9);
        let mut p = SaParams::quick();
        p.moves_per_temp = 0;
        let err = try_anneal(&i, p, Objective::MinimizeMakespan).unwrap_err();
        assert!(err.to_string().contains("moves_per_temp"));
        assert!(matches!(err, SolveError::InvalidParams(_)));
    }

    fn typed_inst(seed: u64) -> Instance {
        // Two processors typed 0/1; every task restricted to type 1.
        let base = InstanceSpec::new(20, 2).seed(seed).build().unwrap();
        let mut g = base.graph.clone();
        for t in 0..20 {
            g.set_affinity(rds_graph::TaskId(t), 1 << 1);
        }
        let p = base.platform.clone().with_core_types(vec![0, 1]).unwrap();
        Instance::new(g, p, base.timing.clone()).unwrap()
    }

    #[test]
    fn violating_random_start_is_rejected_with_typed_error() {
        let i = typed_inst(21);
        let mut p = SaParams::quick().seed(1);
        p.seed_heft = false;
        // 20 tasks on 2 procs: a uniform random assignment lands at least
        // one task on the forbidden type-0 processor with overwhelming
        // probability.
        let err = try_anneal(&i, p, Objective::MinimizeMakespan).unwrap_err();
        assert!(matches!(err, SolveError::AffinityViolation { .. }));
        assert!(err.to_string().contains("type-affinity"));
    }

    #[test]
    fn typed_walk_stays_inside_affinity_masks() {
        let i = typed_inst(22);
        // HEFT now respects affinity masks, so the seed is feasible and
        // every accepted move must stay feasible.
        let r = anneal(&i, SaParams::quick().seed(3), Objective::MinimizeMakespan);
        for (t, &p) in r.best.assignment.iter().enumerate() {
            assert!(
                i.platform.supports(p, i.graph.affinity_of(rds_graph::TaskId(t as u32))),
                "task {t} escaped its affinity mask onto proc {}",
                p.index()
            );
        }
        assert!(r.best.is_valid(&i.graph, 2));
    }

    #[test]
    fn sa_is_deterministic() {
        let i = inst(1);
        let a = anneal(&i, SaParams::quick().seed(5), Objective::MinimizeMakespan);
        let b = anneal(&i, SaParams::quick().seed(5), Objective::MinimizeMakespan);
        assert_eq!(a.best, b.best);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn sa_never_loses_to_its_heft_start() {
        let i = inst(2);
        let heft = rds_heft::heft_schedule(&i);
        let r = anneal(&i, SaParams::quick().seed(7), Objective::MinimizeMakespan);
        assert!(r.best_eval.makespan <= heft.makespan + 1e-9);
        assert!(r.best.is_valid(&i.graph, 3));
    }

    #[test]
    fn sa_improves_slack_under_slack_objective() {
        let i = inst(3);
        let heft = rds_heft::heft_schedule(&i);
        let heft_eval = evaluate(&i, &Chromosome::from_schedule(&i.graph, &heft.schedule));
        let r = anneal(&i, SaParams::quick().seed(9), Objective::MaximizeSlack);
        assert!(
            r.best_eval.avg_slack >= heft_eval.avg_slack,
            "{} < {}",
            r.best_eval.avg_slack,
            heft_eval.avg_slack
        );
    }

    #[test]
    fn sa_accepts_some_and_rejects_some() {
        let i = inst(4);
        let r = anneal(&i, SaParams::quick().seed(11), Objective::MinimizeMakespan);
        assert!(r.accepted > 0);
        assert!(r.accepted < r.moves);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(SaParams {
            initial_temp: 0.0,
            ..SaParams::default()
        }
        .validate()
        .is_err());
        assert!(SaParams {
            cooling: 1.0,
            ..SaParams::default()
        }
        .validate()
        .is_err());
        assert!(SaParams {
            moves_per_temp: 0,
            ..SaParams::default()
        }
        .validate()
        .is_err());
        assert!(SaParams {
            min_temp: 2.0,
            ..SaParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn colder_schedules_accept_less() {
        // Acceptance rate must fall as the temperature schedule tightens.
        let i = inst(6);
        let hot = SaParams {
            initial_temp: 10.0,
            cooling: 0.95,
            moves_per_temp: 30,
            min_temp: 1.0,
            seed_heft: true,
            seed: 3,
        };
        let cold = SaParams {
            initial_temp: 0.01,
            min_temp: 0.001,
            ..hot
        };
        let hot_rate = {
            let r = anneal(&i, hot, Objective::MinimizeMakespan);
            r.accepted as f64 / r.moves as f64
        };
        let cold_rate = {
            let r = anneal(&i, cold, Objective::MinimizeMakespan);
            r.accepted as f64 / r.moves as f64
        };
        assert!(
            hot_rate > cold_rate,
            "hot {hot_rate} should accept more than cold {cold_rate}"
        );
    }

    #[test]
    fn epsilon_constrained_sa_best_is_feasible() {
        let i = inst(7);
        let heft = rds_heft::heft_schedule(&i);
        let obj = Objective::EpsilonConstraint {
            epsilon: 1.2,
            reference_makespan: heft.makespan,
        };
        let r = anneal(&i, SaParams::quick().seed(9), obj);
        // The HEFT start is feasible and the energy band keeps the
        // incumbent feasible thereafter.
        assert!(r.best_eval.makespan <= 1.2 * heft.makespan + 1e-9);
    }

    #[test]
    fn random_start_also_works() {
        let i = inst(5);
        let mut p = SaParams::quick().seed(13);
        p.seed_heft = false;
        let r = anneal(&i, p, Objective::MinimizeMakespan);
        assert!(r.best.is_valid(&i.graph, 3));
        assert!(r.best_eval.makespan > 0.0);
    }
}

//! High-level robust-scheduling API.
//!
//! This crate ties the substrates together into the workflow a user of the
//! paper's system would follow:
//!
//! 1. build (or generate) an [`Instance`](rds_sched::Instance);
//! 2. run [`RobustScheduler`] — HEFT anchors `M_HEFT`, the GA maximizes
//!    average slack under `M₀ < ε·M_HEFT` (Eq. 7), Monte Carlo produces the
//!    robustness report;
//! 3. optionally sweep ε ([`epsilon::epsilon_sweep`]) to trace the
//!    makespan/robustness trade-off, score points with the overall
//!    performance `P(s)` of Eq. 9 ([`overall`]), or extract the Pareto
//!    front ([`pareto`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod epsilon;
pub mod overall;
pub mod pareto;
pub mod report;
pub mod scheduler;

pub use epsilon::{epsilon_sweep, EpsilonPoint, SweepConfig};
pub use overall::{best_epsilon_for, overall_performance, RobustnessKind};
pub use pareto::{dominates, pareto_front, ParetoPoint};
pub use report::{FaultReport, ScheduleReport};
pub use scheduler::{RobustConfig, RobustOutcome, RobustScheduler, SolveError};

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::epsilon::{
        epsilon_sweep, pick_epsilon_for_miss_rate, pick_epsilon_for_tardiness, EpsilonPoint,
        SweepConfig,
    };
    pub use crate::overall::{best_epsilon_for, overall_performance, RobustnessKind};
    pub use crate::pareto::{coverage, hypervolume, pareto_front, ParetoPoint};
    pub use crate::report::{FaultReport, ScheduleReport};
    pub use crate::scheduler::{RobustConfig, RobustOutcome, RobustScheduler};
    pub use rds_ga::{Chromosome, GaEngine, GaParams, Objective};
    pub use rds_graph::{TaskGraph, TaskGraphBuilder, TaskId};
    pub use rds_heft::{
        cpop_schedule, heft_reschedule, heft_schedule, random_schedule, sheft_schedule, HeftResult,
        PartialState,
    };
    pub use rds_platform::{
        Availability, Platform, PlatformSpec, ProcId, RealizationLaw, TimingModel,
    };
    pub use rds_sched::bounds::{efficiency, makespan_lower_bounds};
    pub use rds_sched::{
        execute_replicated, execute_with_faults, monte_carlo, monte_carlo_faulty,
        monte_carlo_replicated, plan_replicas, CheckpointConfig, FaultConfig,
        FaultRobustnessReport, FaultScenario, Instance, InstanceSpec, PlacementPolicy,
        RealizationConfig, RecoveryConfig, RecoveryPolicy, ReplicaPlan, ReplicationConfig,
        RobustnessReport, Schedule,
    };
    pub use rds_stats::{Histogram, Matrix, OnlineStats, Summary};
}

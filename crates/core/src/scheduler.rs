//! The ε-constraint robust scheduler (Eq. 7) as a one-call API.

use rds_ga::{GaEngine, GaParams, GaResult, Objective};
use rds_heft::{heft_schedule, HeftResult};
use rds_sched::instance::Instance;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_sched::schedule::Schedule;

use crate::report::ScheduleReport;

/// Configuration of a robust-scheduling solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustConfig {
    /// The ε multiplier of Eq. 7: the GA maximizes slack subject to
    /// `M₀ < ε · M_HEFT`. Paper range: 1.0–2.0.
    pub epsilon: f64,
    /// GA hyper-parameters.
    pub ga: GaParams,
    /// Monte Carlo realizations for the final report.
    pub realizations: usize,
    /// Seed (drives both the GA and the realizations).
    pub seed: u64,
}

impl RobustConfig {
    /// A config with the given ε and paper-default GA parameters.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Self {
            epsilon,
            ga: GaParams::paper(),
            realizations: 1000,
            seed: 0,
        }
    }

    /// A scaled-down config for tests and examples.
    #[must_use]
    pub fn quick(epsilon: f64) -> Self {
        Self {
            epsilon,
            ga: GaParams::quick(),
            realizations: 200,
            seed: 0,
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the GA parameters.
    #[must_use]
    pub fn ga(mut self, ga: GaParams) -> Self {
        self.ga = ga;
        self
    }

    /// Overrides the realization count.
    #[must_use]
    pub fn realizations(mut self, n: usize) -> Self {
        self.realizations = n;
        self
    }
}

/// Errors from [`RobustScheduler::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// `epsilon` below 1 makes the HEFT seed infeasible and the constraint
    /// generally unattainable.
    InvalidEpsilon(f64),
    /// The instance is degenerate (no tasks).
    EmptyInstance,
    /// GA hyper-parameters failed validation.
    InvalidParams(String),
    /// A produced schedule was incompatible with the instance's precedence
    /// constraints. This indicates a scheduler bug, but long-running
    /// callers (the service layer) must receive it as a value, not a
    /// panic.
    IncompatibleSchedule(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be >= 1.0 (got {e}); the constraint M0 < eps*M_HEFT would exclude HEFT itself")
            }
            SolveError::EmptyInstance => write!(f, "instance has no tasks"),
            SolveError::InvalidParams(msg) => write!(f, "invalid GA parameters: {msg}"),
            SolveError::IncompatibleSchedule(which) => {
                write!(
                    f,
                    "{which} schedule is incompatible with the instance's precedence constraints"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Outcome of a robust solve.
#[derive(Debug, Clone)]
pub struct RobustOutcome {
    /// The robust schedule.
    pub schedule: Schedule,
    /// Monte Carlo report of the robust schedule.
    pub report: ScheduleReport,
    /// Monte Carlo report of the HEFT baseline (same realizations budget).
    pub heft_report: ScheduleReport,
    /// The HEFT baseline itself.
    pub heft: HeftResult,
    /// Full GA trace.
    pub ga: GaResult,
}

impl RobustOutcome {
    /// Ratio `M₀(robust) / M₀(HEFT)` — at most ε by construction (up to the
    /// GA's strictness).
    #[must_use]
    pub fn makespan_ratio(&self) -> f64 {
        self.report.expected_makespan / self.heft_report.expected_makespan
    }

    /// Ratio `R1(robust) / R1(HEFT)` (`NaN` when either is infinite).
    #[must_use]
    pub fn r1_ratio(&self) -> f64 {
        if self.report.r1.is_finite() && self.heft_report.r1.is_finite() {
            self.report.r1 / self.heft_report.r1
        } else {
            f64::NAN
        }
    }
}

/// The ε-constraint robust scheduler.
#[derive(Debug, Clone)]
pub struct RobustScheduler {
    config: RobustConfig,
}

impl RobustScheduler {
    /// Creates a scheduler with the given configuration.
    #[must_use]
    pub fn new(config: RobustConfig) -> Self {
        Self { config }
    }

    /// Solves the instance: HEFT anchor → ε-constraint GA → Monte Carlo
    /// reports for both the robust schedule and the HEFT baseline.
    ///
    /// # Errors
    /// Returns [`SolveError`] for ε < 1 or an empty instance.
    pub fn solve(&self, inst: &Instance) -> Result<RobustOutcome, SolveError> {
        if self.config.epsilon < 1.0 {
            return Err(SolveError::InvalidEpsilon(self.config.epsilon));
        }
        if inst.task_count() == 0 {
            return Err(SolveError::EmptyInstance);
        }
        let heft = heft_schedule(inst);
        let objective = Objective::EpsilonConstraint {
            epsilon: self.config.epsilon,
            reference_makespan: heft.makespan,
        };
        let ga_params = self.config.ga.seed(self.config.seed);
        let ga = GaEngine::try_new(inst, ga_params, objective)
            .map_err(SolveError::InvalidParams)?
            .run();
        let schedule = ga.best_schedule(inst);

        let mc = RealizationConfig::with_realizations(self.config.realizations)
            .seed(self.config.seed ^ 0x5DEECE66D);
        // Both schedules are precedence-valid by construction; surface a
        // violation as a typed error so an embedding daemon never panics.
        let robust_rr = monte_carlo(inst, &schedule, &mc)
            .map_err(|_| SolveError::IncompatibleSchedule("GA".into()))?;
        let heft_rr = monte_carlo(inst, &heft.schedule, &mc)
            .map_err(|_| SolveError::IncompatibleSchedule("HEFT".into()))?;

        Ok(RobustOutcome {
            schedule,
            report: ScheduleReport::from_robustness(&robust_rr),
            heft_report: ScheduleReport::from_robustness(&heft_rr),
            heft,
            ga,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(30, 3)
            .seed(seed)
            .uncertainty_level(2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn solve_respects_epsilon_bound() {
        let i = inst(1);
        let out = RobustScheduler::new(RobustConfig::quick(1.3).seed(2))
            .solve(&i)
            .unwrap();
        assert!(
            out.report.expected_makespan < 1.3 * out.heft.makespan,
            "constraint violated: {} vs {}",
            out.report.expected_makespan,
            1.3 * out.heft.makespan
        );
        assert!(out.makespan_ratio() < 1.3);
    }

    #[test]
    fn robust_schedule_has_at_least_heft_slack() {
        let i = inst(2);
        let out = RobustScheduler::new(RobustConfig::quick(1.5).seed(3))
            .solve(&i)
            .unwrap();
        assert!(
            out.report.average_slack >= out.heft_report.average_slack - 1e-9,
            "GA slack {} below HEFT slack {}",
            out.report.average_slack,
            out.heft_report.average_slack
        );
    }

    #[test]
    fn rejects_bad_epsilon_and_empty_instance() {
        let i = inst(3);
        assert_eq!(
            RobustScheduler::new(RobustConfig::quick(0.5))
                .solve(&i)
                .unwrap_err(),
            SolveError::InvalidEpsilon(0.5)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let i = inst(4);
        let cfg = RobustConfig::quick(1.2).seed(9);
        let a = RobustScheduler::new(cfg).solve(&i).unwrap();
        let b = RobustScheduler::new(cfg).solve(&i).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.report.r1, b.report.r1);
    }

    #[test]
    fn error_messages_are_actionable() {
        assert!(SolveError::InvalidEpsilon(0.5)
            .to_string()
            .contains("epsilon must be >= 1.0"));
        assert!(SolveError::EmptyInstance.to_string().contains("no tasks"));
    }

    #[test]
    fn outcome_ratios_are_consistent_with_reports() {
        let i = inst(6);
        let out = RobustScheduler::new(RobustConfig::quick(1.3).seed(4))
            .solve(&i)
            .unwrap();
        let expect = out.report.expected_makespan / out.heft_report.expected_makespan;
        assert!((out.makespan_ratio() - expect).abs() < 1e-12);
        if out.report.r1.is_finite() && out.heft_report.r1.is_finite() {
            assert!((out.r1_ratio() - out.report.r1 / out.heft_report.r1).abs() < 1e-12);
        } else {
            assert!(out.r1_ratio().is_nan());
        }
    }

    #[test]
    fn reports_share_realization_budget() {
        let i = inst(5);
        let out = RobustScheduler::new(RobustConfig::quick(1.4).realizations(64).seed(1))
            .solve(&i)
            .unwrap();
        assert_eq!(out.report.realizations, 64);
        assert_eq!(out.heft_report.realizations, 64);
    }
}

//! ε sweeps: one GA solve per ε value, tracing the makespan/robustness
//! trade-off (Figures 5–8 are all derived from these sweeps).

use rayon::prelude::*;

use rds_ga::{GaEngine, GaParams, Objective};
use rds_heft::heft_schedule;
use rds_sched::instance::Instance;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::rng::SeedStream;

/// One ε sample of the trade-off curve.
#[derive(Debug, Clone)]
pub struct EpsilonPoint {
    /// The ε value.
    pub epsilon: f64,
    /// Expected makespan of the GA's best feasible schedule.
    pub makespan: f64,
    /// Its average slack.
    pub avg_slack: f64,
    /// Tardiness robustness `R1`.
    pub r1: f64,
    /// Miss-rate robustness `R2`.
    pub r2: f64,
    /// Miss rate α.
    pub miss_rate: f64,
    /// Mean tardiness `E[δ]`.
    pub mean_tardiness: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// GA parameters used at every ε.
    pub ga: GaParams,
    /// Monte Carlo realizations per point.
    pub realizations: usize,
    /// Master seed; each ε gets a derived sub-seed.
    pub seed: u64,
    /// Run ε points in parallel (each point is internally deterministic).
    pub parallel: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            ga: GaParams::paper(),
            realizations: 1000,
            seed: 0,
            parallel: true,
        }
    }
}

impl SweepConfig {
    /// Scaled-down sweep for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            ga: GaParams::quick(),
            realizations: 200,
            ..Self::default()
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The standard ε grid of the paper's Figures 5–8: 1.0, 1.1, …, 2.0.
#[must_use]
pub fn paper_epsilon_grid() -> Vec<f64> {
    (0..=10).map(|i| 1.0 + 0.1 * f64::from(i)).collect()
}

/// Runs the ε sweep: one ε-constraint GA solve + Monte Carlo per grid
/// point. The HEFT anchor is computed once.
pub fn epsilon_sweep(inst: &Instance, epsilons: &[f64], cfg: &SweepConfig) -> Vec<EpsilonPoint> {
    let heft = heft_schedule(inst);
    let seeds = SeedStream::new(cfg.seed);
    let solve_one = |(idx, &epsilon): (usize, &f64)| -> EpsilonPoint {
        let objective = Objective::EpsilonConstraint {
            epsilon,
            reference_makespan: heft.makespan,
        };
        let sub = seeds.nth_seed(idx as u64);
        let ga = GaEngine::new(inst, cfg.ga.seed(sub), objective).run();
        let schedule = ga.best_schedule(inst);
        let mc = RealizationConfig::with_realizations(cfg.realizations)
            .seed(seeds.branch("mc").nth_seed(idx as u64));
        let rr = monte_carlo(inst, &schedule, &mc).expect("GA schedules are valid");
        EpsilonPoint {
            epsilon,
            makespan: rr.expected_makespan,
            avg_slack: rr.average_slack,
            r1: rr.r1,
            r2: rr.r2,
            miss_rate: rr.miss_rate,
            mean_tardiness: rr.mean_tardiness,
        }
    };
    if cfg.parallel {
        epsilons.par_iter().enumerate().map(solve_one).collect()
    } else {
        epsilons.iter().enumerate().map(solve_one).collect()
    }
}

/// SLA-style decision helper: among sweep points meeting a miss-rate
/// budget (`miss_rate ≤ max_miss_rate`), pick the one with the smallest
/// expected makespan. Returns `None` when no point qualifies (the budget
/// is tighter than any sampled ε achieves — relax the budget or extend
/// the grid).
#[must_use]
pub fn pick_epsilon_for_miss_rate(
    points: &[EpsilonPoint],
    max_miss_rate: f64,
) -> Option<&EpsilonPoint> {
    points
        .iter()
        .filter(|p| p.miss_rate <= max_miss_rate)
        .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
}

/// Companion helper for tardiness budgets: smallest-makespan point with
/// `mean_tardiness ≤ max_tardiness`.
#[must_use]
pub fn pick_epsilon_for_tardiness(
    points: &[EpsilonPoint],
    max_tardiness: f64,
) -> Option<&EpsilonPoint> {
    points
        .iter()
        .filter(|p| p.mean_tardiness <= max_tardiness)
        .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    fn pt(epsilon: f64, makespan: f64, miss_rate: f64, tardiness: f64) -> EpsilonPoint {
        EpsilonPoint {
            epsilon,
            makespan,
            avg_slack: 0.0,
            r1: 1.0 / tardiness.max(1e-9),
            r2: 1.0 / miss_rate.max(1e-9),
            miss_rate,
            mean_tardiness: tardiness,
        }
    }

    #[test]
    fn sla_picker_chooses_cheapest_qualifying_point() {
        let pts = vec![
            pt(1.0, 100.0, 0.8, 0.10),
            pt(1.4, 140.0, 0.5, 0.05),
            pt(1.8, 180.0, 0.3, 0.02),
        ];
        // Budget 0.6: points at eps 1.4 and 1.8 qualify; 1.4 is cheaper.
        let p = pick_epsilon_for_miss_rate(&pts, 0.6).unwrap();
        assert_eq!(p.epsilon, 1.4);
        // Budget 0.9: everything qualifies; eps = 1.0 is cheapest.
        assert_eq!(pick_epsilon_for_miss_rate(&pts, 0.9).unwrap().epsilon, 1.0);
        // Budget tighter than anything sampled: no pick.
        assert!(pick_epsilon_for_miss_rate(&pts, 0.1).is_none());
        // Tardiness variant.
        assert_eq!(pick_epsilon_for_tardiness(&pts, 0.06).unwrap().epsilon, 1.4);
        assert!(pick_epsilon_for_tardiness(&pts, 0.001).is_none());
    }

    #[test]
    fn grid_matches_paper() {
        let g = paper_epsilon_grid();
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 1.0);
        assert!((g[10] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_points_track_epsilon() {
        let inst = InstanceSpec::new(25, 3)
            .seed(3)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let mut cfg = SweepConfig::quick().seed(7);
        cfg.realizations = 100;
        cfg.ga = cfg.ga.max_generations(40).stall_generations(20);
        let pts = epsilon_sweep(&inst, &[1.0, 1.5, 2.0], &cfg);
        assert_eq!(pts.len(), 3);
        // Larger ε admits larger slack (weak monotonicity — allow small
        // stochastic wobble).
        assert!(
            pts[2].avg_slack >= pts[0].avg_slack * 0.9,
            "slack at eps=2 ({}) should not collapse below eps=1 ({})",
            pts[2].avg_slack,
            pts[0].avg_slack
        );
        // Makespans respect their bounds relative to each other's epsilon.
        let heft = rds_heft::heft_schedule(&inst);
        for p in &pts {
            assert!(
                p.makespan < p.epsilon * heft.makespan + 1e-9,
                "eps {}: {} vs bound {}",
                p.epsilon,
                p.makespan,
                p.epsilon * heft.makespan
            );
        }
    }

    #[test]
    fn sweep_deterministic_and_parallel_consistent() {
        let inst = InstanceSpec::new(20, 2).seed(5).build().unwrap();
        let mut cfg = SweepConfig::quick().seed(11);
        cfg.realizations = 50;
        cfg.ga = cfg.ga.max_generations(20).stall_generations(10);
        let par = epsilon_sweep(&inst, &[1.2, 1.6], &cfg);
        cfg.parallel = false;
        let ser = epsilon_sweep(&inst, &[1.2, 1.6], &cfg);
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.r1, b.r1);
        }
    }
}

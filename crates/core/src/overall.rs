//! Overall performance `P(s)` (Eq. 9) and the best-ε search of Figs. 7–8.
//!
//! `P(s) = r · log(M_HEFT / M(s)) + (1 − r) · log(R(s) / R_HEFT)`
//!
//! `r ∈ [0, 1]` weighs makespan (large `r`) against robustness (small
//! `r`); `R` is either `R1` or `R2`. Figures 7 and 8 report, for each
//! uncertainty level, the ε value whose sweep point maximizes `P(s)` as a
//! function of `r`.

use crate::epsilon::EpsilonPoint;

/// Which robustness definition enters Eq. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustnessKind {
    /// Tardiness-based `R1` (Definition 3.6).
    R1,
    /// Miss-rate-based `R2` (Definition 3.7).
    R2,
}

impl RobustnessKind {
    /// Extracts the chosen robustness from a sweep point.
    #[must_use]
    pub fn of(&self, p: &EpsilonPoint) -> f64 {
        match self {
            RobustnessKind::R1 => p.r1,
            RobustnessKind::R2 => p.r2,
        }
    }
}

/// Eq. 9. Infinite robustness ratios (a schedule that never misses) are
/// clamped to a large finite log so comparisons stay total.
///
/// # Panics
/// Panics when `r` is outside `[0,1]` or a makespan is non-positive.
#[must_use]
pub fn overall_performance(
    r: f64,
    makespan: f64,
    robustness: f64,
    heft_makespan: f64,
    heft_robustness: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&r), "r must be in [0,1], got {r}");
    assert!(
        makespan > 0.0 && heft_makespan > 0.0,
        "makespans must be positive"
    );
    const LOG_CAP: f64 = 50.0;
    let mk_term = (heft_makespan / makespan).ln();
    let rob_term = if robustness.is_finite() && heft_robustness.is_finite() {
        (robustness / heft_robustness).ln().clamp(-LOG_CAP, LOG_CAP)
    } else if robustness.is_finite() {
        -LOG_CAP // HEFT never misses but s does: worst robustness ratio
    } else if heft_robustness.is_finite() {
        LOG_CAP // s never misses: best robustness ratio
    } else {
        0.0 // both never miss: tie
    };
    r * mk_term + (1.0 - r) * rob_term
}

/// Finds, for each `r` of the grid, the ε of the sweep point maximizing
/// `P(s)` against the HEFT anchors. Returns `(r, best_epsilon)` pairs.
///
/// `heft_makespan`/`heft_robustness` are the HEFT schedule's own metrics
/// under the same realization budget.
pub fn best_epsilon_for(
    points: &[EpsilonPoint],
    kind: RobustnessKind,
    r_grid: &[f64],
    heft_makespan: f64,
    heft_robustness: f64,
) -> Vec<(f64, f64)> {
    assert!(!points.is_empty(), "need at least one sweep point");
    r_grid
        .iter()
        .map(|&r| {
            let best = points
                .iter()
                .max_by(|a, b| {
                    let pa = overall_performance(
                        r,
                        a.makespan,
                        kind.of(a),
                        heft_makespan,
                        heft_robustness,
                    );
                    let pb = overall_performance(
                        r,
                        b.makespan,
                        kind.of(b),
                        heft_makespan,
                        heft_robustness,
                    );
                    pa.total_cmp(&pb)
                })
                .expect("non-empty points");
            (r, best.epsilon)
        })
        .collect()
}

/// The standard `r` grid of Figures 7–8: 0.0, 0.1, …, 1.0.
#[must_use]
pub fn paper_r_grid() -> Vec<f64> {
    (0..=10).map(|i| 0.1 * f64::from(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(epsilon: f64, makespan: f64, r1: f64) -> EpsilonPoint {
        EpsilonPoint {
            epsilon,
            makespan,
            avg_slack: 0.0,
            r1,
            r2: r1,
            miss_rate: 0.5,
            mean_tardiness: 1.0 / r1,
        }
    }

    #[test]
    fn r_extremes_pick_extreme_epsilons() {
        // eps=1: short makespan, low robustness. eps=2: long, robust.
        let points = vec![pt(1.0, 100.0, 10.0), pt(2.0, 180.0, 40.0)];
        let picks = best_epsilon_for(&points, RobustnessKind::R1, &[0.0, 1.0], 100.0, 10.0);
        assert_eq!(picks[0], (0.0, 2.0), "pure-robustness user wants eps=2");
        assert_eq!(picks[1], (1.0, 1.0), "pure-makespan user wants eps=1");
    }

    #[test]
    fn best_epsilon_is_monotone_in_r() {
        let points = vec![
            pt(1.0, 100.0, 10.0),
            pt(1.4, 130.0, 22.0),
            pt(2.0, 180.0, 40.0),
        ];
        let picks = best_epsilon_for(&points, RobustnessKind::R1, &paper_r_grid(), 100.0, 10.0);
        for w in picks.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-12,
                "best epsilon must not increase with r: {w:?}"
            );
        }
    }

    #[test]
    fn overall_performance_hand_check() {
        // r=0.5, M=M_HEFT/e, R=R_HEFT*e -> 0.5*1 + 0.5*1 = 1.
        let p = overall_performance(
            0.5,
            100.0 / std::f64::consts::E,
            10.0 * std::f64::consts::E,
            100.0,
            10.0,
        );
        assert!((p - 1.0).abs() < 1e-12);
        // The HEFT schedule itself scores 0.
        assert_eq!(overall_performance(0.7, 100.0, 10.0, 100.0, 10.0), 0.0);
    }

    #[test]
    fn infinite_robustness_is_handled() {
        let best = overall_performance(0.0, 100.0, f64::INFINITY, 100.0, 10.0);
        let worst = overall_performance(0.0, 100.0, 10.0, 100.0, f64::INFINITY);
        let tie = overall_performance(0.0, 100.0, f64::INFINITY, 100.0, f64::INFINITY);
        assert!(best > 0.0);
        assert!(worst < 0.0);
        assert_eq!(tie, 0.0);
    }

    #[test]
    #[should_panic(expected = "r must be in")]
    fn rejects_out_of_range_r() {
        let _ = overall_performance(1.5, 1.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn paper_r_grid_shape() {
        let g = paper_r_grid();
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 0.0);
        assert!((g[10] - 1.0).abs() < 1e-12);
    }
}

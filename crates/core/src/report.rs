//! The user-facing schedule report.

use rds_sched::{FaultRobustnessReport, RobustnessReport};

/// Flattened robustness report for one schedule, with optional HEFT
/// comparison ratios.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Expected makespan `M₀`.
    pub expected_makespan: f64,
    /// Average slack `σ̄`.
    pub average_slack: f64,
    /// Mean realized makespan.
    pub mean_realized_makespan: f64,
    /// Mean relative tardiness `E[δ]`.
    pub mean_tardiness: f64,
    /// Tardiness robustness `R1 = 1/E[δ]`.
    pub r1: f64,
    /// Miss rate `α`.
    pub miss_rate: f64,
    /// Miss-rate robustness `R2 = 1/α`.
    pub r2: f64,
    /// Number of Monte Carlo realizations behind the estimates.
    pub realizations: usize,
}

impl ScheduleReport {
    /// Builds a report from the Monte Carlo output.
    #[must_use]
    pub fn from_robustness(r: &RobustnessReport) -> Self {
        Self {
            expected_makespan: r.expected_makespan,
            average_slack: r.average_slack,
            mean_realized_makespan: r.mean_makespan,
            mean_tardiness: r.mean_tardiness,
            r1: r.r1,
            miss_rate: r.miss_rate,
            r2: r.r2,
            realizations: r.realizations,
        }
    }

    /// Renders a compact human-readable block.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        format!(
            "expected makespan M0 : {:>10.3}\n\
             average slack      : {:>10.3}\n\
             mean realized M    : {:>10.3}\n\
             mean tardiness E[d]: {:>10.4}\n\
             robustness R1      : {:>10.3}\n\
             miss rate alpha    : {:>10.4}\n\
             robustness R2      : {:>10.3}\n\
             realizations       : {:>10}",
            self.expected_makespan,
            self.average_slack,
            self.mean_realized_makespan,
            self.mean_tardiness,
            self.r1,
            self.miss_rate,
            self.r2,
            self.realizations
        )
    }
}

/// Flattened fault-robustness report for one schedule under a recovery
/// policy — the fault-model counterpart of [`ScheduleReport`].
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Expected makespan `M₀` of the fault-free plan.
    pub expected_makespan: f64,
    /// Average slack `σ̄`.
    pub average_slack: f64,
    /// Mean realized makespan over completed realizations (NaN when every
    /// realization failed).
    pub mean_realized_makespan: f64,
    /// Tardiness robustness `R1` over completed realizations.
    pub r1: f64,
    /// Miss-rate robustness `R2` (failures count as misses).
    pub r2: f64,
    /// Fraction of realizations that did not complete.
    pub failed_rate: f64,
    /// Mean replans per realization (recovery overhead).
    pub mean_replans: f64,
    /// Mean task retries per realization.
    pub mean_retries: f64,
    /// Mean work lost to aborts and crashes per realization.
    pub mean_lost_work: f64,
    /// Reliability: probability that a realization completes.
    pub completion_probability: f64,
    /// Mean tasks completed by a replica per realization.
    pub mean_replica_wins: f64,
    /// Mean wasted duplicate work per realization (losing copies).
    pub mean_duplicate_work: f64,
    /// Mean extra time paid for checkpoints per realization.
    pub mean_checkpoint_overhead: f64,
    /// Number of Monte Carlo realizations behind the estimates.
    pub realizations: usize,
}

impl FaultReport {
    /// Builds a report from the faulty Monte Carlo output.
    #[must_use]
    pub fn from_fault_robustness(r: &FaultRobustnessReport) -> Self {
        Self {
            expected_makespan: r.expected_makespan,
            average_slack: r.average_slack,
            mean_realized_makespan: r.mean_makespan,
            r1: r.r1,
            r2: r.r2,
            failed_rate: r.failed_rate,
            mean_replans: r.mean_replans,
            mean_retries: r.mean_retries,
            mean_lost_work: r.mean_lost_work,
            completion_probability: r.completion_probability,
            mean_replica_wins: r.mean_replica_wins,
            mean_duplicate_work: r.mean_duplicate_work,
            mean_checkpoint_overhead: r.mean_checkpoint_overhead,
            realizations: r.realizations,
        }
    }

    /// Renders a compact human-readable block.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        format!(
            "expected makespan M0 : {:>10.3}\n\
             average slack      : {:>10.3}\n\
             mean realized M    : {:>10.3}\n\
             robustness R1      : {:>10.3}\n\
             robustness R2      : {:>10.3}\n\
             failed rate        : {:>10.4}\n\
             completion prob    : {:>10.4}\n\
             mean replans       : {:>10.3}\n\
             mean retries       : {:>10.3}\n\
             mean lost work     : {:>10.3}\n\
             mean replica wins  : {:>10.3}\n\
             mean dup. work     : {:>10.3}\n\
             mean ckpt overhead : {:>10.3}\n\
             realizations       : {:>10}",
            self.expected_makespan,
            self.average_slack,
            self.mean_realized_makespan,
            self.r1,
            self.r2,
            self.failed_rate,
            self.completion_probability,
            self.mean_replans,
            self.mean_retries,
            self.mean_lost_work,
            self.mean_replica_wins,
            self.mean_duplicate_work,
            self.mean_checkpoint_overhead,
            self.realizations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_copies_fields() {
        let rr = RobustnessReport::from_makespans(10.0, 1.2, vec![9.0, 11.0, 12.0]);
        let r = ScheduleReport::from_robustness(&rr);
        assert_eq!(r.expected_makespan, 10.0);
        assert_eq!(r.average_slack, 1.2);
        assert_eq!(r.realizations, 3);
        assert_eq!(r.miss_rate, rr.miss_rate);
        assert_eq!(r.r1, rr.r1);
        let text = r.to_pretty_string();
        assert!(text.contains("robustness R1"));
        assert!(text.contains("10.000"));
    }

    #[test]
    fn fault_report_copies_fields() {
        let totals = rds_sched::RecoveryStats {
            replans: 3,
            retries: 1,
            lost_work: 5.0,
            backoff_delay: 2.0,
            replica_wins: 2,
            duplicate_work: 6.0,
            checkpoint_overhead: 1.0,
            ..rds_sched::RecoveryStats::default()
        };
        let fr = FaultRobustnessReport::from_outcomes(10.0, 1.0, vec![8.0, 12.0], 2, &totals);
        let r = FaultReport::from_fault_robustness(&fr);
        assert_eq!(r.expected_makespan, 10.0);
        assert_eq!(r.realizations, 4);
        assert_eq!(r.failed_rate, 0.5);
        assert_eq!(r.completion_probability, 0.5);
        assert_eq!(r.mean_realized_makespan, 10.0);
        assert_eq!(r.mean_replans, 0.75);
        assert_eq!(r.mean_lost_work, 1.25);
        assert_eq!(r.mean_replica_wins, 0.5);
        assert_eq!(r.mean_duplicate_work, 1.5);
        assert_eq!(r.mean_checkpoint_overhead, 0.25);
        let text = r.to_pretty_string();
        assert!(text.contains("failed rate"));
        assert!(text.contains("completion prob"));
        assert!(text.contains("mean replica wins"));
    }
}

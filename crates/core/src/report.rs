//! The user-facing schedule report.

use rds_sched::RobustnessReport;

/// Flattened robustness report for one schedule, with optional HEFT
/// comparison ratios.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Expected makespan `M₀`.
    pub expected_makespan: f64,
    /// Average slack `σ̄`.
    pub average_slack: f64,
    /// Mean realized makespan.
    pub mean_realized_makespan: f64,
    /// Mean relative tardiness `E[δ]`.
    pub mean_tardiness: f64,
    /// Tardiness robustness `R1 = 1/E[δ]`.
    pub r1: f64,
    /// Miss rate `α`.
    pub miss_rate: f64,
    /// Miss-rate robustness `R2 = 1/α`.
    pub r2: f64,
    /// Number of Monte Carlo realizations behind the estimates.
    pub realizations: usize,
}

impl ScheduleReport {
    /// Builds a report from the Monte Carlo output.
    #[must_use]
    pub fn from_robustness(r: &RobustnessReport) -> Self {
        Self {
            expected_makespan: r.expected_makespan,
            average_slack: r.average_slack,
            mean_realized_makespan: r.mean_makespan,
            mean_tardiness: r.mean_tardiness,
            r1: r.r1,
            miss_rate: r.miss_rate,
            r2: r.r2,
            realizations: r.realizations,
        }
    }

    /// Renders a compact human-readable block.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        format!(
            "expected makespan M0 : {:>10.3}\n\
             average slack      : {:>10.3}\n\
             mean realized M    : {:>10.3}\n\
             mean tardiness E[d]: {:>10.4}\n\
             robustness R1      : {:>10.3}\n\
             miss rate alpha    : {:>10.4}\n\
             robustness R2      : {:>10.3}\n\
             realizations       : {:>10}",
            self.expected_makespan,
            self.average_slack,
            self.mean_realized_makespan,
            self.mean_tardiness,
            self.r1,
            self.miss_rate,
            self.r2,
            self.realizations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_copies_fields() {
        let rr = RobustnessReport::from_makespans(10.0, 1.2, vec![9.0, 11.0, 12.0]);
        let r = ScheduleReport::from_robustness(&rr);
        assert_eq!(r.expected_makespan, 10.0);
        assert_eq!(r.average_slack, 1.2);
        assert_eq!(r.realizations, 3);
        assert_eq!(r.miss_rate, rr.miss_rate);
        assert_eq!(r.r1, rr.r1);
        let text = r.to_pretty_string();
        assert!(text.contains("robustness R1"));
        assert!(text.contains("10.000"));
    }
}

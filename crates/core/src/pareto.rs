//! Non-dominated (Pareto) set utilities (Deb, *Multi-Objective
//! Optimization using Evolutionary Algorithms*, cited as \[10\]).
//!
//! The bi-objective space is (makespan ↓, slack ↑). A point dominates
//! another when it is no worse in both coordinates and strictly better in
//! at least one. The ε sweep's output is generally a sampled approximation
//! of the Pareto front; [`pareto_front`] filters it down to the
//! non-dominated subset.

/// A point of the bi-objective space with an arbitrary tag (e.g. its ε).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Expected makespan (minimized).
    pub makespan: f64,
    /// Average slack (maximized).
    pub slack: f64,
    /// Caller tag (ε value, solver id, …).
    pub tag: f64,
}

/// `true` when `a` dominates `b`: `a.makespan ≤ b.makespan`,
/// `a.slack ≥ b.slack`, with at least one strict.
#[must_use]
pub fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    let no_worse = a.makespan <= b.makespan && a.slack >= b.slack;
    let strictly_better = a.makespan < b.makespan || a.slack > b.slack;
    no_worse && strictly_better
}

/// Extracts the non-dominated subset, sorted by increasing makespan.
/// Duplicate coordinates are kept once (first tag wins).
#[must_use]
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = Vec::new();
    for p in points {
        if points.iter().any(|q| dominates(q, p)) {
            continue;
        }
        if front
            .iter()
            .any(|q| q.makespan == p.makespan && q.slack == p.slack)
        {
            continue;
        }
        front.push(*p);
    }
    front.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
    front
}

/// Hypervolume of a front in (makespan ↓, slack ↑) against a reference
/// point `(ref_makespan, ref_slack)` that every front point must dominate
/// (`makespan ≤ ref_makespan`, `slack ≥ ref_slack`). Points failing that
/// are ignored. Larger is better.
///
/// For the 2-D bi-objective case the hypervolume is the staircase area:
/// sort by makespan and accumulate `(next_makespan − makespan) ×
/// (slack − ref_slack)` strips, right-closed at the reference makespan.
#[must_use]
pub fn hypervolume(points: &[ParetoPoint], ref_makespan: f64, ref_slack: f64) -> f64 {
    let mut front: Vec<ParetoPoint> = pareto_front(points)
        .into_iter()
        .filter(|p| p.makespan <= ref_makespan && p.slack >= ref_slack)
        .collect();
    if front.is_empty() {
        return 0.0;
    }
    front.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
    let mut area = 0.0;
    for (i, p) in front.iter().enumerate() {
        let right = if i + 1 < front.len() {
            front[i + 1].makespan
        } else {
            ref_makespan
        };
        area += (right - p.makespan) * (p.slack - ref_slack);
    }
    area
}

/// Coverage `C(A, B)`: the fraction of `B`'s points weakly dominated by
/// some point of `A` (Zitzler's two-set coverage). `C(A,B) = 1` means `A`
/// covers all of `B`; the measure is not symmetric.
#[must_use]
pub fn coverage(a: &[ParetoPoint], b: &[ParetoPoint]) -> f64 {
    if b.is_empty() {
        return f64::NAN;
    }
    let covered = b
        .iter()
        .filter(|q| {
            a.iter().any(|p| {
                (p.makespan <= q.makespan && p.slack >= q.slack)
                    && (p.makespan < q.makespan
                        || p.slack > q.slack
                        || (p.makespan == q.makespan && p.slack == q.slack))
            })
        })
        .count();
    covered as f64 / b.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(makespan: f64, slack: f64) -> ParetoPoint {
        ParetoPoint {
            makespan,
            slack,
            tag: 0.0,
        }
    }

    #[test]
    fn dominance_relation() {
        assert!(dominates(&p(1.0, 5.0), &p(2.0, 4.0)));
        assert!(dominates(&p(1.0, 5.0), &p(1.0, 4.0)));
        assert!(dominates(&p(1.0, 5.0), &p(2.0, 5.0)));
        assert!(!dominates(&p(1.0, 5.0), &p(1.0, 5.0)), "no self-dominance");
        assert!(!dominates(&p(1.0, 3.0), &p(2.0, 5.0)), "trade-off points");
        assert!(!dominates(&p(2.0, 5.0), &p(1.0, 3.0)));
    }

    #[test]
    fn front_filters_dominated() {
        let pts = vec![
            p(1.0, 1.0), // front
            p(2.0, 3.0), // front
            p(3.0, 2.0), // dominated by (2,3)
            p(4.0, 5.0), // front
            p(4.5, 4.0), // dominated by (4,5)
        ];
        let f = pareto_front(&pts);
        let coords: Vec<(f64, f64)> = f.iter().map(|q| (q.makespan, q.slack)).collect();
        assert_eq!(coords, vec![(1.0, 1.0), (2.0, 3.0), (4.0, 5.0)]);
    }

    #[test]
    fn front_is_monotone_in_both_objectives() {
        let pts: Vec<ParetoPoint> = (0..20)
            .map(|i| {
                let x = f64::from(i);
                p(10.0 + x, (x * 1.7).sin() * 5.0 + x * 0.3)
            })
            .collect();
        let f = pareto_front(&pts);
        for w in f.windows(2) {
            assert!(w[0].makespan < w[1].makespan);
            assert!(w[0].slack < w[1].slack, "front must trade off");
        }
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![p(1.0, 1.0), p(1.0, 1.0), p(1.0, 1.0)];
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[p(3.0, 2.0)]).len(), 1);
    }

    #[test]
    fn hypervolume_single_point_rectangle() {
        // One point (2, 5), reference (10, 1): area (10-2) * (5-1) = 32.
        assert_eq!(hypervolume(&[p(2.0, 5.0)], 10.0, 1.0), 32.0);
    }

    #[test]
    fn hypervolume_staircase() {
        // Points (2,5) and (6,8), reference (10, 1).
        // Strip 1: (6-2) * (5-1) = 16. Strip 2: (10-6) * (8-1) = 28.
        let hv = hypervolume(&[p(2.0, 5.0), p(6.0, 8.0)], 10.0, 1.0);
        assert_eq!(hv, 44.0);
        // Adding a dominated point changes nothing.
        let hv2 = hypervolume(&[p(2.0, 5.0), p(6.0, 8.0), p(7.0, 4.0)], 10.0, 1.0);
        assert_eq!(hv2, 44.0);
    }

    #[test]
    fn hypervolume_ignores_points_beyond_reference() {
        assert_eq!(hypervolume(&[p(11.0, 5.0)], 10.0, 1.0), 0.0);
        assert_eq!(hypervolume(&[p(2.0, 0.5)], 10.0, 1.0), 0.0);
        assert_eq!(hypervolume(&[], 10.0, 1.0), 0.0);
    }

    #[test]
    fn bigger_front_never_has_smaller_hypervolume() {
        let base = vec![p(2.0, 5.0), p(6.0, 8.0)];
        let richer = vec![p(2.0, 5.0), p(4.0, 7.0), p(6.0, 8.0)];
        assert!(hypervolume(&richer, 10.0, 1.0) >= hypervolume(&base, 10.0, 1.0));
    }

    #[test]
    fn coverage_basics() {
        let a = vec![p(1.0, 5.0), p(3.0, 8.0)];
        let b = vec![p(2.0, 4.0), p(3.0, 8.0), p(0.5, 9.0)];
        // (1,5) dominates (2,4); (3,8) weakly covers (3,8); (0.5,9) uncovered.
        assert!((coverage(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        // In the other direction (0.5,9) covers (1,5) and (3,8) covers
        // itself, so coverage(b,a) = 1 — the measure is not symmetric.
        assert!((coverage(&b, &a) - 1.0).abs() < 1e-12);
        assert!(coverage(&a, &[]).is_nan());
    }
}

//! Property-based verification of the replication subsystem's contracts:
//!
//! * **first-finisher-wins only helps** — under scenarios without
//!   permanent failures, executing with a replica plan never realizes a
//!   larger makespan than the primary-only run on the same durations and
//!   scenario;
//! * **the fault-free plan is untouched** — with a quiet scenario and
//!   nominal replica draws, the replicated run is bit-identical to the
//!   primary-only run (makespan and every task's start/finish), for every
//!   placement policy and budget;
//! * **replicas respect processor exclusivity** — no two copy spans
//!   (primary or replica) overlap on any processor, even through failures,
//!   kills and promotions.

use proptest::prelude::*;

use rand::Rng as _;
use rds_platform::ProcId;
use rds_sched::faults::{FaultConfig, FaultScenario, ReplicaDraws};
use rds_sched::realization::sample_realized_matrix;
use rds_sched::recovery::{
    execute_replicated, execute_with_faults, RecoveryConfig, RecoveryPolicy,
};
use rds_sched::replication::{plan_replicas, PlacementPolicy, ReplicationConfig};
use rds_sched::{Instance, InstanceSpec, Schedule};
use rds_stats::matrix::Matrix;
use rds_stats::rng::rng_from_seed;

/// Builds a random instance plus a random valid schedule for it.
fn setup(seed: u64, tasks: usize, procs: usize) -> (Instance, Schedule) {
    let inst = InstanceSpec::new(tasks, procs)
        .seed(seed)
        .uncertainty_level(4.0)
        .build()
        .unwrap();
    let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
    let mut rng = rng_from_seed(seed ^ 0x7E91);
    let assignment: Vec<ProcId> = (0..tasks)
        .map(|_| ProcId(rng.gen_range(0..procs) as u32))
        .collect();
    let s = Schedule::from_order_and_assignment(&order, &assignment, procs).unwrap();
    (inst, s)
}

/// Full `n × m` matrix of expected durations.
fn expected_matrix(inst: &Instance) -> Matrix {
    Matrix::from_fn(inst.task_count(), inst.proc_count(), |t, p| {
        inst.timing.expected(t, ProcId(p as u32))
    })
}

fn policy_from(idx: usize) -> PlacementPolicy {
    PlacementPolicy::all()[idx % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A replica can only help: on scenarios without permanent failures
    /// (crashes, stragglers, slowdowns allowed) the replicated run always
    /// completes and never realizes a larger makespan than the primary-only
    /// run on the identical durations and scenario.
    #[test]
    fn first_finisher_never_increases_makespan(
        seed in 0u64..400,
        tasks in 5usize..30,
        procs in 2usize..6,
        budget in 0.0f64..1.0,
        pol in 0usize..3,
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let durations = sample_realized_matrix(
            &inst.timing, tasks, procs, seed ^ 0xD1CE,
        );
        let faults = FaultConfig {
            failure_rate: 0.0,
            crash_rate: 0.4,
            straggler_rate: 0.2,
            slowdown_rate: 0.2,
            ..FaultConfig::default()
        }
        .with_horizon(50.0);
        let scenario = FaultScenario::generate(&faults, tasks, procs, seed ^ 0x5CEA);
        let recovery = RecoveryConfig::new(RecoveryPolicy::RetrySameProc);

        let rcfg = ReplicationConfig {
            budget,
            policy: policy_from(pol),
            seed,
            ..ReplicationConfig::default()
        };
        let plan = plan_replicas(&inst, &s, &rcfg).unwrap();
        let draws = ReplicaDraws::generate(&plan, &inst.timing, faults.crash_rate, seed ^ 0xADD);

        let solo = execute_with_faults(&inst, &s, &durations, &scenario, &recovery).unwrap();
        let both =
            execute_replicated(&inst, &s, &durations, &scenario, &recovery, &plan, &draws)
                .unwrap();
        let m_solo = solo.outcome.makespan().expect("no failures: retry completes");
        let m_both = both.outcome.makespan().expect("replicas never hurt completion");
        prop_assert!(
            m_both <= m_solo + 1e-9,
            "replicas extended the makespan: {m_both} > {m_solo} \
             (budget {budget}, {} replicas)",
            plan.count()
        );
    }

    /// Proactive placement is invisible in the fault-free run: with a quiet
    /// scenario, expected durations and nominal replica draws, makespan and
    /// every task's start/finish are bit-identical to the primary-only run.
    #[test]
    fn quiet_run_is_bit_identical_under_any_plan(
        seed in 0u64..400,
        tasks in 5usize..30,
        procs in 2usize..6,
        budget in 0.0f64..1.0,
        pol in 0usize..3,
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let durations = expected_matrix(&inst);
        let recovery = RecoveryConfig::new(RecoveryPolicy::RetrySameProc);
        let rcfg = ReplicationConfig {
            budget,
            policy: policy_from(pol),
            seed,
            ..ReplicationConfig::default()
        };
        let plan = plan_replicas(&inst, &s, &rcfg).unwrap();
        let draws = ReplicaDraws::nominal(&plan, &inst.timing);

        let solo = execute_with_faults(
            &inst, &s, &durations, &FaultScenario::default(), &recovery,
        )
        .unwrap();
        let both = execute_replicated(
            &inst, &s, &durations, &FaultScenario::default(), &recovery, &plan, &draws,
        )
        .unwrap();
        prop_assert_eq!(
            both.outcome.makespan().unwrap().to_bits(),
            solo.outcome.makespan().unwrap().to_bits(),
            "M0 perturbed by {} replicas", plan.count()
        );
        for t in 0..tasks {
            prop_assert_eq!(both.start[t].to_bits(), solo.start[t].to_bits(), "start of {t}");
            prop_assert_eq!(both.finish[t].to_bits(), solo.finish[t].to_bits(), "finish of {t}");
        }
        prop_assert_eq!(both.stats.replica_wins, 0);
        prop_assert_eq!(both.schedule.as_ref(), solo.schedule.as_ref());
    }

    /// Copy spans — primary attempts and replica executions alike, complete
    /// or killed — never overlap on a processor, under the full fault model
    /// and every recovery policy.
    #[test]
    fn copy_spans_respect_processor_exclusivity(
        seed in 0u64..400,
        tasks in 5usize..30,
        procs in 2usize..6,
        budget in 0.2f64..1.0,
        pol in 0usize..3,
        policy_idx in 0usize..3,
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let durations = sample_realized_matrix(
            &inst.timing, tasks, procs, seed ^ 0xD1CE,
        );
        let faults = FaultConfig {
            failure_rate: 0.5,
            crash_rate: 0.3,
            straggler_rate: 0.2,
            slowdown_rate: 0.2,
            ..FaultConfig::default()
        }
        .with_horizon(50.0);
        let scenario = FaultScenario::generate(&faults, tasks, procs, seed ^ 0x5CEA);
        let recovery = RecoveryConfig::new(RecoveryPolicy::all()[policy_idx]);
        let rcfg = ReplicationConfig {
            budget,
            policy: policy_from(pol),
            seed,
            ..ReplicationConfig::default()
        };
        let plan = plan_replicas(&inst, &s, &rcfg).unwrap();
        let draws = ReplicaDraws::generate(&plan, &inst.timing, faults.crash_rate, seed ^ 0xADD);

        // Completion is not guaranteed here (FailStop/Retry under permanent
        // failures); exclusivity must hold either way.
        let run =
            execute_replicated(&inst, &s, &durations, &scenario, &recovery, &plan, &draws)
                .unwrap();
        for p in 0..procs {
            let mut spans: Vec<(f64, f64, bool)> = run
                .spans
                .iter()
                .filter(|sp| sp.proc == ProcId(p as u32))
                .map(|sp| (sp.start, sp.end, sp.replica))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1 - 1e-9,
                    "copies overlap on proc {p}: \
                     [{}, {}] (replica: {}) then [{}, {}] (replica: {})",
                    w[0].0, w[0].1, w[0].2, w[1].0, w[1].1, w[1].2
                );
            }
            // Spans never extend past the processor's failure onset.
            if let Some(f) = scenario.failures.iter().find(|f| f.proc == ProcId(p as u32)) {
                for &(_, end, _) in &spans {
                    prop_assert!(end <= f.at + 1e-9, "span past failure on proc {p}");
                }
            }
        }
    }
}

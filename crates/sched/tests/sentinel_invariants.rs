//! Property-based verification of the sentinel executor's contracts:
//!
//! * **slack absorbs independent overruns silently** — perturbing a
//!   pairwise-independent set of tasks (an antichain of the disjunctive
//!   graph, Corollary 3.5's hypothesis), each by strictly less than its
//!   own slack, never extends the realized makespan beyond `M₀` and never
//!   fires the sentinel at `trigger_fraction = 1.0`;
//! * **a quiet run is bit-identical to the non-sentinel executor** — with
//!   the sentinel attached but silent (nominal durations, quiet
//!   scenario), outcome, per-task times, events, and schedule all match
//!   [`execute_with_faults`] exactly;
//! * **the replan budget binds in every realization** — under the full
//!   fault model, sentinel-initiated replans never exceed
//!   `max_replans`, and speculation never exceeds `max_speculations`.

use proptest::prelude::*;

use rand::Rng as _;
use rds_platform::ProcId;
use rds_sched::disjunctive::DisjunctiveGraph;
use rds_sched::faults::{FaultConfig, FaultScenario, ReplicaDraws};
use rds_sched::realization::sample_realized_matrix;
use rds_sched::recovery::{execute_with_faults, RecoveryConfig, RecoveryPolicy};
use rds_sched::replication::ReplicaPlan;
use rds_sched::sentinel::{execute_adaptive, SentinelConfig};
use rds_sched::{slack, Instance, InstanceSpec, Schedule};
use rds_stats::matrix::Matrix;
use rds_stats::rng::rng_from_seed;

/// Builds a random instance plus a random valid schedule for it.
fn setup(seed: u64, tasks: usize, procs: usize) -> (Instance, Schedule) {
    let inst = InstanceSpec::new(tasks, procs)
        .seed(seed)
        .uncertainty_level(4.0)
        .build()
        .unwrap();
    let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
    let mut rng = rng_from_seed(seed ^ 0x7E91);
    let assignment: Vec<ProcId> = (0..tasks)
        .map(|_| ProcId(rng.gen_range(0..procs) as u32))
        .collect();
    let s = Schedule::from_order_and_assignment(&order, &assignment, procs).unwrap();
    (inst, s)
}

/// Full `n × m` matrix of expected durations.
fn expected_matrix(inst: &Instance) -> Matrix {
    Matrix::from_fn(inst.task_count(), inst.proc_count(), |t, p| {
        inst.timing.expected(t, ProcId(p as u32))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corollary 3.5, executed: overruns on a pairwise-independent task
    /// set, each strictly below the task's own slack, leave the realized
    /// makespan at `M₀` — and the sentinel (watching at
    /// `trigger_fraction = 1.0`) has nothing to say about them.
    #[test]
    fn independent_overruns_below_slack_stay_silent(
        seed in 0u64..400,
        tasks in 8usize..30,
        procs in 2usize..5,
        frac in 0.1f64..0.5,
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let analysis = slack::analyze_expected(&inst, &s).unwrap();
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();

        // Greedy antichain of slack-rich tasks in the disjunctive graph.
        let mut chosen: Vec<usize> = Vec::new();
        for t in 0..tasks {
            if analysis.slack[t] > 1e-6
                && chosen.iter().all(|&c| {
                    ds.are_independent(
                        rds_graph::TaskId(t as u32),
                        rds_graph::TaskId(c as u32),
                    )
                })
            {
                chosen.push(t);
            }
        }

        // Overrun each chosen task by `frac` (< 1) of its slack.
        let mut durations = expected_matrix(&inst);
        for &t in &chosen {
            let pi = s.proc_of(rds_graph::TaskId(t as u32)).index();
            let base = durations.get(t, pi).unwrap();
            durations.set(t, pi, base + frac * analysis.slack[t]);
        }

        let run = execute_adaptive(
            &inst,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
            &ReplicaPlan::empty(tasks),
            &ReplicaDraws::default(),
            &analysis,
            &SentinelConfig::default().with_trigger(1.0),
        )
        .unwrap();
        let realized = run.outcome.makespan().expect("quiet scenario completes");
        prop_assert!(
            realized <= analysis.makespan * (1.0 + 1e-9),
            "{} independent sub-slack overruns extended M0: {realized} > {}",
            chosen.len(),
            analysis.makespan
        );
        prop_assert_eq!(
            run.stats.sentinel_fires, 0,
            "sentinel fired on slack-absorbed overruns"
        );
        prop_assert_eq!(run.stats.sentinel_replans, 0);
        prop_assert_eq!(run.stats.dropped_tasks, 0);
    }

    /// With the sentinel attached but silent — nominal durations, no
    /// faults — the adaptive executor is bit-identical to
    /// [`execute_with_faults`]: same outcome, same per-task times, same
    /// events, same realized schedule.
    #[test]
    fn quiet_adaptive_run_is_bit_identical_to_plain_executor(
        seed in 0u64..400,
        tasks in 5usize..30,
        procs in 2usize..6,
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let analysis = slack::analyze_expected(&inst, &s).unwrap();
        let durations = expected_matrix(&inst);
        let recovery = RecoveryConfig::new(RecoveryPolicy::MigrateReplan);

        let plain = execute_with_faults(
            &inst, &s, &durations, &FaultScenario::default(), &recovery,
        )
        .unwrap();
        let adaptive = execute_adaptive(
            &inst,
            &s,
            &durations,
            &FaultScenario::default(),
            &recovery,
            &ReplicaPlan::empty(tasks),
            &ReplicaDraws::default(),
            &analysis,
            &SentinelConfig::default(),
        )
        .unwrap();

        prop_assert_eq!(
            adaptive.outcome.makespan().unwrap().to_bits(),
            plain.outcome.makespan().unwrap().to_bits()
        );
        for t in 0..tasks {
            prop_assert_eq!(adaptive.start[t].to_bits(), plain.start[t].to_bits(), "start {t}");
            prop_assert_eq!(adaptive.finish[t].to_bits(), plain.finish[t].to_bits(), "finish {t}");
        }
        prop_assert_eq!(adaptive.events.len(), plain.events.len());
        prop_assert_eq!(adaptive.schedule.as_ref(), plain.schedule.as_ref());
        prop_assert_eq!(adaptive.stats.sentinel_fires, 0);
        prop_assert_eq!(adaptive.stats.speculations, 0);
        prop_assert_eq!(adaptive.stats.dropped_tasks, 0);
    }

    /// The escalation budgets bind in every realization, under the full
    /// fault model (failures, slowdowns, stragglers, crashes) and
    /// realized durations: sentinel replans ≤ `max_replans`, speculations
    /// ≤ `max_speculations`.
    #[test]
    fn escalation_budgets_bind_under_full_fault_model(
        seed in 0u64..400,
        tasks in 8usize..30,
        procs in 2usize..6,
        max_replans in 0usize..4,
        max_speculations in 0usize..4,
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let analysis = slack::analyze_expected(&inst, &s).unwrap();
        let durations = sample_realized_matrix(&inst.timing, tasks, procs, seed ^ 0xD1CE);
        let faults = FaultConfig {
            failure_rate: 0.3,
            crash_rate: 0.2,
            straggler_rate: 0.3,
            slowdown_rate: 0.2,
            ..FaultConfig::default()
        }
        .with_horizon(analysis.makespan);
        let scenario = FaultScenario::generate(&faults, tasks, procs, seed ^ 0x5CEA);
        let sentinel = SentinelConfig::default()
            .with_trigger(0.1)
            .with_max_replans(max_replans);

        let run = execute_adaptive(
            &inst,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
            &ReplicaPlan::empty(tasks),
            &ReplicaDraws::default(),
            &analysis,
            &SentinelConfig {
                max_speculations,
                ..sentinel
            },
        )
        .unwrap();
        prop_assert!(
            run.stats.sentinel_replans <= max_replans,
            "{} sentinel replans exceed budget {max_replans}",
            run.stats.sentinel_replans
        );
        prop_assert!(
            run.stats.speculations <= max_speculations,
            "{} speculations exceed budget {max_speculations}",
            run.stats.speculations
        );
    }
}

//! Invariants of the energy/reliability scoring path and the
//! tri-objective search built on it.
//!
//! Four families:
//!
//! 1. **Energy monotonicity.** On an idle-free schedule the only
//!    time-proportional draw is leakage over busy time, so with a pure
//!    static (leakage) power model, raising any task's frequency never
//!    increases energy — the task finishes sooner and leaks less.
//!    Dually, with a pure dynamic model (`P = κ·f^α`, `α > 1`), lowering
//!    a frequency never increases energy — the classic DVFS saving.
//! 2. **Reliability range and direction.** Schedule reliability always
//!    lies in `(0, 1]`, and raising a frequency never lowers it (the
//!    fault rate falls *and* the exposure window shrinks).
//! 3. **Untyped bit-identity.** With every gene pinned to the ladder
//!    top, the tri-objective kernel's makespan and average slack are
//!    *bit*-identical to the frequency-oblivious CSR kernel — DVFS off
//!    is exactly the pre-energy behavior.
//! 4. **Front discipline.** The constrained NSGA-II front is mutually
//!    non-dominated on (makespan ↓, slack ↑, energy ↓) and, when
//!    feasible, every member meets the reliability floor.

use proptest::prelude::*;
use rand::Rng;

use rds_ga::{nsga2_tri, Chromosome, GaParams};
use rds_platform::{EnergyModel, FreqLadder, PowerModel, ReliabilityModel};
use rds_sched::energy::{full_speed_genes, score_assignment, EnergyScratch};
use rds_sched::csr::EvalScratch;
use rds_sched::instance::{Instance, InstanceSpec};
use rds_stats::rng::rng_from_seed;

fn instance(tasks: usize, procs: usize, seed: u64) -> Instance {
    InstanceSpec::new(tasks, procs)
        .seed(seed)
        .build()
        .expect("spec generates")
}

/// A model with the given static/dynamic coefficients and the default
/// 4-level ladder down to 0.5.
fn model(m: usize, static_power: f64, dyn_coeff: f64) -> EnergyModel {
    let ladder = FreqLadder::uniform(4, 0.5).expect("valid ladder");
    let power = PowerModel::homogeneous(m, static_power, dyn_coeff, 3.0).expect("valid power");
    let reliability = ReliabilityModel::new(1e-4, 2.0, ladder.min()).expect("valid reliability");
    EnergyModel::new(ladder, power, reliability)
}

/// Random chromosome plus random frequency genes for `inst`.
fn random_genes(inst: &Instance, model: &EnergyModel, seed: u64) -> (Chromosome, Vec<u8>) {
    let mut rng = rng_from_seed(seed);
    let chrom = Chromosome::random_for(inst, &mut rng);
    let levels = model.ladder.len();
    let freq = (0..inst.task_count())
        .map(|_| rng.gen_range(0..levels) as u8)
        .collect();
    (chrom, freq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Family 1a: pure-leakage energy is monotone non-increasing as any
    /// frequency rises.
    #[test]
    fn leakage_energy_never_rises_with_frequency(
        tasks in 4usize..24,
        procs in 2usize..5,
        inst_seed in any::<u64>(),
        gene_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let m = model(procs, 0.5, 0.0);
        let (chrom, freq) = random_genes(&inst, &m, gene_seed);
        let base = score_assignment(&inst, &m, &chrom.assignment, &freq);
        for t in 0..tasks {
            if (freq[t] as usize) < m.ladder.top_index() {
                let mut faster = freq.clone();
                faster[t] += 1;
                let e = score_assignment(&inst, &m, &chrom.assignment, &faster);
                prop_assert!(e.energy <= base.energy,
                    "raising task {t}'s frequency raised leakage energy: {} > {}",
                    e.energy, base.energy);
            }
        }
    }

    /// Family 1b: pure-dynamic energy is monotone non-increasing as any
    /// frequency drops (the DVFS saving direction, `E ∝ f^(α−1)`).
    #[test]
    fn dynamic_energy_never_rises_when_slowing_down(
        tasks in 4usize..24,
        procs in 2usize..5,
        inst_seed in any::<u64>(),
        gene_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let m = model(procs, 0.0, 1.0);
        let (chrom, freq) = random_genes(&inst, &m, gene_seed);
        let base = score_assignment(&inst, &m, &chrom.assignment, &freq);
        for t in 0..tasks {
            if freq[t] > 0 {
                let mut slower = freq.clone();
                slower[t] -= 1;
                let e = score_assignment(&inst, &m, &chrom.assignment, &slower);
                prop_assert!(e.energy <= base.energy,
                    "lowering task {t}'s frequency raised dynamic energy: {} > {}",
                    e.energy, base.energy);
            }
        }
    }

    /// Family 2: reliability lies in (0, 1] and never falls when a
    /// frequency rises.
    #[test]
    fn reliability_in_unit_interval_and_monotone(
        tasks in 4usize..24,
        procs in 2usize..5,
        inst_seed in any::<u64>(),
        gene_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let m = model(procs, 0.1, 1.0);
        let (chrom, freq) = random_genes(&inst, &m, gene_seed);
        let base = score_assignment(&inst, &m, &chrom.assignment, &freq);
        prop_assert!(base.reliability > 0.0 && base.reliability <= 1.0,
            "reliability {} escaped (0, 1]", base.reliability);
        for t in 0..tasks {
            if (freq[t] as usize) < m.ladder.top_index() {
                let mut faster = freq.clone();
                faster[t] += 1;
                let e = score_assignment(&inst, &m, &chrom.assignment, &faster);
                prop_assert!(e.reliability >= base.reliability,
                    "raising task {t}'s frequency lowered reliability: {} < {}",
                    e.reliability, base.reliability);
            }
        }
    }

    /// Family 3: with every gene at the ladder top, the tri kernel's
    /// makespan and slack are bit-identical to the frequency-oblivious
    /// kernel (untyped, no-DVFS runs reproduce pre-energy numbers).
    #[test]
    fn full_speed_tri_kernel_bit_identical_to_base(
        tasks in 4usize..32,
        procs in 2usize..5,
        inst_seed in any::<u64>(),
        gene_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let m = model(procs, 0.1, 1.0);
        let (chrom, _) = random_genes(&inst, &m, gene_seed);
        let genes = full_speed_genes(tasks, &m);

        let mut base = EvalScratch::new();
        let reference = base
            .evaluate(&inst, &chrom.order, &chrom.assignment)
            .expect("acyclic");
        let mut tri = EnergyScratch::new();
        let summary = tri
            .evaluate(&inst, &m, &chrom.order, &chrom.assignment, &genes)
            .expect("acyclic");

        prop_assert_eq!(summary.makespan.to_bits(), reference.makespan.to_bits());
        prop_assert_eq!(
            summary.average_slack.to_bits(),
            reference.average_slack.to_bits()
        );
    }
}

/// `a` dominates `b` on (makespan ↓, slack ↑, energy ↓).
fn dominates(a: &rds_ga::TriEvaluation, b: &rds_ga::TriEvaluation) -> bool {
    let no_worse = a.makespan <= b.makespan && a.avg_slack >= b.avg_slack && a.energy <= b.energy;
    let better = a.makespan < b.makespan || a.avg_slack > b.avg_slack || a.energy < b.energy;
    no_worse && better
}

/// Family 4: the constrained NSGA-II front is mutually non-dominated,
/// and when the run reports feasibility every member clears the floor.
#[test]
fn nsga2_tri_front_is_non_dominated_and_feasible() {
    for seed in [3u64, 11, 29] {
        let inst = instance(18, 3, seed);
        let m = EnergyModel::default_for(3);
        let rel_min = 0.85;
        let params = GaParams::quick()
            .max_generations(25)
            .stall_generations(10)
            .seed(seed);
        let result = nsga2_tri(&inst, &m, rel_min, params);
        assert!(!result.front.is_empty(), "seed {seed}: empty front");
        assert!(result.feasible, "seed {seed}: infeasible at a lenient floor");
        for p in &result.front {
            assert!(
                p.eval.reliability >= rel_min,
                "seed {seed}: front member below the floor: {}",
                p.eval.reliability
            );
            assert!(p.eval.reliability <= 1.0);
        }
        for (i, a) in result.front.iter().enumerate() {
            for (j, b) in result.front.iter().enumerate() {
                if i != j {
                    assert!(
                        !dominates(&a.eval, &b.eval),
                        "seed {seed}: front member {i} dominates {j}"
                    );
                }
            }
        }
    }
}

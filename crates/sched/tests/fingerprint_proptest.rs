//! Property tests of the stable instance fingerprint: it must survive a
//! serialization round-trip unchanged (the schedule cache outlives any
//! in-memory representation) and must change whenever any schedule-
//! relevant ingredient — topology, BCET, UL, or transfer rates — changes.

use proptest::prelude::*;

use rds_graph::{TaskGraphBuilder, TaskId};
use rds_platform::{Platform, ProcId, TimingModel};
use rds_sched::io;
use rds_sched::{Instance, InstanceSpec};

fn build(seed: u64, tasks: usize, procs: usize, ul: f64) -> Instance {
    InstanceSpec::new(tasks, procs)
        .seed(seed)
        .uncertainty_level(ul)
        .build()
        .expect("generated instance is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fingerprint_survives_io_roundtrip(
        seed in 0u64..1000,
        tasks in 1usize..50,
        procs in 1usize..8,
        ul in 1.5f64..8.0,
    ) {
        let inst = build(seed, tasks, procs, ul);
        let back = io::read_instance(&io::write_instance(&inst)).unwrap();
        prop_assert_eq!(back.fingerprint(), inst.fingerprint());
        // And it is a fixed point across a second trip.
        let again = io::read_instance(&io::write_instance(&back)).unwrap();
        prop_assert_eq!(again.fingerprint(), inst.fingerprint());
    }

    #[test]
    fn fingerprint_separates_different_instances(
        seed in 0u64..500,
        tasks in 2usize..40,
        procs in 2usize..6,
    ) {
        let a = build(seed, tasks, procs, 2.0);
        let b = build(seed ^ 0x5EED, tasks, procs, 2.0);
        // Same shape, different random content: collision here would mean
        // the hash ignores the matrices.
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_sees_bcet_and_ul(
        seed in 0u64..500,
        tasks in 2usize..40,
        procs in 1usize..6,
        task in 0usize..40,
        delta in 0.5f64..10.0,
    ) {
        let base = build(seed, tasks, procs, 2.0);
        let t = task % tasks;
        let p = task % procs;

        let mut bcet = base.timing.bcet_matrix().clone();
        bcet[(t, p)] += delta;
        let timing = TimingModel::new(bcet, base.timing.ul_matrix().clone()).unwrap();
        let tweaked = Instance::new(base.graph.clone(), base.platform.clone(), timing).unwrap();
        prop_assert_ne!(tweaked.fingerprint(), base.fingerprint());

        let mut ul = base.timing.ul_matrix().clone();
        ul[(t, p)] += delta;
        let timing = TimingModel::new(base.timing.bcet_matrix().clone(), ul).unwrap();
        let tweaked = Instance::new(base.graph.clone(), base.platform.clone(), timing).unwrap();
        prop_assert_ne!(tweaked.fingerprint(), base.fingerprint());
    }

    #[test]
    fn fingerprint_sees_topology_and_rates(
        seed in 0u64..500,
        tasks in 4usize..40,
        procs in 2usize..6,
    ) {
        let base = build(seed, tasks, procs, 2.0);
        let edges: Vec<(TaskId, TaskId, f64)> = base.graph.edges().collect();
        prop_assume!(!edges.is_empty());

        // Drop the first edge.
        let mut builder = TaskGraphBuilder::with_tasks(base.task_count());
        for &(from, to, data) in edges.iter().skip(1) {
            builder.add_edge(from, to, data);
        }
        let graph = builder.build().unwrap();
        let dropped = Instance::new(graph, base.platform.clone(), base.timing.clone()).unwrap();
        prop_assert_ne!(dropped.fingerprint(), base.fingerprint());

        // Double one off-diagonal transfer rate.
        let m = base.proc_count();
        let mut rates = rds_stats::matrix::Matrix::zeros(m, m);
        for r in 0..m {
            for c in 0..m {
                rates[(r, c)] = if r == c {
                    1.0
                } else {
                    base.platform.rate(ProcId(r as u32), ProcId(c as u32))
                };
            }
        }
        rates[(0, 1)] *= 2.0;
        let platform = Platform::from_rates(m, rates).unwrap();
        let tweaked = Instance::new(base.graph.clone(), platform, base.timing.clone()).unwrap();
        prop_assert_ne!(tweaked.fingerprint(), base.fingerprint());
    }
}

//! Parity proofs for the flat-CSR evaluation kernel.
//!
//! Two families of properties, both asserted with *bit* equality (`==` on
//! `f64::to_bits`, never approximate):
//!
//! 1. The CSR kernel (`EvalScratch::evaluate`, `DisjunctiveCsr::makespan`)
//!    produces exactly the same numbers as the nested-graph reference path
//!    (`DisjunctiveGraph` + `slack::analyze` / `timing::makespan_with_durations`)
//!    on random instances and random chromosomes.
//! 2. The GA is bit-identical across rayon thread counts: running
//!    `GaEngine` inside 1-, 2- and 8-thread pools yields the same best
//!    chromosome, evaluations, history and final population, and the same
//!    kernel/memo counters (only wall-clock timing may differ).

use proptest::prelude::*;

use rds_ga::{Chromosome, GaEngine, GaParams, GaResult, Objective};
use rds_sched::csr::{DisjunctiveCsr, EvalScratch, LANES};
use rds_sched::disjunctive::DisjunctiveGraph;
use rds_sched::instance::{Instance, InstanceSpec};
use rds_sched::{slack, timing};
use rds_stats::rng::rng_from_seed;

fn instance(tasks: usize, procs: usize, seed: u64) -> Instance {
    InstanceSpec::new(tasks, procs)
        .seed(seed)
        .build()
        .expect("spec generates")
}

fn chromosome(inst: &Instance, seed: u64) -> Chromosome {
    let mut rng = rng_from_seed(seed);
    Chromosome::random_for(inst, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1a: scratch-arena slack analysis == reference analysis,
    /// bit for bit, including every per-task vector.
    #[test]
    fn csr_slack_bit_identical_to_reference(
        tasks in 5usize..40,
        procs in 1usize..5,
        inst_seed in any::<u64>(),
        chrom_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let c = chromosome(&inst, chrom_seed);
        let schedule = c.decode(procs);

        let ds = DisjunctiveGraph::build(&inst.graph, &schedule).expect("acyclic");
        let durations = timing::expected_durations(&inst.timing, &schedule);
        let reference = slack::analyze(&ds, &schedule, &inst.platform, &durations);

        let mut scratch = EvalScratch::new();
        // Evaluate twice through the same scratch: reuse must not change
        // anything.
        for _ in 0..2 {
            let summary = scratch
                .evaluate(&inst, &c.order, &c.assignment)
                .expect("acyclic");
            prop_assert_eq!(summary.makespan.to_bits(), reference.makespan.to_bits());
            prop_assert_eq!(
                summary.average_slack.to_bits(),
                reference.average_slack.to_bits()
            );
            prop_assert_eq!(&scratch.slack().top_level, &reference.top_level);
            prop_assert_eq!(&scratch.slack().bottom_level, &reference.bottom_level);
            prop_assert_eq!(&scratch.slack().slack, &reference.slack);
        }
    }

    /// Property 1b: the CSR forward pass == the reference makespan on
    /// *sampled* (non-expected) durations — the Monte-Carlo reuse path.
    #[test]
    fn csr_makespan_bit_identical_on_sampled_durations(
        tasks in 5usize..40,
        procs in 1usize..5,
        inst_seed in any::<u64>(),
        chrom_seed in any::<u64>(),
        draw_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let c = chromosome(&inst, chrom_seed);
        let schedule = c.decode(procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &schedule).expect("acyclic");
        let csr = DisjunctiveCsr::from_disjunctive(&ds, &schedule, &inst.platform);

        let mut rng = rng_from_seed(draw_seed);
        let mut finish = Vec::new();
        let mut reference_scratch = Vec::new();
        for _ in 0..3 {
            let durations = inst.timing.sample_assigned(&c.assignment, &mut rng);
            let reference = timing::makespan_with_durations(
                &ds,
                &schedule,
                &inst.platform,
                &durations,
                &mut reference_scratch,
            );
            let got = csr.makespan(&durations, &mut finish);
            prop_assert_eq!(got.to_bits(), reference.to_bits());
        }
    }

    /// Property 1c: lane `l` of the batched SoA kernel == the `l`-th
    /// sequential scalar walk, bit for bit, including ragged tails
    /// (`k` not a multiple of `LANES`; padding lanes ignored).
    #[test]
    fn makespan_batch_lane_equals_sequential(
        tasks in 5usize..40,
        procs in 1usize..5,
        inst_seed in any::<u64>(),
        chrom_seed in any::<u64>(),
        draw_seed in any::<u64>(),
        k in 1usize..=2 * LANES + 3,
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let c = chromosome(&inst, chrom_seed);
        let schedule = c.decode(procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &schedule).expect("acyclic");
        let csr = DisjunctiveCsr::from_disjunctive(&ds, &schedule, &inst.platform);
        let n = tasks;

        let mut rng = rng_from_seed(draw_seed);
        let realizations: Vec<Vec<f64>> = (0..k)
            .map(|_| inst.timing.sample_assigned(&c.assignment, &mut rng))
            .collect();
        let mut finish = Vec::new();
        let scalar: Vec<f64> = realizations
            .iter()
            .map(|d| csr.makespan(d, &mut finish))
            .collect();

        let chunks = k.div_ceil(LANES);
        let mut dur_soa = vec![0.0; chunks * LANES * n];
        let mut fin_soa = vec![0.0; chunks * LANES * n];
        for (j, d) in realizations.iter().enumerate() {
            let base = (j / LANES) * LANES * n + (j % LANES);
            for (t, &x) in d.iter().enumerate() {
                dur_soa[base + LANES * t] = x;
            }
        }
        let mut out = [0.0f64; LANES];
        for ci in 0..chunks {
            let (lo, hi) = (ci * LANES * n, (ci + 1) * LANES * n);
            csr.makespan_batch(&dur_soa[lo..hi], &mut fin_soa[lo..hi], &mut out);
            let live = LANES.min(k - ci * LANES);
            for (l, &m) in out[..live].iter().enumerate() {
                prop_assert_eq!(m.to_bits(), scalar[ci * LANES + l].to_bits());
            }
        }
    }

    /// Property 1d: delta (suffix) evaluation == full evaluation, bit for
    /// bit — makespan, average slack, and every per-task level — for
    /// order-only perturbations after a shared prefix.
    #[test]
    fn evaluate_delta_bit_identical_to_full(
        tasks in 8usize..40,
        procs in 2usize..5,
        inst_seed in any::<u64>(),
        chrom_seed in any::<u64>(),
        mut_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let parent = chromosome(&inst, chrom_seed);
        let mut prev = EvalScratch::new();
        prev.evaluate(&inst, &parent.order, &parent.assignment)
            .expect("acyclic");

        // A precedence-window mutation with the assignment restored: the
        // child differs from the parent only in scheduling-string
        // positions >= first_order.
        let mut rng = rng_from_seed(mut_seed);
        let mut child = parent.clone();
        let track =
            rds_ga::mutation::mutate_tracked(&mut child, &inst.graph, procs, &mut rng);
        child.assignment.clone_from(&parent.assignment);
        let fc = track.first_order.min(child.order.len());
        prop_assume!(fc > 0);

        let mut delta = EvalScratch::new();
        let got = delta
            .evaluate_delta(&inst, &child.order, &child.assignment, &prev, fc)
            .expect("acyclic");
        let mut full = EvalScratch::new();
        let want = full
            .evaluate(&inst, &child.order, &child.assignment)
            .expect("acyclic");
        prop_assert_eq!(got.makespan.to_bits(), want.makespan.to_bits());
        prop_assert_eq!(got.average_slack.to_bits(), want.average_slack.to_bits());
        prop_assert_eq!(&delta.slack().top_level, &full.slack().top_level);
        prop_assert_eq!(&delta.slack().bottom_level, &full.slack().bottom_level);
        prop_assert_eq!(&delta.slack().slack, &full.slack().slack);
    }
}

/// Asserts everything observable about two GA results is identical except
/// wall-clock timing (`eval_nanos`).
fn assert_ga_results_identical(a: &GaResult, b: &GaResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(
        a.best_eval.makespan.to_bits(),
        b.best_eval.makespan.to_bits()
    );
    assert_eq!(
        a.best_eval.avg_slack.to_bits(),
        b.best_eval.avg_slack.to_bits()
    );
    assert_eq!(a.best_feasible, b.best_feasible);
    assert_eq!(a.generations, b.generations);
    assert_eq!(a.final_population, b.final_population);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.best_makespan.to_bits(), y.best_makespan.to_bits());
        assert_eq!(x.best_slack.to_bits(), y.best_slack.to_bits());
        assert_eq!(x.best_feasible, y.best_feasible);
        assert_eq!(x.best_chromosome, y.best_chromosome);
    }
    // Kernel/memo counters are part of the determinism contract; only
    // eval_nanos may differ between runs.
    assert_eq!(a.stats.kernel_evals, b.stats.kernel_evals);
    assert_eq!(a.stats.memo_hits, b.stats.memo_hits);
    assert_eq!(a.stats.memo_collisions, b.stats.memo_collisions);
}

fn run_ga_in_pool(threads: usize, inst: &Instance, params: GaParams, obj: Objective) -> GaResult {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(|| GaEngine::new(inst, params, obj).run())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 2: the parallel population evaluation is bit-identical to
    /// sequential for any rayon thread count (1/2/8), memo on or off.
    #[test]
    fn ga_bit_identical_across_thread_counts(
        inst_seed in any::<u64>(),
        ga_seed in any::<u64>(),
        memo in any::<bool>(),
    ) {
        let inst = instance(25, 3, inst_seed);
        let params = GaParams::quick()
            .seed(ga_seed)
            .population(16)
            .max_generations(12)
            .stall_generations(12)
            .memo_capacity(if memo { 4096 } else { 0 });
        let base = run_ga_in_pool(1, &inst, params, Objective::MinimizeMakespan);
        for threads in [2usize, 8] {
            let other = run_ga_in_pool(threads, &inst, params, Objective::MinimizeMakespan);
            assert_ga_results_identical(&base, &other);
        }
    }
}

/// Fixed-seed smoke variant of property 2 (runs even when proptest is
/// filtered out; also covers the slack-maximizing objective).
#[test]
fn ga_thread_parity_fixed_seed() {
    let inst = instance(30, 4, 11);
    for obj in [Objective::MinimizeMakespan, Objective::MaximizeSlack] {
        let params = GaParams::quick()
            .seed(23)
            .population(16)
            .max_generations(20)
            .stall_generations(20);
        let base = run_ga_in_pool(1, &inst, params, obj);
        for threads in [2usize, 8] {
            let other = run_ga_in_pool(threads, &inst, params, obj);
            assert_ga_results_identical(&base, &other);
        }
    }
}

/// Property 3: the GA with delta (suffix) evaluation on — the default —
/// is bit-identical to the full-pass reference (`delta_eval(false)`),
/// and the delta path actually fires.
#[test]
fn ga_delta_parity_fixed_seed() {
    let inst = instance(30, 4, 13);
    for obj in [Objective::MinimizeMakespan, Objective::MaximizeSlack] {
        let params = GaParams::quick()
            .seed(31)
            .population(16)
            .max_generations(20)
            .stall_generations(20);
        let on = GaEngine::new(&inst, params, obj).run();
        let off = GaEngine::new(&inst, params.delta_eval(false), obj).run();
        assert_ga_results_identical(&on, &off);
        assert!(on.stats.delta_evals > 0, "delta path never fired ({obj:?})");
        assert_eq!(off.stats.delta_evals, 0);
        // Delta passes re-walk a strict subset of the string on average.
        assert!(on.stats.suffix_fraction() < 1.0);
    }
}

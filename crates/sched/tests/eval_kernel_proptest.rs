//! Parity proofs for the flat-CSR evaluation kernel.
//!
//! Two families of properties, both asserted with *bit* equality (`==` on
//! `f64::to_bits`, never approximate):
//!
//! 1. The CSR kernel (`EvalScratch::evaluate`, `DisjunctiveCsr::makespan`)
//!    produces exactly the same numbers as the nested-graph reference path
//!    (`DisjunctiveGraph` + `slack::analyze` / `timing::makespan_with_durations`)
//!    on random instances and random chromosomes.
//! 2. The GA is bit-identical across rayon thread counts: running
//!    `GaEngine` inside 1-, 2- and 8-thread pools yields the same best
//!    chromosome, evaluations, history and final population, and the same
//!    kernel/memo counters (only wall-clock timing may differ).

use proptest::prelude::*;

use rds_ga::{Chromosome, GaEngine, GaParams, GaResult, Objective};
use rds_sched::csr::{DisjunctiveCsr, EvalScratch};
use rds_sched::disjunctive::DisjunctiveGraph;
use rds_sched::instance::{Instance, InstanceSpec};
use rds_sched::{slack, timing};
use rds_stats::rng::rng_from_seed;

fn instance(tasks: usize, procs: usize, seed: u64) -> Instance {
    InstanceSpec::new(tasks, procs)
        .seed(seed)
        .build()
        .expect("spec generates")
}

fn chromosome(inst: &Instance, seed: u64) -> Chromosome {
    let mut rng = rng_from_seed(seed);
    Chromosome::random_for(inst, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1a: scratch-arena slack analysis == reference analysis,
    /// bit for bit, including every per-task vector.
    #[test]
    fn csr_slack_bit_identical_to_reference(
        tasks in 5usize..40,
        procs in 1usize..5,
        inst_seed in any::<u64>(),
        chrom_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let c = chromosome(&inst, chrom_seed);
        let schedule = c.decode(procs);

        let ds = DisjunctiveGraph::build(&inst.graph, &schedule).expect("acyclic");
        let durations = timing::expected_durations(&inst.timing, &schedule);
        let reference = slack::analyze(&ds, &schedule, &inst.platform, &durations);

        let mut scratch = EvalScratch::new();
        // Evaluate twice through the same scratch: reuse must not change
        // anything.
        for _ in 0..2 {
            let summary = scratch
                .evaluate(&inst, &c.order, &c.assignment)
                .expect("acyclic");
            prop_assert_eq!(summary.makespan.to_bits(), reference.makespan.to_bits());
            prop_assert_eq!(
                summary.average_slack.to_bits(),
                reference.average_slack.to_bits()
            );
            prop_assert_eq!(&scratch.slack().top_level, &reference.top_level);
            prop_assert_eq!(&scratch.slack().bottom_level, &reference.bottom_level);
            prop_assert_eq!(&scratch.slack().slack, &reference.slack);
        }
    }

    /// Property 1b: the CSR forward pass == the reference makespan on
    /// *sampled* (non-expected) durations — the Monte-Carlo reuse path.
    #[test]
    fn csr_makespan_bit_identical_on_sampled_durations(
        tasks in 5usize..40,
        procs in 1usize..5,
        inst_seed in any::<u64>(),
        chrom_seed in any::<u64>(),
        draw_seed in any::<u64>(),
    ) {
        let inst = instance(tasks, procs, inst_seed);
        let c = chromosome(&inst, chrom_seed);
        let schedule = c.decode(procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &schedule).expect("acyclic");
        let csr = DisjunctiveCsr::from_disjunctive(&ds, &schedule, &inst.platform);

        let mut rng = rng_from_seed(draw_seed);
        let mut finish = Vec::new();
        let mut reference_scratch = Vec::new();
        for _ in 0..3 {
            let durations = inst.timing.sample_assigned(&c.assignment, &mut rng);
            let reference = timing::makespan_with_durations(
                &ds,
                &schedule,
                &inst.platform,
                &durations,
                &mut reference_scratch,
            );
            let got = csr.makespan(&durations, &mut finish);
            prop_assert_eq!(got.to_bits(), reference.to_bits());
        }
    }
}

/// Asserts everything observable about two GA results is identical except
/// wall-clock timing (`eval_nanos`).
fn assert_ga_results_identical(a: &GaResult, b: &GaResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(
        a.best_eval.makespan.to_bits(),
        b.best_eval.makespan.to_bits()
    );
    assert_eq!(
        a.best_eval.avg_slack.to_bits(),
        b.best_eval.avg_slack.to_bits()
    );
    assert_eq!(a.best_feasible, b.best_feasible);
    assert_eq!(a.generations, b.generations);
    assert_eq!(a.final_population, b.final_population);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.best_makespan.to_bits(), y.best_makespan.to_bits());
        assert_eq!(x.best_slack.to_bits(), y.best_slack.to_bits());
        assert_eq!(x.best_feasible, y.best_feasible);
        assert_eq!(x.best_chromosome, y.best_chromosome);
    }
    // Kernel/memo counters are part of the determinism contract; only
    // eval_nanos may differ between runs.
    assert_eq!(a.stats.kernel_evals, b.stats.kernel_evals);
    assert_eq!(a.stats.memo_hits, b.stats.memo_hits);
    assert_eq!(a.stats.memo_collisions, b.stats.memo_collisions);
}

fn run_ga_in_pool(threads: usize, inst: &Instance, params: GaParams, obj: Objective) -> GaResult {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(|| GaEngine::new(inst, params, obj).run())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 2: the parallel population evaluation is bit-identical to
    /// sequential for any rayon thread count (1/2/8), memo on or off.
    #[test]
    fn ga_bit_identical_across_thread_counts(
        inst_seed in any::<u64>(),
        ga_seed in any::<u64>(),
        memo in any::<bool>(),
    ) {
        let inst = instance(25, 3, inst_seed);
        let params = GaParams::quick()
            .seed(ga_seed)
            .population(16)
            .max_generations(12)
            .stall_generations(12)
            .memo_capacity(if memo { 4096 } else { 0 });
        let base = run_ga_in_pool(1, &inst, params, Objective::MinimizeMakespan);
        for threads in [2usize, 8] {
            let other = run_ga_in_pool(threads, &inst, params, Objective::MinimizeMakespan);
            assert_ga_results_identical(&base, &other);
        }
    }
}

/// Fixed-seed smoke variant of property 2 (runs even when proptest is
/// filtered out; also covers the slack-maximizing objective).
#[test]
fn ga_thread_parity_fixed_seed() {
    let inst = instance(30, 4, 11);
    for obj in [Objective::MinimizeMakespan, Objective::MaximizeSlack] {
        let params = GaParams::quick()
            .seed(23)
            .population(16)
            .max_generations(20)
            .stall_generations(20);
        let base = run_ga_in_pool(1, &inst, params, obj);
        for threads in [2usize, 8] {
            let other = run_ga_in_pool(threads, &inst, params, obj);
            assert_ga_results_identical(&base, &other);
        }
    }
}

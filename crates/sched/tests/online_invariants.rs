//! Property-based verification of the online controller's contracts:
//!
//! * **an undersubscribed stream degenerates to one-shot scheduling** —
//!   when every job drains long before the next arrives, nothing is
//!   rejected, shed, or dropped, and each job's admission probability,
//!   placement and realized spans are bit-identical to running that job
//!   through [`run_online`] alone (the module's headline determinism
//!   claim);
//! * **completion probability is monotone non-increasing in backlog** —
//!   raising any per-processor release floor can only delay every CRN
//!   sample, so the estimate never rises;
//! * **refused work leaves no trace** — rejected and dropped jobs carry
//!   all-`NaN` spans, shed tasks have `NaN` spans inside otherwise
//!   executed jobs, and the head-count accounting (arrived = rejected +
//!   dropped + hits + misses) balances exactly.

use proptest::prelude::*;

use rds_sched::online::{
    completion_probability, run_online, JobVerdict, OnlineConfig, OnlineScratch, OnlineStreamSpec,
};
use rds_sched::replan::rank_order;
use rds_sched::{plan_isolated, AdmissionPolicy, DropPolicy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With the mean inter-arrival gap at 20–50× the mean isolated
    /// makespan (and realized durations bounded by `2·UL·BCET` under the
    /// uniform law), every arrival meets an idle platform: the stream
    /// must admit everything untouched and reproduce, bit for bit, what
    /// each job does when streamed alone.
    #[test]
    fn undersubscribed_stream_is_a_sequence_of_one_shot_problems(
        seed in 0u64..200,
        oversub in 0.02f64..0.05,
        jobs in 3usize..6,
    ) {
        let stream = OnlineStreamSpec::new(jobs, 14, 3)
            .seed(seed)
            .oversubscription(oversub)
            .generate()
            .unwrap();
        let cfg = OnlineConfig::default().seed(seed ^ 0x51C).samples(24);
        let report = run_online(&stream, &cfg).unwrap();
        prop_assert_eq!(report.arrived, jobs);
        prop_assert_eq!(report.admitted, jobs);
        prop_assert_eq!(report.rejected, 0);
        prop_assert_eq!(report.dropped, 0);
        prop_assert_eq!(report.shed_jobs, 0);
        prop_assert_eq!(report.shed_tasks, 0);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            // The same job, streamed alone under the same master seed.
            let solo = run_online(&stream[i..=i], &cfg).unwrap();
            let alone = &solo.outcomes[0];
            prop_assert_eq!(outcome.verdict, alone.verdict);
            prop_assert_eq!(
                outcome.admission_probability.to_bits(),
                alone.admission_probability.to_bits(),
                "job {} admission probability drifted", i
            );
            prop_assert_eq!(&outcome.placement, &alone.placement);
            for t in 0..outcome.start.len() {
                prop_assert_eq!(
                    outcome.start[t].to_bits(),
                    alone.start[t].to_bits(),
                    "job {} task {} start drifted", i, t
                );
                prop_assert_eq!(
                    outcome.finish[t].to_bits(),
                    alone.finish[t].to_bits(),
                    "job {} task {} finish drifted", i, t
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CRN makes the estimator monotone: raising any subset of the
    /// per-processor floors re-runs the *same* sampled realizations under
    /// strictly-no-earlier releases, so the hit count cannot grow.
    #[test]
    fn completion_probability_is_monotone_in_floors(
        seed in 0u64..400,
        est_seed in 0u64..400,
        deadline_factor in 0.8f64..1.4,
        base_load in 0.0f64..0.6,
        extra in proptest::collection::vec(0.0f64..2.0, 3),
    ) {
        let stream = OnlineStreamSpec::new(1, 16, 3)
            .seed(seed)
            .generate()
            .unwrap();
        let inst = &stream[0].instance;
        let order = rank_order(inst);
        let plan = plan_isolated(inst, false).unwrap();
        let mut scratch = OnlineScratch::new();
        let rel = plan.est_makespan * deadline_factor;
        let lo: Vec<f64> = vec![plan.est_makespan * base_load; inst.proc_count()];
        let hi: Vec<f64> = lo
            .iter()
            .zip(&extra)
            .map(|(&f, &e)| f + plan.est_makespan * e)
            .collect();
        let p_lo =
            completion_probability(inst, &order, &plan, &lo, rel, 32, est_seed, &mut scratch);
        let p_hi =
            completion_probability(inst, &order, &plan, &hi, rel, 32, est_seed, &mut scratch);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(
            p_hi <= p_lo,
            "probability rose under heavier backlog: {} > {}", p_hi, p_lo
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under genuine oversubscription with the full autonomous ladder,
    /// whatever the controller refuses must vanish: rejected and dropped
    /// jobs have no spans at all, shed tasks have no spans inside jobs
    /// that ran, and every arrival is accounted for exactly once.
    #[test]
    fn refused_work_leaves_no_spans(
        seed in 0u64..200,
        oversub in 1.5f64..3.0,
        jobs in 8usize..12,
    ) {
        let stream = OnlineStreamSpec::new(jobs, 14, 3)
            .seed(seed)
            .oversubscription(oversub)
            .generate()
            .unwrap();
        let cfg = OnlineConfig::default()
            .seed(seed ^ 0xA11)
            .samples(24)
            .admission(AdmissionPolicy::CompletionProbability)
            .drop_policy(DropPolicy::Autonomous);
        let report = run_online(&stream, &cfg).unwrap();
        prop_assert_eq!(
            report.rejected + report.dropped + report.hits + report.misses,
            report.arrived
        );
        prop_assert_eq!(report.admitted, report.arrived - report.rejected);
        let expected_rate = report.hits as f64 / report.arrived as f64;
        prop_assert_eq!(report.deadline_hit_rate.to_bits(), expected_rate.to_bits());
        for outcome in &report.outcomes {
            match outcome.verdict {
                JobVerdict::Rejected | JobVerdict::Dropped => {
                    prop_assert!(outcome.start.iter().all(|s| s.is_nan()));
                    prop_assert!(outcome.finish.iter().all(|f| f.is_nan()));
                }
                JobVerdict::Hit | JobVerdict::Miss => {
                    for t in &outcome.shed_tasks {
                        prop_assert!(
                            outcome.start[t.index()].is_nan(),
                            "shed task {:?} of job {} has a start", t, outcome.job
                        );
                        prop_assert!(outcome.finish[t.index()].is_nan());
                    }
                    let executed = outcome.finish.iter().filter(|f| !f.is_nan()).count();
                    prop_assert_eq!(
                        executed,
                        outcome.finish.len() - outcome.shed_tasks.len(),
                        "job {}: every unshed task must run", outcome.job
                    );
                }
            }
        }
    }
}

//! The disjunctive graph `G_s = (V, E ∪ E')` of Definition 3.1.
//!
//! For a schedule `s`, the disjunctive edge set `E'` links each pair of
//! *consecutive* tasks on the same processor that is not already related by
//! a graph edge. The data size of a disjunctive edge is zero; data on
//! intra-processor graph edges is neutralized at evaluation time because
//! the platform's `comm_time` is zero for co-located tasks — which is
//! exactly Eq. (1)'s effect.
//!
//! `G_s` is acyclic **iff** the schedule's per-processor orders are
//! compatible with the precedence constraints; [`DisjunctiveGraph::build`]
//! verifies this with Kahn's algorithm and caches the topological order for
//! all later timing/slack passes.

use rds_graph::{TaskGraph, TaskId};

use crate::schedule::Schedule;

/// One edge of the disjunctive graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisEdge {
    /// The neighbour task.
    pub task: TaskId,
    /// Data size (zero for pure disjunctive edges).
    pub data: f64,
}

/// Error: the schedule contradicts the precedence constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError;

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "disjunctive graph is cyclic (invalid schedule)")
    }
}

impl std::error::Error for CycleError {}

/// Reusable scratch for [`DisjunctiveGraph::are_independent_with`]: a
/// packed visited bitset plus the DFS stack, both retained across calls so
/// repeated reachability queries allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct ReachScratch {
    seen: Vec<u64>,
    stack: Vec<u32>,
}

impl ReachScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The materialized disjunctive graph with a cached topological order.
#[derive(Debug, Clone)]
pub struct DisjunctiveGraph {
    preds: Vec<Vec<DisEdge>>,
    succs: Vec<Vec<DisEdge>>,
    topo: Vec<TaskId>,
    disjunctive_edges: usize,
}

impl DisjunctiveGraph {
    /// Builds `G_s` from the application graph and a schedule, verifying
    /// acyclicity.
    ///
    /// # Errors
    /// Returns [`CycleError`] when the schedule's per-processor orders
    /// contradict the DAG's precedence constraints.
    ///
    /// # Panics
    /// Panics if `schedule.task_count() != graph.task_count()`.
    pub fn build(graph: &TaskGraph, schedule: &Schedule) -> Result<Self, CycleError> {
        let n = graph.task_count();
        assert_eq!(
            schedule.task_count(),
            n,
            "schedule and graph task counts must agree"
        );
        let mut preds: Vec<Vec<DisEdge>> = Vec::with_capacity(n);
        let mut succs: Vec<Vec<DisEdge>> = vec![Vec::new(); n];

        let mut disjunctive_edges = 0usize;
        for t in graph.tasks() {
            // Start from the conjunctive (graph) predecessors.
            let mut pl: Vec<DisEdge> = graph
                .predecessors(t)
                .iter()
                .map(|e| DisEdge {
                    task: e.task,
                    data: e.data,
                })
                .collect();
            // Add the disjunctive predecessor unless it is already a graph
            // predecessor (Def. 3.1: E' excludes edges already in E).
            if let Some(prev) = schedule.prev_on_proc(t) {
                if !pl.iter().any(|e| e.task == prev) {
                    pl.push(DisEdge {
                        task: prev,
                        data: 0.0,
                    });
                    disjunctive_edges += 1;
                }
            }
            for e in &pl {
                succs[e.task.index()].push(DisEdge {
                    task: t,
                    data: e.data,
                });
            }
            preds.push(pl);
        }

        // Kahn topological sort over the merged graph.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(t) = ready.pop() {
            topo.push(t);
            for e in &succs[t.index()] {
                indeg[e.task.index()] -= 1;
                if indeg[e.task.index()] == 0 {
                    ready.push(e.task);
                }
            }
        }
        if topo.len() != n {
            return Err(CycleError);
        }
        Ok(Self {
            preds,
            succs,
            topo,
            disjunctive_edges,
        })
    }

    /// Number of tasks.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.preds.len()
    }

    /// Predecessors of `t` in `G_s` (conjunctive + disjunctive).
    #[inline]
    pub fn predecessors(&self, t: TaskId) -> &[DisEdge] {
        &self.preds[t.index()]
    }

    /// Successors of `t` in `G_s`.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[DisEdge] {
        &self.succs[t.index()]
    }

    /// A topological order of `G_s` (cached at build time).
    #[inline]
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Number of pure disjunctive edges `|E'|`.
    #[inline]
    pub fn disjunctive_edge_count(&self) -> usize {
        self.disjunctive_edges
    }

    /// `true` when `a` and `b` are independent in `G_s` (neither reaches the
    /// other) — the hypothesis of Corollary 3.5.
    ///
    /// Convenience wrapper over [`DisjunctiveGraph::are_independent_with`]
    /// using a thread-local [`ReachScratch`], so repeated queries allocate
    /// nothing after the first call on each thread.
    pub fn are_independent(&self, a: TaskId, b: TaskId) -> bool {
        thread_local! {
            static SCRATCH: std::cell::RefCell<ReachScratch> =
                std::cell::RefCell::new(ReachScratch::default());
        }
        SCRATCH.with(|s| self.are_independent_with(a, b, &mut s.borrow_mut()))
    }

    /// Allocation-free independence test reusing the caller's scratch —
    /// use this on hot paths that probe many pairs.
    pub fn are_independent_with(&self, a: TaskId, b: TaskId, scratch: &mut ReachScratch) -> bool {
        a != b && !self.reaches_with(a, b, scratch) && !self.reaches_with(b, a, scratch)
    }

    /// DFS reachability over a reused bitset + stack.
    fn reaches_with(&self, from: TaskId, to: TaskId, scratch: &mut ReachScratch) -> bool {
        let words = self.task_count().div_ceil(64);
        scratch.seen.clear();
        scratch.seen.resize(words, 0);
        scratch.stack.clear();
        scratch.stack.push(from.0);
        scratch.seen[from.index() / 64] |= 1u64 << (from.index() % 64);
        while let Some(t) = scratch.stack.pop() {
            for e in &self.succs[t as usize] {
                if e.task == to {
                    return true;
                }
                let qi = e.task.index();
                let mask = 1u64 << (qi % 64);
                if scratch.seen[qi / 64] & mask == 0 {
                    scratch.seen[qi / 64] |= mask;
                    scratch.stack.push(e.task.0);
                }
            }
        }
        false
    }

    /// DOT rendering with disjunctive edges dashed, mirroring Fig. 1(d).
    pub fn to_dot(&self, graph: &TaskGraph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph Gs {{");
        for t in 0..self.task_count() {
            let _ = writeln!(out, "  {t} [label=\"v{t}\"];");
        }
        for t in 0..self.task_count() {
            let tid = TaskId(t as u32);
            for e in &self.succs[t] {
                if graph.has_edge(tid, e.task) {
                    let _ = writeln!(out, "  {} -> {};", t, e.task.index());
                } else {
                    let _ = writeln!(out, "  {} -> {} [style=dashed];", t, e.task.index());
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_graph::dag::fig1_example;
    use rds_graph::TaskGraphBuilder;

    fn ids(xs: &[u32]) -> Vec<TaskId> {
        xs.iter().map(|&x| TaskId(x)).collect()
    }

    /// Fig. 1 schedule: p0=[v1,v2,v4], p1=[v3,v5,v8], p2=[v6,v7], p3=[].
    fn fig1_schedule() -> Schedule {
        Schedule::from_proc_lists(
            8,
            vec![ids(&[0, 1, 3]), ids(&[2, 4, 7]), ids(&[5, 6]), vec![]],
        )
        .unwrap()
    }

    #[test]
    fn fig1_disjunctive_edges() {
        let g = fig1_example(1.0);
        let s = fig1_schedule();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        // E' pairs: (v1,v2) is in E (v0->v1 edge exists), so not in E'.
        // (v2,v4): v1->v3 not in E => disjunctive.
        // (v3,v5): v2->v4 in E => not in E'.
        // (v5,v8): v4->v7 in E => not in E'.
        // (v6,v7): v5->v6 in E => not in E'.
        assert_eq!(ds.disjunctive_edge_count(), 1);
        // v3 (paper v4) has disjunctive pred v1 (paper v2) with data 0.
        let preds3: Vec<(u32, f64)> = ds
            .predecessors(TaskId(3))
            .iter()
            .map(|e| (e.task.0, e.data))
            .collect();
        assert!(preds3.contains(&(0, 1.0))); // graph edge v1->v4
        assert!(preds3.contains(&(1, 0.0))); // disjunctive edge v2->v4
    }

    #[test]
    fn topo_order_is_valid() {
        let g = fig1_example(1.0);
        let s = fig1_schedule();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let order = ds.topo_order();
        assert_eq!(order.len(), 8);
        let mut pos = [0usize; 8];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for t in g.tasks() {
            for e in ds.predecessors(t) {
                assert!(pos[e.task.index()] < pos[t.index()]);
            }
        }
    }

    #[test]
    fn cyclic_schedule_detected() {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(1), TaskId(2), 1.0);
        let g = b.build().unwrap();
        // p0 executes 2 before 0: E' gives 2 -> 0 and E gives 0 -> .. -> 2.
        let s = Schedule::from_proc_lists(3, vec![ids(&[2, 0, 1])]).unwrap();
        assert!(DisjunctiveGraph::build(&g, &s).is_err());
    }

    #[test]
    fn independent_tasks_in_gs() {
        let g = fig1_example(1.0);
        let s = fig1_schedule();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        // v6 (index 5) and v4 (index 3) are on different processors and not
        // ordered by any path in Gs.
        assert!(ds.are_independent(TaskId(5), TaskId(3)));
        // v2 (1) precedes v4 (3) on p0 via E'.
        assert!(!ds.are_independent(TaskId(1), TaskId(3)));
    }

    #[test]
    fn independence_stable_under_scratch_reuse() {
        let g = fig1_example(1.0);
        let s = fig1_schedule();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let mut scratch = ReachScratch::default();
        // Probe every pair twice through one scratch: results must agree
        // with the thread-local wrapper and with themselves.
        for a in 0..8u32 {
            for b in 0..8u32 {
                let first = ds.are_independent_with(TaskId(a), TaskId(b), &mut scratch);
                let second = ds.are_independent_with(TaskId(a), TaskId(b), &mut scratch);
                assert_eq!(first, second);
                assert_eq!(first, ds.are_independent(TaskId(a), TaskId(b)));
            }
        }
    }

    #[test]
    fn dedup_when_graph_edge_equals_chain_edge() {
        // 0 -> 1 in E, and both on p0 consecutively: no E' edge added.
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(1), 5.0);
        let g = b.build().unwrap();
        let s = Schedule::from_proc_lists(2, vec![ids(&[0, 1])]).unwrap();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        assert_eq!(ds.disjunctive_edge_count(), 0);
        assert_eq!(ds.predecessors(TaskId(1)).len(), 1);
    }

    #[test]
    fn dot_marks_disjunctive_edges_dashed() {
        let g = fig1_example(1.0);
        let s = fig1_schedule();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let dot = ds.to_dot(&g);
        assert_eq!(dot.matches("style=dashed").count(), 1);
        assert!(dot.contains("1 -> 3 [style=dashed]"));
    }

    #[test]
    fn empty_graph_empty_schedule() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        let s = Schedule::from_proc_lists(0, vec![vec![], vec![]]).unwrap();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        assert_eq!(ds.task_count(), 0);
        assert!(ds.topo_order().is_empty());
    }
}

//! Energy and reliability scoring of schedules — the tri-objective
//! extension (makespan, robustness surrogate σ̄, energy) under a
//! reliability constraint.
//!
//! A *frequency vector* assigns every task an index into the platform's
//! DVFS [`FreqLadder`]; task `i` on processor `j` at normalized frequency
//! `f` then
//!
//! * runs for `c_ij / f` time units (`c_ij` = the expected or realized
//!   base duration; at `f = 1` the division is exact, so full-speed
//!   evaluations are bit-identical to the frequency-oblivious kernel);
//! * consumes `(P_static_j + κ_j·f^α) · c_ij / f` energy units;
//! * completes fault-free with probability `exp(−λ(f) · c_ij / f)` where
//!   `λ(f)` rises exponentially as `f` drops ([`ReliabilityModel`]).
//!
//! Schedule energy is the sum over tasks; schedule reliability the product
//! (accumulated as `exp(−Σ λ·t)` for numerical stability) — always in
//! `(0, 1]`. [`EnergyScratch`] is the zero-alloc twin of
//! [`EvalScratch`](crate::csr::EvalScratch): it owns the flat-CSR arena
//! plus the scaled-duration buffer, so tri-objective GA evaluation
//! allocates nothing after warm-up. [`realized_tri`] extends the Monte
//! Carlo engine so each realization reports energy and reliability next to
//! its makespan.

use rayon::prelude::*;

use rds_graph::TaskId;
use rds_platform::{EnergyModel, ProcId};
use rds_stats::rng::SeedStream;

use crate::csr::{ensure_scratch_len, DisjunctiveCsr, LANES};
use crate::disjunctive::{CycleError, DisjunctiveGraph};
use crate::instance::Instance;
use crate::realization::RealizationConfig;
use crate::schedule::Schedule;
use crate::slack::{analyze_into, SlackScratch};

/// Scalar results of one tri-objective evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriSummary {
    /// Makespan `M` under frequency-scaled expected durations.
    pub makespan: f64,
    /// Average slack `σ̄` (the robustness surrogate) under the same
    /// durations.
    pub average_slack: f64,
    /// Total energy `Σ P_j(f_i) · t_i`.
    pub energy: f64,
    /// Schedule reliability `Π exp(−λ(f_i)·t_i) ∈ (0, 1]`.
    pub reliability: f64,
}

/// Energy and reliability of a schedule without the makespan/slack pass
/// (no disjunctive graph needed — both are sums over tasks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Total energy.
    pub energy: f64,
    /// Schedule reliability in `(0, 1]`.
    pub reliability: f64,
}

/// The frequency vector that pins every task to the ladder's top (full
/// speed) — the frequency-oblivious operating point.
#[must_use]
pub fn full_speed_genes(tasks: usize, model: &EnergyModel) -> Vec<u8> {
    vec![model.ladder.top_index() as u8; tasks]
}

/// Accumulates energy and the fault-rate integral over tasks in index
/// order. Durations are the *frequency-scaled* execution times.
fn accumulate(
    model: &EnergyModel,
    assignment: &[ProcId],
    freqs: &[f64],
    durations: &[f64],
) -> EnergyReport {
    let mut energy = 0.0_f64;
    let mut hazard = 0.0_f64; // Σ λ(f_i) · t_i
    for t in 0..assignment.len() {
        let f = freqs[t];
        let dur = durations[t];
        energy += model.power.energy(assignment[t], f, dur);
        hazard += model.reliability.rate(f) * dur;
    }
    EnergyReport {
        energy,
        reliability: (-hazard).exp(),
    }
}

/// Resolves frequency-index genes to ladder values.
///
/// # Panics
/// Panics when a gene indexes past the ladder.
fn resolve_freqs(model: &EnergyModel, freq_idx: &[u8], out: &mut Vec<f64>) {
    out.clear();
    for &g in freq_idx {
        out.push(model.ladder.level(g as usize));
    }
}

/// Energy/reliability of `schedule` under expected durations and the given
/// frequency genes (indices into `model.ladder`).
///
/// # Panics
/// Panics when `freq_idx` length differs from the task count or a gene
/// indexes past the ladder.
#[must_use]
pub fn score_schedule(
    inst: &Instance,
    model: &EnergyModel,
    schedule: &Schedule,
    freq_idx: &[u8],
) -> EnergyReport {
    score_assignment(inst, model, schedule.assignment(), freq_idx)
}

/// Energy/reliability of an assignment under expected durations and the
/// given frequency genes.
///
/// # Panics
/// Panics when lengths disagree with the task count or a gene indexes past
/// the ladder.
#[must_use]
pub fn score_assignment(
    inst: &Instance,
    model: &EnergyModel,
    assignment: &[ProcId],
    freq_idx: &[u8],
) -> EnergyReport {
    let n = inst.task_count();
    assert_eq!(assignment.len(), n, "assignment length must match tasks");
    assert_eq!(freq_idx.len(), n, "frequency genes must match tasks");
    let mut energy = 0.0_f64;
    let mut hazard = 0.0_f64;
    for t in 0..n {
        let f = model.ladder.level(freq_idx[t] as usize);
        let dur = inst.timing.expected(t, assignment[t]) / f;
        energy += model.power.energy(assignment[t], f, dur);
        hazard += model.reliability.rate(f) * dur;
    }
    EnergyReport {
        energy,
        reliability: (-hazard).exp(),
    }
}

/// Caller-owned arena for tri-objective evaluation: the flat-CSR kernel
/// plus scaled-duration and frequency buffers. One full evaluation with
/// zero heap allocations after warm-up; keep one per thread.
#[derive(Debug, Default, Clone)]
pub struct EnergyScratch {
    csr: DisjunctiveCsr,
    slack: SlackScratch,
    durations: Vec<f64>,
    freqs: Vec<f64>,
}

impl EnergyScratch {
    /// A fresh arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Tri-objective evaluation of an `(order, assignment, frequency)`
    /// triple under frequency-scaled expected durations.
    ///
    /// With every gene at the ladder top (`f = 1`), makespan and slack are
    /// bit-identical to
    /// [`EvalScratch::evaluate`](crate::csr::EvalScratch::evaluate) — the
    /// scaling divides by exactly `1.0`.
    ///
    /// # Errors
    /// Returns [`CycleError`] when the order contradicts the precedence
    /// constraints.
    ///
    /// # Panics
    /// Panics when slice lengths disagree with the task count or a gene
    /// indexes past the ladder.
    pub fn evaluate(
        &mut self,
        inst: &Instance,
        model: &EnergyModel,
        order: &[TaskId],
        assignment: &[ProcId],
        freq_idx: &[u8],
    ) -> Result<TriSummary, CycleError> {
        let n = inst.task_count();
        assert_eq!(freq_idx.len(), n, "frequency genes must match tasks");
        self.csr
            .build_from_parts(&inst.graph, order, assignment, &inst.platform)?;
        resolve_freqs(model, freq_idx, &mut self.freqs);
        self.durations.clear();
        for (t, &p) in assignment.iter().enumerate() {
            self.durations.push(inst.timing.expected(t, p) / self.freqs[t]);
        }
        let s = analyze_into(&self.csr, &self.durations, &mut self.slack);
        let er = accumulate(model, assignment, &self.freqs, &self.durations);
        Ok(TriSummary {
            makespan: s.makespan,
            average_slack: s.average_slack,
            energy: er.energy,
            reliability: er.reliability,
        })
    }

    /// Same as [`EnergyScratch::evaluate`] but starting from a decoded
    /// [`Schedule`].
    ///
    /// # Errors
    /// Returns [`CycleError`] when the schedule contradicts the precedence
    /// constraints.
    pub fn evaluate_schedule(
        &mut self,
        inst: &Instance,
        model: &EnergyModel,
        schedule: &Schedule,
        freq_idx: &[u8],
    ) -> Result<TriSummary, CycleError> {
        let n = inst.task_count();
        assert_eq!(freq_idx.len(), n, "frequency genes must match tasks");
        self.csr
            .build_from_schedule(&inst.graph, schedule, &inst.platform)?;
        resolve_freqs(model, freq_idx, &mut self.freqs);
        self.durations.clear();
        for (t, &p) in schedule.assignment().iter().enumerate() {
            self.durations.push(inst.timing.expected(t, p) / self.freqs[t]);
        }
        let s = analyze_into(&self.csr, &self.durations, &mut self.slack);
        let er = accumulate(model, schedule.assignment(), &self.freqs, &self.durations);
        Ok(TriSummary {
            makespan: s.makespan,
            average_slack: s.average_slack,
            energy: er.energy,
            reliability: er.reliability,
        })
    }

    /// The CSR built by the last evaluation.
    #[inline]
    #[must_use]
    pub fn csr(&self) -> &DisjunctiveCsr {
        &self.csr
    }

    /// Per-task slack buffers of the last evaluation.
    #[inline]
    #[must_use]
    pub fn slack(&self) -> &SlackScratch {
        &self.slack
    }
}

/// One Monte Carlo draw of the tri-objective metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriDraw {
    /// Realized makespan (frequency-scaled realized durations).
    pub makespan: f64,
    /// Realized energy.
    pub energy: f64,
    /// Realized schedule reliability.
    pub reliability: f64,
}

/// Draws `cfg.realizations` realized (makespan, energy, reliability)
/// triples for `schedule` at the given frequency genes.
///
/// Realization `i` samples base durations exactly like
/// [`realized_makespans`](crate::realization::realized_makespans) (same
/// per-draw RNG streams; with a trivial ladder the makespans are
/// bit-identical), then scales each by its task's frequency before
/// re-timing and scoring.
///
/// # Errors
/// Returns [`CycleError`] when the schedule is incompatible with the
/// instance's graph.
///
/// # Panics
/// Panics when `freq_idx` length differs from the task count or a gene
/// indexes past the ladder.
pub fn realized_tri(
    inst: &Instance,
    model: &EnergyModel,
    schedule: &Schedule,
    freq_idx: &[u8],
    cfg: &RealizationConfig,
) -> Result<Vec<TriDraw>, CycleError> {
    let n = inst.task_count();
    assert_eq!(freq_idx.len(), n, "frequency genes must match tasks");
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    let csr = DisjunctiveCsr::from_disjunctive(&ds, schedule, &inst.platform);
    let assignment = schedule.assignment();
    let mut freqs = Vec::with_capacity(n);
    resolve_freqs(model, freq_idx, &mut freqs);
    let freqs = &freqs;
    let csr = &csr;
    let seeds = SeedStream::new(cfg.seed);
    // Chunked like `realized_makespans_with`: each lane samples from its
    // own realization stream in the original (per task, ascending) draw
    // order, one batched SoA walk times all lanes, then each live lane's
    // durations are gathered back for the energy/hazard accumulation —
    // identical adds in identical order, so draws stay bit-identical to
    // the scalar path. Ragged tail lanes carry padding and are dropped.
    let chunks = cfg.realizations.div_ceil(LANES);
    let zero = TriDraw {
        makespan: 0.0,
        energy: 0.0,
        reliability: 0.0,
    };
    let one = |bufs: &mut (Vec<f64>, Vec<f64>, Vec<f64>), c: usize| -> ([TriDraw; LANES], usize) {
        let (durations, finish, lane_durations) = bufs;
        ensure_scratch_len(durations, LANES * n);
        ensure_scratch_len(finish, LANES * n);
        ensure_scratch_len(lane_durations, n);
        let lanes = LANES.min(cfg.realizations - c * LANES);
        for l in 0..lanes {
            let mut rng = seeds.nth_rng((c * LANES + l) as u64);
            for (t, &p) in assignment.iter().enumerate() {
                durations[LANES * t + l] = inst.timing.sample(t, p, &mut rng) / freqs[t];
            }
        }
        let mut out = [0.0; LANES];
        csr.makespan_batch(durations, finish, &mut out);
        let mut draws = [zero; LANES];
        for l in 0..lanes {
            for t in 0..n {
                lane_durations[t] = durations[LANES * t + l];
            }
            let er = accumulate(model, assignment, freqs, lane_durations);
            draws[l] = TriDraw {
                makespan: out[l],
                energy: er.energy,
                reliability: er.reliability,
            };
        }
        (draws, lanes)
    };
    let chunked: Vec<([TriDraw; LANES], usize)> = if cfg.parallel {
        (0..chunks)
            .into_par_iter()
            .map_init(
                || (Vec::new(), Vec::new(), Vec::new()),
                |bufs, c| one(bufs, c),
            )
            .collect()
    } else {
        let mut bufs = (Vec::new(), Vec::new(), Vec::new());
        (0..chunks).map(|c| one(&mut bufs, c)).collect()
    };
    let mut draws = Vec::with_capacity(cfg.realizations);
    for (out, lanes) in chunked {
        draws.extend_from_slice(&out[..lanes]);
    }
    Ok(draws)
}

/// Summary of a tri-objective Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriReport {
    /// Mean realized makespan.
    pub mean_makespan: f64,
    /// Mean realized energy.
    pub mean_energy: f64,
    /// Mean realized reliability.
    pub mean_reliability: f64,
    /// Minimum realized reliability over the draws.
    pub min_reliability: f64,
}

impl TriReport {
    /// Aggregates draws (means plus the reliability floor).
    ///
    /// # Panics
    /// Panics on an empty draw set.
    #[must_use]
    pub fn from_draws(draws: &[TriDraw]) -> Self {
        assert!(!draws.is_empty(), "need at least one draw");
        let n = draws.len() as f64;
        let mut mk = 0.0;
        let mut en = 0.0;
        let mut rel = 0.0;
        let mut min_rel = f64::INFINITY;
        for d in draws {
            mk += d.makespan;
            en += d.energy;
            rel += d.reliability;
            if d.reliability < min_rel {
                min_rel = d.reliability;
            }
        }
        Self {
            mean_makespan: mk / n,
            mean_energy: en / n,
            mean_reliability: rel / n,
            min_reliability: min_rel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::EvalScratch;
    use crate::instance::InstanceSpec;
    use crate::realization::realized_makespans;
    use rds_graph::topo::topological_order;

    fn fixture() -> (Instance, Schedule, EnergyModel) {
        let inst = InstanceSpec::new(12, 3).seed(7).build().unwrap();
        let order = topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..12).map(|i| ProcId((i % 3) as u32)).collect();
        let schedule = Schedule::from_order_and_assignment(&order, &assignment, 3).unwrap();
        let model = EnergyModel::default_for(3);
        (inst, schedule, model)
    }

    #[test]
    fn full_speed_is_bit_identical_to_base_kernel() {
        let (inst, schedule, model) = fixture();
        let genes = full_speed_genes(12, &model);
        let mut base = EvalScratch::new();
        let b = base.evaluate_schedule(&inst, &schedule).unwrap();
        let mut tri = EnergyScratch::new();
        let t = tri
            .evaluate_schedule(&inst, &model, &schedule, &genes)
            .unwrap();
        assert_eq!(t.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(t.average_slack.to_bits(), b.average_slack.to_bits());
        assert!(t.reliability > 0.0 && t.reliability <= 1.0);
        assert!(t.energy > 0.0);
    }

    #[test]
    fn lower_frequency_stretches_makespan_and_hurts_reliability() {
        let (inst, schedule, model) = fixture();
        let fast = full_speed_genes(12, &model);
        let slow = vec![0u8; 12];
        let mut s = EnergyScratch::new();
        let hi = s.evaluate_schedule(&inst, &model, &schedule, &fast).unwrap();
        let lo = s.evaluate_schedule(&inst, &model, &schedule, &slow).unwrap();
        assert!(lo.makespan > hi.makespan);
        assert!(lo.reliability < hi.reliability);
        assert!(lo.reliability > 0.0);
    }

    #[test]
    fn score_matches_scratch_energy() {
        let (inst, schedule, model) = fixture();
        let genes = vec![1u8; 12];
        let mut s = EnergyScratch::new();
        let tri = s
            .evaluate_schedule(&inst, &model, &schedule, &genes)
            .unwrap();
        let er = score_schedule(&inst, &model, &schedule, &genes);
        assert_eq!(tri.energy.to_bits(), er.energy.to_bits());
        assert_eq!(tri.reliability.to_bits(), er.reliability.to_bits());
    }

    #[test]
    fn realized_tri_matches_base_makespans_at_full_speed() {
        let (inst, schedule, model) = fixture();
        let genes = full_speed_genes(12, &model);
        let cfg = RealizationConfig::with_realizations(64).seed(3);
        let draws = realized_tri(&inst, &model, &schedule, &genes, &cfg).unwrap();
        let base = realized_makespans(&inst, &schedule, &cfg).unwrap();
        assert_eq!(draws.len(), base.len());
        for (d, m) in draws.iter().zip(&base) {
            assert_eq!(d.makespan.to_bits(), m.to_bits());
            assert!(d.reliability > 0.0 && d.reliability <= 1.0);
        }
        let report = TriReport::from_draws(&draws);
        assert!(report.min_reliability <= report.mean_reliability);
        assert!(report.mean_energy > 0.0);
    }

    #[test]
    fn serial_and_parallel_draws_agree() {
        let (inst, schedule, model) = fixture();
        let genes = vec![0u8; 12];
        let par = RealizationConfig::with_realizations(32).seed(5);
        let ser = par.serial();
        let a = realized_tri(&inst, &model, &schedule, &genes, &par).unwrap();
        let b = realized_tri(&inst, &model, &schedule, &genes, &ser).unwrap();
        assert_eq!(a, b);
    }
}

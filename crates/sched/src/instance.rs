//! A problem instance and its generator.
//!
//! [`Instance`] bundles the three ingredients every scheduler consumes: the
//! task graph `G`, the platform `P` (+ transfer rates) and the timing model
//! (`B`, `UL`). [`InstanceSpec`] wires the §5 generators together — layered
//! random DAG, COV-based BCET matrix, COV-based UL matrix, uniform-rate
//! platform — under one seed.

use rds_graph::gen::cov::CovMatrixSpec;
use rds_graph::gen::layered::LayeredDagSpec;
use rds_graph::{TaskGraph, TaskId};
use rds_platform::gen::PlatformSpec;
use rds_platform::timing::TimingModel;
use rds_platform::{Platform, ProcId};
use rds_stats::rng::SeedStream;

/// A complete robust-scheduling problem instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The application DAG.
    pub graph: TaskGraph,
    /// The heterogeneous platform.
    pub platform: Platform,
    /// Best-case times and uncertainty levels.
    pub timing: TimingModel,
}

impl Instance {
    /// Bundles the parts, validating dimension agreement.
    ///
    /// # Errors
    /// Returns a message when the timing model's shape does not match the
    /// graph/platform.
    pub fn new(graph: TaskGraph, platform: Platform, timing: TimingModel) -> Result<Self, String> {
        if timing.task_count() != graph.task_count() {
            return Err(format!(
                "timing has {} tasks but graph has {}",
                timing.task_count(),
                graph.task_count()
            ));
        }
        if timing.proc_count() != platform.proc_count() {
            return Err(format!(
                "timing has {} procs but platform has {}",
                timing.proc_count(),
                platform.proc_count()
            ));
        }
        Ok(Self {
            graph,
            platform,
            timing,
        })
    }

    /// Number of tasks.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.graph.task_count()
    }

    /// Number of processors.
    #[inline]
    pub fn proc_count(&self) -> usize {
        self.platform.proc_count()
    }

    /// Expected duration of `task` on `proc` (`UL·B`) — the scheduler view.
    #[inline]
    pub fn expected(&self, task: TaskId, proc: ProcId) -> f64 {
        self.timing.expected(task.index(), proc)
    }

    /// Communication time of the edge `from → to` when placed on the given
    /// processors.
    #[inline]
    pub fn comm_time(&self, data: f64, from: ProcId, to: ProcId) -> f64 {
        self.platform.comm_time(data, from, to)
    }

    /// A stable, content-addressed 64-bit fingerprint of the instance.
    ///
    /// Covers exactly the content the text format of [`crate::io`]
    /// serializes: task/processor counts, the edge set (canonically ordered
    /// by `(from, to)`, with bit-exact data sizes), the BCET and UL
    /// matrices, and the off-diagonal transfer rates. Two instances that
    /// round-trip through [`crate::io::write_instance`] /
    /// [`crate::io::read_instance`] therefore hash identically, while any
    /// change to the graph topology, `B`, `UL` or the rates changes the
    /// hash (modulo 64-bit collisions).
    ///
    /// The hash is FNV-1a over a fixed byte encoding — independent of
    /// platform, process and Rust version, so it is safe to persist as a
    /// cache key (the service layer keys its schedule cache on it).
    ///
    /// Per-task `weight`/`optional` annotations are *not* covered: they are
    /// not part of the serialized format (fingerprint version `v1`).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.bytes(b"rds-fp-v1");
        h.u64(self.task_count() as u64);
        h.u64(self.proc_count() as u64);
        // Canonical edge order: adjacency-list order is a serialization
        // detail (round-tripping may reorder it), the edge *set* is not.
        let mut edges: Vec<(u32, u32, u64)> = self
            .graph
            .edges()
            .map(|(from, to, data)| (from.0, to.0, data.to_bits()))
            .collect();
        edges.sort_unstable();
        h.u64(edges.len() as u64);
        for (from, to, data) in edges {
            h.u64(u64::from(from));
            h.u64(u64::from(to));
            h.u64(data);
        }
        let (n, m) = (self.task_count(), self.proc_count());
        h.bytes(b"bcet");
        for r in 0..n {
            for c in 0..m {
                h.u64(self.timing.bcet_matrix()[(r, c)].to_bits());
            }
        }
        h.bytes(b"ul");
        for r in 0..n {
            for c in 0..m {
                h.u64(self.timing.ul_matrix()[(r, c)].to_bits());
            }
        }
        // The writer stores an artificial diagonal; hash off-diagonal only.
        h.bytes(b"rates");
        for r in 0..m {
            for c in 0..m {
                if r != c {
                    h.u64(
                        self.platform
                            .rate(ProcId(r as u32), ProcId(c as u32))
                            .to_bits(),
                    );
                }
            }
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms. (The
/// std `DefaultHasher` is explicitly *not* guaranteed stable across Rust
/// releases, so it must not back a persistent cache key.)
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Generator for random instances following §5 of the paper.
///
/// ```
/// use rds_sched::InstanceSpec;
/// let inst = InstanceSpec::new(50, 4)
///     .seed(7)
///     .uncertainty_level(4.0)
///     .build()
///     .unwrap();
/// assert_eq!(inst.task_count(), 50);
/// assert_eq!(inst.proc_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// DAG topology parameters.
    pub dag: LayeredDagSpec,
    /// Number of processors.
    pub procs: usize,
    /// Platform parameters.
    pub platform: PlatformSpec,
    /// Task/machine heterogeneity of the BCET matrix (paper: 0.5, 0.5).
    pub bcet_covs: (f64, f64),
    /// Average uncertainty level (paper: 2–8) and its two-stage CoVs
    /// (paper: `V1 = V2 = 0.5`).
    pub avg_ul: f64,
    /// `V1`, `V2` of the UL generation.
    pub ul_covs: (f64, f64),
    /// Master seed.
    pub seed: u64,
}

impl InstanceSpec {
    /// Paper-default spec with the given task/processor counts
    /// (`α=1, cc=20, CCR=0.1, V=0.5` everywhere, `UL=2`, unit rates).
    #[must_use]
    pub fn new(tasks: usize, procs: usize) -> Self {
        Self {
            dag: LayeredDagSpec::with_tasks(tasks),
            procs,
            platform: PlatformSpec::uniform(procs),
            bcet_covs: (0.5, 0.5),
            avg_ul: 2.0,
            ul_covs: (0.5, 0.5),
            seed: 0,
        }
    }

    /// The paper's full-scale configuration: 100 tasks.
    #[must_use]
    pub fn paper(procs: usize) -> Self {
        Self::new(100, procs)
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the average uncertainty level (the experiments' `UL` knob).
    #[must_use]
    pub fn uncertainty_level(mut self, ul: f64) -> Self {
        self.avg_ul = ul;
        self
    }

    /// Sets the communication-to-computation ratio.
    #[must_use]
    pub fn ccr(mut self, ccr: f64) -> Self {
        self.dag = self.dag.ccr(ccr);
        self
    }

    /// Sets the DAG shape parameter α.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.dag = self.dag.alpha(alpha);
        self
    }

    /// Sets the average computation cost `cc`.
    #[must_use]
    pub fn avg_comp_cost(mut self, cc: f64) -> Self {
        self.dag = self.dag.avg_comp_cost(cc);
        self
    }

    /// Generates the instance. Sub-seeds for the DAG, BCET, UL and platform
    /// are derived from the master seed, so two specs differing only in
    /// `avg_ul` share the *same* graph and BCET matrix — exactly what the
    /// UL-sweep experiments need.
    ///
    /// # Errors
    /// Returns a message describing the first generator failure.
    pub fn build(&self) -> Result<Instance, String> {
        let seeds = SeedStream::new(self.seed);
        let graph = self
            .dag
            .generate(seeds.branch("dag").nth_seed(0))
            .map_err(|e| format!("dag generation: {e}"))?;
        let n = graph.task_count();
        let m = self.procs;
        let bcet = CovMatrixSpec::bcet(n, m)
            .mean(self.dag.avg_comp_cost)
            .covs(self.bcet_covs.0, self.bcet_covs.1)
            .generate(seeds.branch("bcet").nth_seed(0))
            .map_err(|e| format!("bcet generation: {e}"))?;
        let ul = CovMatrixSpec::uncertainty(n, m, self.avg_ul)
            .covs(self.ul_covs.0, self.ul_covs.1)
            .generate(seeds.branch("ul").nth_seed(0))
            .map_err(|e| format!("ul generation: {e}"))?;
        let platform = self
            .platform
            .generate(seeds.branch("platform").nth_seed(0))
            .map_err(|e| format!("platform generation: {e}"))?;
        let timing = TimingModel::new(bcet, ul).map_err(|e| format!("timing model: {e}"))?;
        Instance::new(graph, platform, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_consistent_instance() {
        let inst = InstanceSpec::new(40, 4).seed(1).build().unwrap();
        assert_eq!(inst.task_count(), 40);
        assert_eq!(inst.proc_count(), 4);
        assert_eq!(inst.timing.task_count(), 40);
        assert_eq!(inst.timing.proc_count(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = InstanceSpec::new(30, 3).seed(5).build().unwrap();
        let b = InstanceSpec::new(30, 3).seed(5).build().unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.timing, b.timing);
        let c = InstanceSpec::new(30, 3).seed(6).build().unwrap();
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn ul_sweep_shares_graph_and_bcet() {
        let lo = InstanceSpec::new(30, 3)
            .seed(5)
            .uncertainty_level(2.0)
            .build()
            .unwrap();
        let hi = InstanceSpec::new(30, 3)
            .seed(5)
            .uncertainty_level(8.0)
            .build()
            .unwrap();
        assert_eq!(lo.graph, hi.graph);
        assert_eq!(lo.timing.bcet_matrix(), hi.timing.bcet_matrix());
        assert_ne!(lo.timing.ul_matrix(), hi.timing.ul_matrix());
        assert!(hi.timing.ul_matrix().mean() > lo.timing.ul_matrix().mean());
    }

    #[test]
    fn mismatched_dims_rejected() {
        let inst = InstanceSpec::new(10, 2).seed(0).build().unwrap();
        let other = InstanceSpec::new(11, 2).seed(0).build().unwrap();
        assert!(Instance::new(inst.graph.clone(), inst.platform.clone(), other.timing).is_err());
        let p3 = InstanceSpec::new(10, 3).seed(0).build().unwrap();
        assert!(Instance::new(inst.graph, p3.platform, inst.timing).is_err());
    }

    #[test]
    fn expected_accessor_matches_timing() {
        let inst = InstanceSpec::new(10, 2).seed(3).build().unwrap();
        let t = TaskId(4);
        let p = ProcId(1);
        assert_eq!(inst.expected(t, p), inst.timing.expected(4, p));
    }

    #[test]
    fn fingerprint_is_deterministic_and_seed_sensitive() {
        let a = InstanceSpec::new(20, 3).seed(7).build().unwrap();
        let b = InstanceSpec::new(20, 3).seed(7).build().unwrap();
        let c = InstanceSpec::new(20, 3).seed(8).build().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_sees_every_ingredient() {
        let base = InstanceSpec::new(12, 3).seed(9).build().unwrap();
        let fp = base.fingerprint();

        // Perturb one BCET entry.
        let mut bcet = base.timing.bcet_matrix().clone();
        bcet[(0, 0)] += 1.0;
        let timing = rds_platform::TimingModel::new(bcet, base.timing.ul_matrix().clone()).unwrap();
        let tweaked = Instance::new(base.graph.clone(), base.platform.clone(), timing).unwrap();
        assert_ne!(
            tweaked.fingerprint(),
            fp,
            "BCET change must change the hash"
        );

        // Perturb one UL entry.
        let mut ul = base.timing.ul_matrix().clone();
        ul[(1, 1)] += 0.25;
        let timing = rds_platform::TimingModel::new(base.timing.bcet_matrix().clone(), ul).unwrap();
        let tweaked = Instance::new(base.graph.clone(), base.platform.clone(), timing).unwrap();
        assert_ne!(tweaked.fingerprint(), fp, "UL change must change the hash");

        // Perturb the topology: drop one edge.
        let mut builder = rds_graph::TaskGraphBuilder::with_tasks(base.task_count());
        let edges: Vec<_> = base.graph.edges().collect();
        for &(from, to, data) in edges.iter().skip(1) {
            builder.add_edge(from, to, data);
        }
        let graph = builder.build().unwrap();
        let tweaked = Instance::new(graph, base.platform.clone(), base.timing.clone()).unwrap();
        assert_ne!(
            tweaked.fingerprint(),
            fp,
            "edge removal must change the hash"
        );

        // Perturb one transfer rate.
        let m = base.proc_count();
        let mut rates = rds_stats::matrix::Matrix::zeros(m, m);
        for r in 0..m {
            for c in 0..m {
                rates[(r, c)] = if r == c {
                    1.0
                } else {
                    base.platform.rate(ProcId(r as u32), ProcId(c as u32))
                };
            }
        }
        rates[(0, 1)] *= 2.0;
        let platform = rds_platform::Platform::from_rates(m, rates).unwrap();
        let tweaked = Instance::new(base.graph.clone(), platform, base.timing.clone()).unwrap();
        assert_ne!(
            tweaked.fingerprint(),
            fp,
            "rate change must change the hash"
        );
    }

    #[test]
    fn fingerprint_ignores_weight_and_optional_annotations() {
        // v1 covers exactly the io-serialized content; runtime annotations
        // (not serialized) must not shift the cache key.
        let base = InstanceSpec::new(10, 2).seed(4).build().unwrap();
        let fp = base.fingerprint();
        let mut graph = base.graph.clone();
        graph.set_weight(TaskId(0), 3.0);
        graph.mark_optional(TaskId(9));
        graph.set_affinity(TaskId(1), 0b11);
        let annotated = Instance::new(graph, base.platform.clone(), base.timing.clone()).unwrap();
        assert_eq!(annotated.fingerprint(), fp);
    }
}

//! Contention-aware schedule evaluation (single-port communication).
//!
//! §3.1 assumes all inter-processor communications proceed without
//! contention — the standard macro-dataflow model. Real clusters serialize
//! transfers on NICs. This module re-times a fixed schedule under the
//! **single-port model**: each processor sends at most one message at a
//! time and receives at most one message at a time; transfers are started
//! in data-readiness order (earliest-ready-first, ties by task id).
//!
//! The evaluation answers an honesty question about the paper's results:
//! does a schedule tuned for the contention-free model keep its robustness
//! edge when the network pushes back? (`figures contention` runs the
//! comparison; see EXPERIMENTS.md.)
//!
//! The simulation is event-free in the queueing sense: because the task
//! order per processor and the message set are fixed, transfers and tasks
//! can be committed greedily in a deterministic global order.

use rds_graph::{TaskGraph, TaskId};
use rds_platform::{Platform, ProcId};

use crate::disjunctive::DisjunctiveGraph;
use crate::schedule::Schedule;
use crate::timing::TimedSchedule;

/// One committed message transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Producing task.
    pub from: TaskId,
    /// Consuming task.
    pub to: TaskId,
    /// Transfer start time.
    pub start: f64,
    /// Transfer completion time.
    pub finish: f64,
}

/// Result of a contention-aware evaluation.
#[derive(Debug, Clone)]
pub struct ContentionTimed {
    /// Task start/finish times and the makespan.
    pub timed: TimedSchedule,
    /// Every inter-processor transfer with its serialized window.
    pub transfers: Vec<Transfer>,
}

/// Evaluates `schedule` under single-port contention with the given
/// per-task durations.
///
/// Algorithm: process tasks in the disjunctive graph's topological order.
/// A task's inbound cross-processor messages are scheduled against the
/// sender's *send port* and the receiver's *receive port*, each message
/// starting no earlier than the producer's finish and the ports' previous
/// commitments (earliest-ready message first). The task then starts at
/// the max of its processor-availability and its last message arrival.
pub fn evaluate_with_contention(
    graph: &TaskGraph,
    ds: &DisjunctiveGraph,
    schedule: &Schedule,
    platform: &Platform,
    durations: &[f64],
) -> ContentionTimed {
    let n = ds.task_count();
    debug_assert_eq!(durations.len(), n);
    let m = schedule.proc_count();

    let mut start = vec![0.0_f64; n];
    let mut finish = vec![0.0_f64; n];
    let mut send_free = vec![0.0_f64; m]; // send-port availability
    let mut recv_free = vec![0.0_f64; m]; // receive-port availability
    let mut proc_free = vec![0.0_f64; m]; // CPU availability
    let mut transfers = Vec::new();
    let mut makespan = 0.0_f64;

    for &t in ds.topo_order() {
        let ti = t.index();
        let pt = schedule.proc_of(t);

        // Gather inbound cross-processor messages (graph predecessors with
        // data, on other processors), readiness = producer finish.
        let mut inbound: Vec<(TaskId, ProcId, f64 /*data*/, f64 /*ready*/)> = graph
            .predecessors(t)
            .iter()
            .filter(|e| e.data > 0.0 && schedule.proc_of(e.task) != pt)
            .map(|e| {
                let q = e.task;
                (q, schedule.proc_of(q), e.data, finish[q.index()])
            })
            .collect();
        // Earliest-ready first; ties by producer id for determinism.
        inbound.sort_by(|a, b| a.3.total_cmp(&b.3).then_with(|| a.0.cmp(&b.0)));

        let mut data_ready = 0.0_f64;
        for (q, pq, data, ready) in inbound {
            let s = ready.max(send_free[pq.index()]).max(recv_free[pt.index()]);
            let f = s + data / platform.rate(pq, pt);
            send_free[pq.index()] = f;
            recv_free[pt.index()] = f;
            transfers.push(Transfer {
                from: q,
                to: t,
                start: s,
                finish: f,
            });
            if f > data_ready {
                data_ready = f;
            }
        }

        // Every disjunctive-graph predecessor still gates the start by its
        // finish time: same-processor ones and zero-data cross-processor
        // ones need no transfer but remain precedence constraints (for
        // messaged predecessors the transfer finish already dominates).
        let mut ready = data_ready.max(proc_free[pt.index()]);
        for e in ds.predecessors(t) {
            ready = ready.max(finish[e.task.index()]);
        }

        start[ti] = ready;
        finish[ti] = ready + durations[ti];
        proc_free[pt.index()] = finish[ti];
        if finish[ti] > makespan {
            makespan = finish[ti];
        }
    }

    ContentionTimed {
        timed: TimedSchedule {
            start,
            finish,
            makespan,
        },
        transfers,
    }
}

/// Contention-aware *expected* makespan of a schedule on an instance.
///
/// # Errors
/// Returns an error when the schedule is incompatible with the graph.
pub fn expected_makespan_with_contention(
    inst: &crate::instance::Instance,
    schedule: &Schedule,
) -> Result<f64, crate::disjunctive::CycleError> {
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    let durations = crate::timing::expected_durations(&inst.timing, schedule);
    Ok(
        evaluate_with_contention(&inst.graph, &ds, schedule, &inst.platform, &durations)
            .timed
            .makespan,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;
    use crate::timing::evaluate_with_durations;
    use rds_graph::TaskGraphBuilder;
    use rds_platform::Platform;

    fn ids(xs: &[u32]) -> Vec<TaskId> {
        xs.iter().map(|&x| TaskId(x)).collect()
    }

    /// Fan-out fixture stressing the send port: task 0 on p0 feeds tasks
    /// 1 and 2 on p1 and p2, each with 10 units of data at rate 1.
    fn fan_out() -> (TaskGraph, Platform, Schedule, Vec<f64>) {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 10.0)
            .add_edge(TaskId(0), TaskId(2), 10.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(3, 1.0).unwrap();
        let s = Schedule::from_proc_lists(3, vec![ids(&[0]), ids(&[1]), ids(&[2])]).unwrap();
        (g, p, s, vec![2.0, 1.0, 1.0])
    }

    #[test]
    fn single_port_serializes_fan_out() {
        let (g, p, s, dur) = fan_out();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        // Contention-free: both transfers overlap; both consumers start at
        // 2 + 10 = 12; makespan 13.
        let free = evaluate_with_durations(&ds, &s, &p, &dur);
        assert_eq!(free.makespan, 13.0);
        // Single-port: the second transfer waits for the first; the later
        // consumer starts at 2 + 10 + 10 = 22; makespan 23.
        let cont = evaluate_with_contention(&g, &ds, &s, &p, &dur);
        assert_eq!(cont.timed.makespan, 23.0);
        assert_eq!(cont.transfers.len(), 2);
        assert_eq!(cont.transfers[0].start, 2.0);
        assert_eq!(cont.transfers[0].finish, 12.0);
        assert_eq!(cont.transfers[1].start, 12.0);
        assert_eq!(cont.transfers[1].finish, 22.0);
    }

    #[test]
    fn contention_never_beats_contention_free() {
        for seed in 0..6 {
            let inst = InstanceSpec::new(30, 4)
                .seed(seed)
                .ccr(1.0)
                .build()
                .unwrap();
            let heft = rds_heft_like(&inst);
            let ds = DisjunctiveGraph::build(&inst.graph, &heft).unwrap();
            let dur = crate::timing::expected_durations(&inst.timing, &heft);
            let free = evaluate_with_durations(&ds, &heft, &inst.platform, &dur).makespan;
            let cont = evaluate_with_contention(&inst.graph, &ds, &heft, &inst.platform, &dur)
                .timed
                .makespan;
            assert!(
                cont >= free - 1e-9,
                "seed {seed}: contention {cont} < contention-free {free}"
            );
        }
    }

    fn rds_heft_like(inst: &crate::instance::Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let m = inst.proc_count();
        let assignment: Vec<ProcId> = (0..inst.task_count())
            .map(|i| ProcId((i % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    #[test]
    fn zero_ccr_is_contention_immune() {
        let inst = InstanceSpec::new(25, 3).seed(2).ccr(0.0).build().unwrap();
        let s = rds_heft_like(&inst);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let dur = crate::timing::expected_durations(&inst.timing, &s);
        let free = evaluate_with_durations(&ds, &s, &inst.platform, &dur).makespan;
        let cont = expected_makespan_with_contention(&inst, &s).unwrap();
        assert!((cont - free).abs() < 1e-9);
        // And no transfers were scheduled at all.
        let ct = evaluate_with_contention(&inst.graph, &ds, &s, &inst.platform, &dur);
        assert!(ct.transfers.is_empty());
    }

    #[test]
    fn transfers_never_overlap_on_a_port() {
        let inst = InstanceSpec::new(40, 4).seed(3).ccr(2.0).build().unwrap();
        let s = rds_heft_like(&inst);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let dur = crate::timing::expected_durations(&inst.timing, &s);
        let ct = evaluate_with_contention(&inst.graph, &ds, &s, &inst.platform, &dur);
        // Group transfers by sender and by receiver; check pairwise
        // disjointness within each group.
        let check = |key: &dyn Fn(&Transfer) -> ProcId| {
            let mut by_port: std::collections::HashMap<ProcId, Vec<&Transfer>> =
                std::collections::HashMap::new();
            for tr in &ct.transfers {
                by_port.entry(key(tr)).or_default().push(tr);
            }
            for (_, mut ts) in by_port {
                ts.sort_by(|a, b| a.start.total_cmp(&b.start));
                for w in ts.windows(2) {
                    assert!(
                        w[1].start >= w[0].finish - 1e-9,
                        "port overlap: {:?} then {:?}",
                        w[0],
                        w[1]
                    );
                }
            }
        };
        check(&|tr| s.proc_of(tr.from)); // send ports
        check(&|tr| s.proc_of(tr.to)); // receive ports
    }

    #[test]
    fn task_starts_respect_their_transfers() {
        let inst = InstanceSpec::new(30, 3).seed(4).ccr(1.0).build().unwrap();
        let s = rds_heft_like(&inst);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let dur = crate::timing::expected_durations(&inst.timing, &s);
        let ct = evaluate_with_contention(&inst.graph, &ds, &s, &inst.platform, &dur);
        for tr in &ct.transfers {
            assert!(tr.start >= ct.timed.finish_of(tr.from) - 1e-9);
            assert!(ct.timed.start_of(tr.to) >= tr.finish - 1e-9);
        }
    }
}

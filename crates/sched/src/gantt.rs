//! Gantt-chart rendering of timed schedules: ASCII for terminals, SVG for
//! reports. Both are hand-rolled string builders — no drawing dependency.
//!
//! Two families of charts:
//! - [`ascii_gantt`] / [`svg_gantt`] draw a *planned* timed schedule;
//! - [`ascii_gantt_run`] / [`svg_gantt_run`] draw a *realized*
//!   [`FaultRun`], where recovery may have moved tasks off their planned
//!   processors, replicas raced primaries, and degradation may have
//!   dropped optional tasks. Migrated, replicated, lost, and dropped work
//!   are each visually distinct.

use rds_graph::TaskId;
use rds_platform::ProcId;

use crate::recovery::FaultRun;
use crate::schedule::Schedule;
use crate::timing::TimedSchedule;

/// Renders an ASCII Gantt chart: one row per processor, time flowing
/// right, `width` character columns spanning `[0, makespan]`.
///
/// Task boxes are labelled with the task id when they are wide enough;
/// idle time renders as dots.
///
/// # Panics
/// Panics when `width < 10`.
#[must_use]
pub fn ascii_gantt(schedule: &Schedule, timed: &TimedSchedule, width: usize) -> String {
    assert!(width >= 10, "chart needs at least 10 columns");
    let mut out = String::new();
    let span = timed.makespan.max(f64::MIN_POSITIVE);
    let col = |t: f64| -> usize { ((t / span) * width as f64).round() as usize };

    for p in 0..schedule.proc_count() {
        let pid = ProcId(p as u32);
        let mut row = vec![b'.'; width];
        for &t in schedule.tasks_on(pid) {
            let s = col(timed.start_of(t)).min(width.saturating_sub(1));
            let f = col(timed.finish_of(t)).clamp(s + 1, width);
            for cell in &mut row[s..f] {
                *cell = b'#';
            }
            // Label if it fits: [v12].
            let label = format!("{t}");
            if f - s >= label.len() + 2 {
                row[s] = b'[';
                row[f - 1] = b']';
                for (k, ch) in label.bytes().enumerate() {
                    row[s + 1 + k] = ch;
                }
            }
        }
        out.push_str(&format!("p{p:<3}|"));
        out.push_str(std::str::from_utf8(&row).expect("ascii row"));
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:width$}\n",
        format!("0{:>w$.1}", timed.makespan, w = width + 3),
        width = width
    ));
    out
}

/// Renders an SVG Gantt chart. One lane per processor; boxes are shaded by
/// task id; a time axis runs along the bottom.
#[must_use]
pub fn svg_gantt(schedule: &Schedule, timed: &TimedSchedule, width_px: u32) -> String {
    use std::fmt::Write as _;
    const LANE_H: u32 = 28;
    const PAD: u32 = 40;
    let m = schedule.proc_count() as u32;
    let height = m * LANE_H + 2 * PAD;
    let span = timed.makespan.max(f64::MIN_POSITIVE);
    let x = |t: f64| -> f64 { f64::from(PAD) + (t / span) * f64::from(width_px - 2 * PAD) };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" viewBox=\"0 0 {width_px} {height}\">"
    );
    let _ = writeln!(out, "  <style>text{{font:10px sans-serif}}</style>");
    for p in 0..schedule.proc_count() {
        let y = PAD + p as u32 * LANE_H;
        let _ = writeln!(
            out,
            "  <text x=\"4\" y=\"{}\">p{p}</text>",
            y + LANE_H / 2 + 4
        );
        let _ = writeln!(
            out,
            "  <line x1=\"{PAD}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#ccc\"/>",
            y + LANE_H,
            width_px - PAD,
            y + LANE_H
        );
        for &t in schedule.tasks_on(ProcId(p as u32)) {
            let x0 = x(timed.start_of(t));
            let w = (x(timed.finish_of(t)) - x0).max(1.0);
            // Deterministic pastel per task id.
            let hue = (t.0 * 47) % 360;
            let _ = writeln!(
                out,
                "  <rect x=\"{x0:.1}\" y=\"{}\" width=\"{w:.1}\" height=\"{}\" fill=\"hsl({hue},60%,70%)\" stroke=\"#333\"/>",
                y + 3,
                LANE_H - 6
            );
            let _ = writeln!(
                out,
                "  <text x=\"{:.1}\" y=\"{}\">{t}</text>",
                x0 + 2.0,
                y + LANE_H / 2 + 4
            );
        }
    }
    // Axis.
    let _ = writeln!(
        out,
        "  <text x=\"{PAD}\" y=\"{}\">0</text>",
        height - PAD / 2
    );
    let _ = writeln!(
        out,
        "  <text x=\"{}\" y=\"{}\" text-anchor=\"end\">{:.1}</text>",
        width_px - PAD,
        height - PAD / 2,
        timed.makespan
    );
    let _ = writeln!(out, "</svg>");
    out
}

/// Horizon of a realized run: the latest finite span end, falling back to
/// the outcome's makespan (or failure time).
fn run_span(run: &FaultRun) -> f64 {
    let spans_end = run
        .spans
        .iter()
        .map(|s| s.end)
        .filter(|e| e.is_finite())
        .fold(0.0f64, f64::max);
    let outcome_end = match run.outcome {
        crate::recovery::Outcome::Completed { makespan } => makespan,
        crate::recovery::Outcome::Failed { at, .. } => at,
    };
    spans_end.max(outcome_end).max(f64::MIN_POSITIVE)
}

/// Tasks the run degraded away: never finished with a realized time and
/// never appear as a winning copy.
fn dropped_tasks(run: &FaultRun) -> Vec<TaskId> {
    (0..run.finish.len())
        .map(|t| TaskId(t as u32))
        .filter(|t| run.finish[t.index()].is_nan())
        .collect()
}

/// Renders an ASCII Gantt chart of a realized [`FaultRun`] against the
/// original plan. One row per processor; every executed copy interval is
/// drawn with a fill telling its story apart:
///
/// - `#` — winning primary on its planned processor;
/// - `%` — winning primary *migrated* off its planned processor by a
///   repair;
/// - `=` — replica copy (speculative or planned);
/// - `x` — a lost copy (crashed, killed, or out-raced).
///
/// Winning boxes wide enough carry their task label. Tasks dropped by
/// graceful degradation never executed, so they have no box; they are
/// listed on a trailing `dropped:` line instead (`dropped: -` when none).
///
/// # Panics
/// Panics when `width < 10`.
#[must_use]
pub fn ascii_gantt_run(plan: &Schedule, run: &FaultRun, width: usize) -> String {
    assert!(width >= 10, "chart needs at least 10 columns");
    let mut out = String::new();
    let span = run_span(run);
    let col = |t: f64| -> usize { ((t / span) * width as f64).round() as usize };

    for p in 0..plan.proc_count() {
        let pid = ProcId(p as u32);
        let mut row = vec![b'.'; width];
        // Losing copies first so winners overdraw them on shared cells.
        let mut spans: Vec<&crate::recovery::CopySpan> =
            run.spans.iter().filter(|s| s.proc == pid).collect();
        spans.sort_by_key(|s| s.won);
        for s in spans {
            let a = col(s.start).min(width.saturating_sub(1));
            let b = col(s.end).clamp(a + 1, width);
            let fill = if !s.won {
                b'x'
            } else if s.replica {
                b'='
            } else if plan.proc_of(s.task) != s.proc {
                b'%'
            } else {
                b'#'
            };
            for cell in &mut row[a..b] {
                *cell = fill;
            }
            let label = format!("{}", s.task);
            if s.won && b - a >= label.len() + 2 {
                row[a] = b'[';
                row[b - 1] = b']';
                for (k, ch) in label.bytes().enumerate() {
                    row[a + 1 + k] = ch;
                }
            }
        }
        out.push_str(&format!("p{p:<3}|"));
        out.push_str(std::str::from_utf8(&row).expect("ascii row"));
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:width$}\n",
        format!("0{:>w$.1}", span, w = width + 3),
        width = width
    ));
    let dropped = dropped_tasks(run);
    if dropped.is_empty() {
        out.push_str("dropped: -\n");
    } else {
        out.push_str("dropped:");
        for t in dropped {
            out.push_str(&format!(" {t}"));
        }
        out.push('\n');
    }
    out
}

/// Renders an SVG Gantt chart of a realized [`FaultRun`]. Styling mirrors
/// [`ascii_gantt_run`]: winning primaries keep the planned chart's pastel
/// fill, migrated winners get a thick red outline, replicas a dashed
/// outline, and losing copies fade to low opacity. Dropped tasks are
/// listed under the axis.
#[must_use]
pub fn svg_gantt_run(plan: &Schedule, run: &FaultRun, width_px: u32) -> String {
    use std::fmt::Write as _;
    const LANE_H: u32 = 28;
    const PAD: u32 = 40;
    let m = plan.proc_count() as u32;
    let height = m * LANE_H + 2 * PAD;
    let span = run_span(run);
    let x = |t: f64| -> f64 { f64::from(PAD) + (t / span) * f64::from(width_px - 2 * PAD) };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" viewBox=\"0 0 {width_px} {height}\">"
    );
    let _ = writeln!(out, "  <style>text{{font:10px sans-serif}}</style>");
    for p in 0..plan.proc_count() {
        let pid = ProcId(p as u32);
        let y = PAD + p as u32 * LANE_H;
        let _ = writeln!(
            out,
            "  <text x=\"4\" y=\"{}\">p{p}</text>",
            y + LANE_H / 2 + 4
        );
        let _ = writeln!(
            out,
            "  <line x1=\"{PAD}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#ccc\"/>",
            y + LANE_H,
            width_px - PAD,
            y + LANE_H
        );
        let mut spans: Vec<&crate::recovery::CopySpan> =
            run.spans.iter().filter(|s| s.proc == pid).collect();
        spans.sort_by_key(|s| s.won);
        for s in spans {
            let x0 = x(s.start);
            let w = (x(s.end) - x0).max(1.0);
            let hue = (s.task.0 * 47) % 360;
            let migrated = !s.replica && plan.proc_of(s.task) != s.proc;
            let stroke = if migrated { "#c0392b" } else { "#333" };
            let stroke_w = if migrated { 2.5 } else { 1.0 };
            let dash = if s.replica {
                " stroke-dasharray=\"4 2\""
            } else {
                ""
            };
            let opacity = if s.won { 1.0 } else { 0.35 };
            let _ = writeln!(
                out,
                "  <rect x=\"{x0:.1}\" y=\"{}\" width=\"{w:.1}\" height=\"{}\" fill=\"hsl({hue},60%,70%)\" fill-opacity=\"{opacity}\" stroke=\"{stroke}\" stroke-width=\"{stroke_w}\"{dash}/>",
                y + 3,
                LANE_H - 6
            );
            if s.won {
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.1}\" y=\"{}\">{}</text>",
                    x0 + 2.0,
                    y + LANE_H / 2 + 4,
                    s.task
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "  <text x=\"{PAD}\" y=\"{}\">0</text>",
        height - PAD / 2
    );
    let _ = writeln!(
        out,
        "  <text x=\"{}\" y=\"{}\" text-anchor=\"end\">{span:.1}</text>",
        width_px - PAD,
        height - PAD / 2,
    );
    let dropped = dropped_tasks(run);
    if !dropped.is_empty() {
        let names: Vec<String> = dropped.iter().map(ToString::to_string).collect();
        let _ = writeln!(
            out,
            "  <text x=\"{PAD}\" y=\"{}\" fill=\"#999\">dropped: {}</text>",
            height - PAD / 2 + 14,
            names.join(" ")
        );
    }
    let _ = writeln!(out, "</svg>");
    out
}

/// Convenience: evaluates and renders the expected-duration ASCII chart.
///
/// # Errors
/// Returns an error when the schedule is incompatible with the instance's
/// graph.
pub fn ascii_gantt_expected(
    inst: &crate::instance::Instance,
    schedule: &Schedule,
    width: usize,
) -> Result<String, crate::disjunctive::CycleError> {
    let timed =
        crate::timing::evaluate_expected(&inst.graph, &inst.platform, &inst.timing, schedule)?;
    Ok(ascii_gantt(schedule, &timed, width))
}

/// Returns the tasks whose boxes would overlap in a correct chart — i.e.
/// never; exposed for tests as an invariant check on (schedule, timed)
/// pairs: on one processor, a task's start must be at or after its
/// predecessor's finish.
#[must_use]
pub fn overlapping_tasks(schedule: &Schedule, timed: &TimedSchedule) -> Vec<(TaskId, TaskId)> {
    let mut bad = Vec::new();
    for p in 0..schedule.proc_count() {
        let tasks = schedule.tasks_on(ProcId(p as u32));
        for w in tasks.windows(2) {
            if timed.start_of(w[1]) < timed.finish_of(w[0]) - 1e-9 {
                bad.push((w[0], w[1]));
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjunctive::DisjunctiveGraph;
    use crate::instance::InstanceSpec;
    use crate::timing::{evaluate_with_durations, expected_durations};

    fn fixture() -> (crate::instance::Instance, Schedule, TimedSchedule) {
        let inst = InstanceSpec::new(12, 3).seed(5).build().unwrap();
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..12).map(|i| ProcId((i % 3) as u32)).collect();
        let s = Schedule::from_order_and_assignment(&order, &assignment, 3).unwrap();
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let t = evaluate_with_durations(&ds, &s, &inst.platform, &durations);
        (inst, s, t)
    }

    #[test]
    fn ascii_chart_has_one_row_per_proc() {
        let (_, s, t) = fixture();
        let chart = ascii_gantt(&s, &t, 60);
        let rows: Vec<&str> = chart.lines().collect();
        assert_eq!(rows.len(), 4); // 3 procs + axis
        assert!(rows[0].starts_with("p0"));
        assert!(rows[2].starts_with("p2"));
        // Every processor with tasks shows boxes.
        assert!(rows[0].contains('#') || rows[0].contains('['));
    }

    #[test]
    fn ascii_chart_rejects_tiny_width() {
        let (_, s, t) = fixture();
        let result = std::panic::catch_unwind(|| ascii_gantt(&s, &t, 5));
        assert!(result.is_err());
    }

    #[test]
    fn svg_chart_is_well_formed() {
        let (_, s, t) = fixture();
        let svg = svg_gantt(&s, &t, 600);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per task.
        assert_eq!(svg.matches("<rect").count(), 12);
        // Makespan appears on the axis.
        assert!(svg.contains(&format!("{:.1}", t.makespan)));
    }

    #[test]
    fn no_overlaps_in_valid_timing() {
        let (_, s, t) = fixture();
        assert!(overlapping_tasks(&s, &t).is_empty());
    }

    #[test]
    fn overlap_detector_catches_bad_timing() {
        let (_, s, mut t) = fixture();
        // Force the second task on p0 to start before the first finishes.
        let tasks = s.tasks_on(ProcId(0)).to_vec();
        if tasks.len() >= 2 {
            t.start[tasks[1].index()] = t.start[tasks[0].index()];
            assert!(!overlapping_tasks(&s, &t).is_empty());
        }
    }

    #[test]
    fn expected_helper_renders() {
        let (inst, s, _) = fixture();
        let chart = ascii_gantt_expected(&inst, &s, 50).unwrap();
        assert!(chart.contains("p0"));
    }

    /// A hand-built run exercising every visual class at once: a winning
    /// primary in place, a migrated winner, a winning replica, a lost
    /// copy, and a dropped task.
    fn synthetic_run() -> crate::recovery::FaultRun {
        use crate::recovery::{CopySpan, FaultRun, Outcome, RecoveryStats};
        let n = 12;
        let mut start = vec![0.0; n];
        let mut finish = vec![8.0; n];
        start[5] = f64::NAN;
        finish[5] = f64::NAN; // dropped by degradation
        let spans = vec![
            // Winning primary on its planned processor (task 0 plans p0).
            CopySpan {
                task: TaskId(0),
                proc: ProcId(0),
                start: 0.0,
                end: 4.0,
                replica: false,
                won: true,
            },
            // Winning primary migrated off its planned processor
            // (task 1 plans p1, ran on p2).
            CopySpan {
                task: TaskId(1),
                proc: ProcId(2),
                start: 1.0,
                end: 6.0,
                replica: false,
                won: true,
            },
            // Winning replica.
            CopySpan {
                task: TaskId(2),
                proc: ProcId(1),
                start: 0.0,
                end: 5.0,
                replica: true,
                won: true,
            },
            // Lost primary copy of the same task (out-raced).
            CopySpan {
                task: TaskId(2),
                proc: ProcId(2),
                start: 6.0,
                end: 10.0,
                replica: false,
                won: false,
            },
        ];
        FaultRun {
            outcome: Outcome::Completed { makespan: 10.0 },
            schedule: None,
            start,
            finish,
            stats: RecoveryStats::default(),
            events: Vec::new(),
            spans,
        }
    }

    #[test]
    fn run_chart_distinguishes_migrated_replica_lost_and_dropped() {
        let (_, s, _) = fixture();
        let run = synthetic_run();
        let chart = ascii_gantt_run(&s, &run, 60);
        assert!(chart.contains('#'), "in-place winner fill missing");
        assert!(chart.contains('%'), "migrated fill missing");
        assert!(chart.contains('='), "replica fill missing");
        assert!(chart.contains('x'), "lost-copy fill missing");
        assert!(
            chart.contains("dropped: v5"),
            "dropped footer missing:\n{chart}"
        );

        let svg = svg_gantt_run(&s, &run, 600);
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), run.spans.len());
        assert!(svg.contains("stroke-dasharray"), "replica dash missing");
        assert!(svg.contains("#c0392b"), "migration outline missing");
        assert!(svg.contains("fill-opacity=\"0.35\""), "lost fade missing");
        assert!(svg.contains("dropped: v5"), "dropped legend missing");
    }

    #[test]
    fn run_chart_from_real_migration_shows_moved_work() {
        use crate::faults::{FaultScenario, ProcessorFailure};
        use crate::recovery::{execute_with_faults, RecoveryConfig, RecoveryPolicy};
        use rds_stats::matrix::Matrix;
        let inst = InstanceSpec::new(16, 3).seed(9).build().unwrap();
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..16).map(|i| ProcId((i % 3) as u32)).collect();
        let s = Schedule::from_order_and_assignment(&order, &assignment, 3).unwrap();
        let mx = Matrix::from_fn(16, 3, |t, p| inst.timing.expected(t, ProcId(p as u32)));
        let m0 = crate::timing::evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &s)
            .unwrap()
            .makespan;
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: 0.3 * m0,
            }],
            ..FaultScenario::default()
        };
        let run = execute_with_faults(
            &inst,
            &s,
            &mx,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
        )
        .unwrap();
        let chart = ascii_gantt_run(&s, &run, 80);
        assert_eq!(chart.lines().count(), 5); // 3 procs + axis + dropped
        assert!(chart.contains('%'), "no migrated work rendered:\n{chart}");
        assert!(chart.contains("dropped: -"));
        let svg = svg_gantt_run(&s, &run, 600);
        assert!(svg.contains("#c0392b"));
        assert!(!svg.contains("dropped:"));
    }
}

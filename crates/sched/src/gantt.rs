//! Gantt-chart rendering of timed schedules: ASCII for terminals, SVG for
//! reports. Both are hand-rolled string builders — no drawing dependency.

use rds_graph::TaskId;
use rds_platform::ProcId;

use crate::schedule::Schedule;
use crate::timing::TimedSchedule;

/// Renders an ASCII Gantt chart: one row per processor, time flowing
/// right, `width` character columns spanning `[0, makespan]`.
///
/// Task boxes are labelled with the task id when they are wide enough;
/// idle time renders as dots.
///
/// # Panics
/// Panics when `width < 10`.
#[must_use]
pub fn ascii_gantt(schedule: &Schedule, timed: &TimedSchedule, width: usize) -> String {
    assert!(width >= 10, "chart needs at least 10 columns");
    let mut out = String::new();
    let span = timed.makespan.max(f64::MIN_POSITIVE);
    let col = |t: f64| -> usize { ((t / span) * width as f64).round() as usize };

    for p in 0..schedule.proc_count() {
        let pid = ProcId(p as u32);
        let mut row = vec![b'.'; width];
        for &t in schedule.tasks_on(pid) {
            let s = col(timed.start_of(t)).min(width.saturating_sub(1));
            let f = col(timed.finish_of(t)).clamp(s + 1, width);
            for cell in &mut row[s..f] {
                *cell = b'#';
            }
            // Label if it fits: [v12].
            let label = format!("{t}");
            if f - s >= label.len() + 2 {
                row[s] = b'[';
                row[f - 1] = b']';
                for (k, ch) in label.bytes().enumerate() {
                    row[s + 1 + k] = ch;
                }
            }
        }
        out.push_str(&format!("p{p:<3}|"));
        out.push_str(std::str::from_utf8(&row).expect("ascii row"));
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:width$}\n",
        format!("0{:>w$.1}", timed.makespan, w = width + 3),
        width = width
    ));
    out
}

/// Renders an SVG Gantt chart. One lane per processor; boxes are shaded by
/// task id; a time axis runs along the bottom.
#[must_use]
pub fn svg_gantt(schedule: &Schedule, timed: &TimedSchedule, width_px: u32) -> String {
    use std::fmt::Write as _;
    const LANE_H: u32 = 28;
    const PAD: u32 = 40;
    let m = schedule.proc_count() as u32;
    let height = m * LANE_H + 2 * PAD;
    let span = timed.makespan.max(f64::MIN_POSITIVE);
    let x = |t: f64| -> f64 { f64::from(PAD) + (t / span) * f64::from(width_px - 2 * PAD) };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height}\" viewBox=\"0 0 {width_px} {height}\">"
    );
    let _ = writeln!(out, "  <style>text{{font:10px sans-serif}}</style>");
    for p in 0..schedule.proc_count() {
        let y = PAD + p as u32 * LANE_H;
        let _ = writeln!(
            out,
            "  <text x=\"4\" y=\"{}\">p{p}</text>",
            y + LANE_H / 2 + 4
        );
        let _ = writeln!(
            out,
            "  <line x1=\"{PAD}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#ccc\"/>",
            y + LANE_H,
            width_px - PAD,
            y + LANE_H
        );
        for &t in schedule.tasks_on(ProcId(p as u32)) {
            let x0 = x(timed.start_of(t));
            let w = (x(timed.finish_of(t)) - x0).max(1.0);
            // Deterministic pastel per task id.
            let hue = (t.0 * 47) % 360;
            let _ = writeln!(
                out,
                "  <rect x=\"{x0:.1}\" y=\"{}\" width=\"{w:.1}\" height=\"{}\" fill=\"hsl({hue},60%,70%)\" stroke=\"#333\"/>",
                y + 3,
                LANE_H - 6
            );
            let _ = writeln!(
                out,
                "  <text x=\"{:.1}\" y=\"{}\">{t}</text>",
                x0 + 2.0,
                y + LANE_H / 2 + 4
            );
        }
    }
    // Axis.
    let _ = writeln!(
        out,
        "  <text x=\"{PAD}\" y=\"{}\">0</text>",
        height - PAD / 2
    );
    let _ = writeln!(
        out,
        "  <text x=\"{}\" y=\"{}\" text-anchor=\"end\">{:.1}</text>",
        width_px - PAD,
        height - PAD / 2,
        timed.makespan
    );
    let _ = writeln!(out, "</svg>");
    out
}

/// Convenience: evaluates and renders the expected-duration ASCII chart.
///
/// # Errors
/// Returns an error when the schedule is incompatible with the instance's
/// graph.
pub fn ascii_gantt_expected(
    inst: &crate::instance::Instance,
    schedule: &Schedule,
    width: usize,
) -> Result<String, crate::disjunctive::CycleError> {
    let timed =
        crate::timing::evaluate_expected(&inst.graph, &inst.platform, &inst.timing, schedule)?;
    Ok(ascii_gantt(schedule, &timed, width))
}

/// Returns the tasks whose boxes would overlap in a correct chart — i.e.
/// never; exposed for tests as an invariant check on (schedule, timed)
/// pairs: on one processor, a task's start must be at or after its
/// predecessor's finish.
#[must_use]
pub fn overlapping_tasks(schedule: &Schedule, timed: &TimedSchedule) -> Vec<(TaskId, TaskId)> {
    let mut bad = Vec::new();
    for p in 0..schedule.proc_count() {
        let tasks = schedule.tasks_on(ProcId(p as u32));
        for w in tasks.windows(2) {
            if timed.start_of(w[1]) < timed.finish_of(w[0]) - 1e-9 {
                bad.push((w[0], w[1]));
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjunctive::DisjunctiveGraph;
    use crate::instance::InstanceSpec;
    use crate::timing::{evaluate_with_durations, expected_durations};

    fn fixture() -> (crate::instance::Instance, Schedule, TimedSchedule) {
        let inst = InstanceSpec::new(12, 3).seed(5).build().unwrap();
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..12).map(|i| ProcId((i % 3) as u32)).collect();
        let s = Schedule::from_order_and_assignment(&order, &assignment, 3).unwrap();
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let t = evaluate_with_durations(&ds, &s, &inst.platform, &durations);
        (inst, s, t)
    }

    #[test]
    fn ascii_chart_has_one_row_per_proc() {
        let (_, s, t) = fixture();
        let chart = ascii_gantt(&s, &t, 60);
        let rows: Vec<&str> = chart.lines().collect();
        assert_eq!(rows.len(), 4); // 3 procs + axis
        assert!(rows[0].starts_with("p0"));
        assert!(rows[2].starts_with("p2"));
        // Every processor with tasks shows boxes.
        assert!(rows[0].contains('#') || rows[0].contains('['));
    }

    #[test]
    fn ascii_chart_rejects_tiny_width() {
        let (_, s, t) = fixture();
        let result = std::panic::catch_unwind(|| ascii_gantt(&s, &t, 5));
        assert!(result.is_err());
    }

    #[test]
    fn svg_chart_is_well_formed() {
        let (_, s, t) = fixture();
        let svg = svg_gantt(&s, &t, 600);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per task.
        assert_eq!(svg.matches("<rect").count(), 12);
        // Makespan appears on the axis.
        assert!(svg.contains(&format!("{:.1}", t.makespan)));
    }

    #[test]
    fn no_overlaps_in_valid_timing() {
        let (_, s, t) = fixture();
        assert!(overlapping_tasks(&s, &t).is_empty());
    }

    #[test]
    fn overlap_detector_catches_bad_timing() {
        let (_, s, mut t) = fixture();
        // Force the second task on p0 to start before the first finishes.
        let tasks = s.tasks_on(ProcId(0)).to_vec();
        if tasks.len() >= 2 {
            t.start[tasks[1].index()] = t.start[tasks[0].index()];
            assert!(!overlapping_tasks(&s, &t).is_empty());
        }
    }

    #[test]
    fn expected_helper_renders() {
        let (inst, s, _) = fixture();
        let chart = ascii_gantt_expected(&inst, &s, 50).unwrap();
        assert!(chart.contains("p0"));
    }
}

//! The schedule representation `s = {s_1, .., s_m}` of §3.1.
//!
//! A schedule stores, for every processor, the ordered list of tasks it
//! executes, plus the inverse map (task → processor and position). The
//! paper's notation lists each `s_i` as consecutive pairs; here the order
//! list is stored directly and the pairs are implied by adjacency.

use std::fmt;

use rds_graph::{TaskGraph, TaskId};
use rds_platform::ProcId;

/// Errors from schedule construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A task id exceeded the declared task count.
    UnknownTask(TaskId),
    /// A task appeared on more than one processor (or twice on one).
    DuplicateTask(TaskId),
    /// Some declared task never appeared on any processor.
    MissingTask(TaskId),
    /// The schedule's disjunctive graph is cyclic: the per-processor orders
    /// contradict the precedence constraints.
    PrecedenceCycle,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnknownTask(t) => write!(f, "unknown task {t}"),
            ScheduleError::DuplicateTask(t) => write!(f, "task {t} scheduled more than once"),
            ScheduleError::MissingTask(t) => write!(f, "task {t} never scheduled"),
            ScheduleError::PrecedenceCycle => {
                write!(
                    f,
                    "per-processor orders contradict the precedence constraints"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An assignment of every task to a processor together with per-processor
/// execution orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    proc_tasks: Vec<Vec<TaskId>>,
    assignment: Vec<ProcId>,
    position: Vec<u32>, // index of each task within its processor's order
}

impl Schedule {
    /// Builds a schedule from per-processor ordered task lists.
    ///
    /// `task_count` is the total number of tasks expected; every task in
    /// `0..task_count` must appear exactly once across all lists.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] on unknown/duplicate/missing tasks. This
    /// constructor does **not** check precedence compatibility — that
    /// requires the graph; see [`Schedule::validate_against`].
    pub fn from_proc_lists(
        task_count: usize,
        proc_tasks: Vec<Vec<TaskId>>,
    ) -> Result<Self, ScheduleError> {
        let mut assignment = vec![ProcId(u32::MAX); task_count];
        let mut position = vec![u32::MAX; task_count];
        let mut seen = vec![false; task_count];
        for (p, tasks) in proc_tasks.iter().enumerate() {
            for (pos, &t) in tasks.iter().enumerate() {
                if t.index() >= task_count {
                    return Err(ScheduleError::UnknownTask(t));
                }
                if seen[t.index()] {
                    return Err(ScheduleError::DuplicateTask(t));
                }
                seen[t.index()] = true;
                assignment[t.index()] = ProcId(p as u32);
                position[t.index()] = pos as u32;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ScheduleError::MissingTask(TaskId(missing as u32)));
        }
        Ok(Self {
            proc_tasks,
            assignment,
            position,
        })
    }

    /// Builds a schedule from a global task order and a per-task processor
    /// assignment: each processor executes its tasks in the order they
    /// appear in `order`. This is exactly the GA chromosome decoding of
    /// §4.2.1 (scheduling string + assignment).
    ///
    /// # Errors
    /// Returns [`ScheduleError`] when `order` is not a permutation of
    /// `0..assignment.len()`.
    pub fn from_order_and_assignment(
        order: &[TaskId],
        assignment: &[ProcId],
        proc_count: usize,
    ) -> Result<Self, ScheduleError> {
        let task_count = assignment.len();
        let mut proc_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); proc_count];
        let mut seen = vec![false; task_count];
        for &t in order {
            if t.index() >= task_count {
                return Err(ScheduleError::UnknownTask(t));
            }
            if seen[t.index()] {
                return Err(ScheduleError::DuplicateTask(t));
            }
            seen[t.index()] = true;
            let p = assignment[t.index()];
            if p.index() >= proc_count {
                return Err(ScheduleError::UnknownTask(t));
            }
            proc_tasks[p.index()].push(t);
        }
        if order.len() != task_count {
            if let Some(missing) = seen.iter().position(|&s| !s) {
                return Err(ScheduleError::MissingTask(TaskId(missing as u32)));
            }
        }
        Self::from_proc_lists(task_count, proc_tasks)
    }

    /// Number of processors (some may be idle).
    #[inline]
    pub fn proc_count(&self) -> usize {
        self.proc_tasks.len()
    }

    /// Number of tasks.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.assignment.len()
    }

    /// The ordered task list of processor `p`.
    #[inline]
    pub fn tasks_on(&self, p: ProcId) -> &[TaskId] {
        &self.proc_tasks[p.index()]
    }

    /// The processor executing `t`.
    #[inline]
    pub fn proc_of(&self, t: TaskId) -> ProcId {
        self.assignment[t.index()]
    }

    /// The full task → processor assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[ProcId] {
        &self.assignment
    }

    /// The task executed immediately before `t` on its processor, if any —
    /// i.e. `t`'s disjunctive predecessor.
    pub fn prev_on_proc(&self, t: TaskId) -> Option<TaskId> {
        let pos = self.position[t.index()] as usize;
        if pos == 0 {
            None
        } else {
            Some(self.proc_tasks[self.proc_of(t).index()][pos - 1])
        }
    }

    /// The task executed immediately after `t` on its processor, if any —
    /// i.e. `t`'s disjunctive successor.
    pub fn next_on_proc(&self, t: TaskId) -> Option<TaskId> {
        let p = self.proc_of(t).index();
        let pos = self.position[t.index()] as usize;
        self.proc_tasks[p].get(pos + 1).copied()
    }

    /// The paper's pair notation for one processor:
    /// `{(v_a, v_b), (v_b, v_c), ...}`.
    pub fn pairs_on(&self, p: ProcId) -> Vec<(TaskId, TaskId)> {
        self.proc_tasks[p.index()]
            .windows(2)
            .map(|w| (w[0], w[1]))
            .collect()
    }

    /// Checks precedence compatibility against a task graph by building the
    /// disjunctive graph and verifying it is acyclic.
    ///
    /// # Errors
    /// Returns [`ScheduleError::PrecedenceCycle`] when incompatible.
    pub fn validate_against(&self, graph: &TaskGraph) -> Result<(), ScheduleError> {
        crate::disjunctive::DisjunctiveGraph::build(graph, self)
            .map(|_| ())
            .map_err(|_| ScheduleError::PrecedenceCycle)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, tasks) in self.proc_tasks.iter().enumerate() {
            write!(f, "p{p}: ")?;
            if tasks.is_empty() {
                writeln!(f, "(idle)")?;
            } else {
                let list: Vec<String> = tasks.iter().map(|t| t.to_string()).collect();
                writeln!(f, "{}", list.join(" -> "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_graph::TaskGraphBuilder;

    fn ids(xs: &[u32]) -> Vec<TaskId> {
        xs.iter().map(|&x| TaskId(x)).collect()
    }

    #[test]
    fn from_proc_lists_happy_path() {
        let s = Schedule::from_proc_lists(4, vec![ids(&[0, 2]), ids(&[1, 3]), vec![]]).unwrap();
        assert_eq!(s.proc_count(), 3);
        assert_eq!(s.task_count(), 4);
        assert_eq!(s.proc_of(TaskId(2)), ProcId(0));
        assert_eq!(s.proc_of(TaskId(3)), ProcId(1));
        assert_eq!(s.tasks_on(ProcId(0)), &ids(&[0, 2])[..]);
        assert_eq!(s.prev_on_proc(TaskId(2)), Some(TaskId(0)));
        assert_eq!(s.prev_on_proc(TaskId(0)), None);
        assert_eq!(s.next_on_proc(TaskId(0)), Some(TaskId(2)));
        assert_eq!(s.next_on_proc(TaskId(2)), None);
        assert_eq!(s.pairs_on(ProcId(0)), vec![(TaskId(0), TaskId(2))]);
        assert!(s.pairs_on(ProcId(2)).is_empty());
    }

    #[test]
    fn rejects_duplicates_missing_unknown() {
        assert_eq!(
            Schedule::from_proc_lists(2, vec![ids(&[0, 0]), ids(&[1])]).unwrap_err(),
            ScheduleError::DuplicateTask(TaskId(0))
        );
        assert_eq!(
            Schedule::from_proc_lists(3, vec![ids(&[0]), ids(&[1])]).unwrap_err(),
            ScheduleError::MissingTask(TaskId(2))
        );
        assert_eq!(
            Schedule::from_proc_lists(2, vec![ids(&[0, 7]), ids(&[1])]).unwrap_err(),
            ScheduleError::UnknownTask(TaskId(7))
        );
    }

    #[test]
    fn from_order_and_assignment_decodes_chromosome() {
        // order 0,1,2,3 with assignment [p0, p1, p0, p1]
        let order = ids(&[0, 1, 2, 3]);
        let assign = vec![ProcId(0), ProcId(1), ProcId(0), ProcId(1)];
        let s = Schedule::from_order_and_assignment(&order, &assign, 2).unwrap();
        assert_eq!(s.tasks_on(ProcId(0)), &ids(&[0, 2])[..]);
        assert_eq!(s.tasks_on(ProcId(1)), &ids(&[1, 3])[..]);

        // A different order permutes per-processor sequences.
        let order2 = ids(&[1, 3, 0, 2]);
        let s2 = Schedule::from_order_and_assignment(&order2, &assign, 2).unwrap();
        assert_eq!(s2.tasks_on(ProcId(1)), &ids(&[1, 3])[..]);
        assert_eq!(s2.tasks_on(ProcId(0)), &ids(&[0, 2])[..]);
    }

    #[test]
    fn order_decoding_rejects_short_order() {
        let assign = vec![ProcId(0), ProcId(0)];
        let err = Schedule::from_order_and_assignment(&ids(&[0]), &assign, 1).unwrap_err();
        assert_eq!(err, ScheduleError::MissingTask(TaskId(1)));
    }

    #[test]
    fn validate_against_detects_precedence_cycle() {
        // 0 -> 1, but p0 executes 1 before 0: Gs has 0->1 (E) and 1->0 (E').
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(1), 1.0);
        let g = b.build().unwrap();
        let bad = Schedule::from_proc_lists(2, vec![ids(&[1, 0])]).unwrap();
        assert_eq!(
            bad.validate_against(&g).unwrap_err(),
            ScheduleError::PrecedenceCycle
        );
        let good = Schedule::from_proc_lists(2, vec![ids(&[0, 1])]).unwrap();
        assert!(good.validate_against(&g).is_ok());
    }

    #[test]
    fn display_is_readable() {
        let s = Schedule::from_proc_lists(2, vec![ids(&[0, 1]), vec![]]).unwrap();
        let text = s.to_string();
        assert!(text.contains("p0: v0 -> v1"));
        assert!(text.contains("p1: (idle)"));
    }

    #[test]
    fn paper_fig1_schedule_notation() {
        // Fig 1(c): {{(v1,v2),(v2,v4)}, {(v3,v5),(v5,v8)}, {(v6,v7)}, {}}
        // In 0-based ids: p0=[0,1,3], p1=[2,4,7], p2=[5,6], p3=[].
        let s = Schedule::from_proc_lists(
            8,
            vec![ids(&[0, 1, 3]), ids(&[2, 4, 7]), ids(&[5, 6]), vec![]],
        )
        .unwrap();
        assert_eq!(
            s.pairs_on(ProcId(0)),
            vec![(TaskId(0), TaskId(1)), (TaskId(1), TaskId(3))]
        );
        assert_eq!(s.tasks_on(ProcId(3)), &[] as &[TaskId]);
    }
}

//! Chrome-trace export (`chrome://tracing` / Perfetto).
//!
//! Serializes a timed schedule as a Trace Event Format JSON array: one
//! complete ("X") event per task, one thread lane per processor — so any
//! schedule produced by this workspace can be inspected interactively in
//! a trace viewer. Fault and recovery events (see [`crate::recovery`])
//! render as instant ("i") events on their processor lane, making
//! recovered runs inspectable next to the work they disrupted. JSON is
//! built by hand (the event format is trivial and the workspace avoids a
//! JSON dependency).

use rds_platform::ProcId;

use crate::faults::FaultScenario;
use crate::recovery::RecoveryEvent;
use crate::schedule::Schedule;
use crate::timing::TimedSchedule;

/// Escapes JSON-significant characters in task labels: backslash, quote,
/// and every control character below 0x20 (raw control characters are
/// invalid inside JSON strings and break trace viewers).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// An instant marker on the trace timeline (rendered as a Trace Event
/// Format "i" event).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstant {
    /// Marker label.
    pub name: String,
    /// Timestamp in schedule time units.
    pub at: f64,
    /// Processor lane, or `None` for a process-scoped marker.
    pub lane: Option<ProcId>,
}

/// Converts recovery events into trace instants.
#[must_use]
pub fn instants_from_recovery(events: &[RecoveryEvent]) -> Vec<TraceInstant> {
    events
        .iter()
        .map(|e| TraceInstant {
            name: e.label(),
            at: e.at(),
            lane: e.lane(),
        })
        .collect()
}

/// Converts online-controller decisions into trace instants, so
/// admissions, rejections, sheds and drops line up with the executed
/// spans on a stream timeline.
#[must_use]
pub fn instants_from_online(events: &[crate::online::OnlineEvent]) -> Vec<TraceInstant> {
    use crate::online::OnlineEventKind;
    events
        .iter()
        .map(|e| {
            let name = match &e.kind {
                OnlineEventKind::Admitted { probability } => {
                    format!("admit job {} p={probability:.3}", e.job)
                }
                OnlineEventKind::Rejected { probability } => {
                    format!("reject job {} p={probability:.3}", e.job)
                }
                OnlineEventKind::Shed { tasks, after, .. } => {
                    format!("shed {} tasks of job {} p={after:.3}", tasks, e.job)
                }
                OnlineEventKind::Dropped { probability } => {
                    format!("drop job {} p={probability:.3}", e.job)
                }
            };
            TraceInstant {
                name,
                at: e.at,
                lane: None,
            }
        })
        .collect()
}

/// Converts a fault scenario's processor-level faults (failures and
/// slowdown windows) into trace instants, so the injected environment is
/// visible even for runs that completed without recovery actions.
#[must_use]
pub fn instants_from_scenario(scenario: &FaultScenario) -> Vec<TraceInstant> {
    let mut out = Vec::new();
    for f in &scenario.failures {
        out.push(TraceInstant {
            name: format!("fail {}", f.proc),
            at: f.at,
            lane: Some(f.proc),
        });
    }
    for w in &scenario.slowdowns {
        out.push(TraceInstant {
            name: format!("slow x{:.2} start", w.factor),
            at: w.start,
            lane: Some(w.proc),
        });
        out.push(TraceInstant {
            name: format!("slow x{:.2} end", w.factor),
            at: w.end,
            lane: Some(w.proc),
        });
    }
    out
}

/// Renders the Trace Event Format JSON for a timed schedule.
///
/// Times are emitted in microseconds (the format's unit); one schedule
/// time unit maps to 1000 µs so sub-unit starts stay visible.
#[must_use]
pub fn to_chrome_trace(schedule: &Schedule, timed: &TimedSchedule) -> String {
    to_chrome_trace_with_events(schedule, timed, &[])
}

/// [`to_chrome_trace`] plus instant markers (fault injections, recovery
/// actions) interleaved on their processor lanes.
#[must_use]
pub fn to_chrome_trace_with_events(
    schedule: &Schedule,
    timed: &TimedSchedule,
    instants: &[TraceInstant],
) -> String {
    use std::fmt::Write as _;
    const SCALE: f64 = 1000.0;
    let mut out = String::from("[\n");
    let mut first = true;
    for p in 0..schedule.proc_count() {
        // Thread-name metadata event per processor lane.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{p},\
             \"args\":{{\"name\":\"p{p}\"}}}}"
        );
        for &t in schedule.tasks_on(ProcId(p as u32)) {
            let ts = timed.start_of(t) * SCALE;
            let dur = (timed.finish_of(t) - timed.start_of(t)) * SCALE;
            let _ = write!(
                out,
                ",\n  {{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{p},\
                 \"ts\":{ts:.3},\"dur\":{dur:.3}}}",
                esc(&t.to_string())
            );
        }
    }
    for i in instants {
        let ts = i.at * SCALE;
        // Lane-scoped instants use scope "t" (thread); global ones "p".
        let (tid, scope) = match i.lane {
            Some(p) => (p.index(), "t"),
            None => (0, "p"),
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts:.3},\"s\":\"{scope}\"}}",
            esc(&i.name)
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjunctive::DisjunctiveGraph;
    use crate::instance::InstanceSpec;
    use crate::timing::{evaluate_with_durations, expected_durations};

    fn fixture() -> (Schedule, TimedSchedule) {
        let inst = InstanceSpec::new(10, 2).seed(1).build().unwrap();
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..10).map(|i| ProcId((i % 2) as u32)).collect();
        let s = Schedule::from_order_and_assignment(&order, &assignment, 2).unwrap();
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let d = expected_durations(&inst.timing, &s);
        let t = evaluate_with_durations(&ds, &s, &inst.platform, &d);
        (s, t)
    }

    #[test]
    fn trace_contains_every_task_and_lane() {
        let (s, t) = fixture();
        let json = to_chrome_trace(&s, &t);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // One X event per task.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 10);
        // One metadata event per processor.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(json.contains("\"name\":\"v0\""));
        assert!(json.contains("\"args\":{\"name\":\"p1\"}"));
    }

    #[test]
    fn trace_is_structurally_balanced_json() {
        let (s, t) = fixture();
        let json = to_chrome_trace(&s, &t);
        // Braces and brackets balance (a cheap well-formedness check
        // without a JSON parser in the dependency set).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn escaping_handles_control_characters() {
        assert_eq!(esc("a\nb"), "a\\nb");
        assert_eq!(esc("a\tb"), "a\\tb");
        assert_eq!(esc("a\rb"), "a\\rb");
        // Other C0 controls become \u escapes.
        assert_eq!(esc("a\u{0001}b"), "a\\u0001b");
        assert_eq!(esc("bell\u{0007}"), "bell\\u0007");
        // No raw control characters survive.
        for c in ('\u{0000}'..'\u{0020}').map(|c| c.to_string()) {
            assert!(!esc(&format!("x{c}y")).contains(&c));
        }
    }

    #[test]
    fn durations_scale_to_microseconds() {
        let (s, t) = fixture();
        let json = to_chrome_trace(&s, &t);
        // The first task's duration in the JSON equals 1000x its span.
        let task0 = rds_graph::TaskId(0);
        let span = (t.finish_of(task0) - t.start_of(task0)) * 1000.0;
        assert!(json.contains(&format!("\"dur\":{span:.3}")));
    }

    #[test]
    fn instant_events_render_on_their_lanes() {
        let (s, t) = fixture();
        let instants = vec![
            TraceInstant {
                name: "fail p1".into(),
                at: 2.5,
                lane: Some(ProcId(1)),
            },
            TraceInstant {
                name: "replan 4".into(),
                at: 2.5,
                lane: None,
            },
        ];
        let json = to_chrome_trace_with_events(&s, &t, &instants);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
        assert!(json.contains("\"name\":\"fail p1\",\"ph\":\"i\",\"pid\":1,\"tid\":1"));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"s\":\"p\""));
        assert!(json.contains("\"ts\":2500.000"));
        // Still balanced JSON.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn recovery_and_scenario_instants_convert() {
        use crate::faults::{ProcessorFailure, SlowdownWindow};
        use rds_graph::TaskId;
        let events = vec![
            RecoveryEvent::ProcessorFailed {
                proc: ProcId(0),
                at: 1.0,
            },
            RecoveryEvent::TaskRetried {
                task: TaskId(2),
                proc: ProcId(1),
                at: 3.0,
            },
            RecoveryEvent::Replanned { at: 1.0, moved: 5 },
            RecoveryEvent::ReplicaWon {
                task: TaskId(4),
                proc: ProcId(1),
                at: 5.0,
            },
        ];
        let instants = instants_from_recovery(&events);
        assert_eq!(instants.len(), 4);
        assert_eq!(instants[0].lane, Some(ProcId(0)));
        assert_eq!(instants[2].lane, None);
        assert_eq!(instants[3].lane, Some(ProcId(1)));
        assert!(instants[3].name.contains("r-win"));
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(1),
                at: 4.0,
            }],
            slowdowns: vec![SlowdownWindow {
                proc: ProcId(0),
                start: 1.0,
                end: 2.0,
                factor: 2.0,
            }],
            ..FaultScenario::default()
        };
        let env = instants_from_scenario(&scenario);
        // One failure marker + window start/end.
        assert_eq!(env.len(), 3);
        assert!(env.iter().any(|i| i.name.contains("fail")));
        assert!(env.iter().any(|i| i.name.contains("start")));
        assert!(env.iter().any(|i| i.name.contains("end")));
    }

    #[test]
    fn online_events_become_labeled_instants() {
        use crate::online::{OnlineEvent, OnlineEventKind};
        let events = vec![
            OnlineEvent {
                at: 0.0,
                job: 0,
                kind: OnlineEventKind::Admitted { probability: 0.9 },
            },
            OnlineEvent {
                at: 4.0,
                job: 1,
                kind: OnlineEventKind::Rejected { probability: 0.1 },
            },
            OnlineEvent {
                at: 7.0,
                job: 0,
                kind: OnlineEventKind::Shed {
                    tasks: 3,
                    before: 0.2,
                    after: 0.6,
                },
            },
            OnlineEvent {
                at: 9.0,
                job: 2,
                kind: OnlineEventKind::Dropped { probability: 0.05 },
            },
        ];
        let instants = instants_from_online(&events);
        assert_eq!(instants.len(), 4);
        assert!(instants[0].name.contains("admit job 0"));
        assert!(instants[1].name.contains("reject job 1"));
        assert!(instants[2].name.contains("shed 3 tasks"));
        assert!(instants[3].name.contains("drop job 2"));
        assert!(instants.iter().all(|i| i.lane.is_none()));
        assert_eq!(instants[1].at, 4.0);
    }
}

//! Chrome-trace export (`chrome://tracing` / Perfetto).
//!
//! Serializes a timed schedule as a Trace Event Format JSON array: one
//! complete ("X") event per task, one thread lane per processor — so any
//! schedule produced by this workspace can be inspected interactively in
//! a trace viewer. JSON is built by hand (the event format is trivial and
//! the workspace avoids a JSON dependency).

use rds_platform::ProcId;

use crate::schedule::Schedule;
use crate::timing::TimedSchedule;

/// Escapes the few JSON-significant characters task labels can contain.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the Trace Event Format JSON for a timed schedule.
///
/// Times are emitted in microseconds (the format's unit); one schedule
/// time unit maps to 1000 µs so sub-unit starts stay visible.
#[must_use]
pub fn to_chrome_trace(schedule: &Schedule, timed: &TimedSchedule) -> String {
    use std::fmt::Write as _;
    const SCALE: f64 = 1000.0;
    let mut out = String::from("[\n");
    let mut first = true;
    for p in 0..schedule.proc_count() {
        // Thread-name metadata event per processor lane.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{p},\
             \"args\":{{\"name\":\"p{p}\"}}}}"
        );
        for &t in schedule.tasks_on(ProcId(p as u32)) {
            let ts = timed.start_of(t) * SCALE;
            let dur = (timed.finish_of(t) - timed.start_of(t)) * SCALE;
            let _ = write!(
                out,
                ",\n  {{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{p},\
                 \"ts\":{ts:.3},\"dur\":{dur:.3}}}",
                esc(&t.to_string())
            );
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjunctive::DisjunctiveGraph;
    use crate::instance::InstanceSpec;
    use crate::timing::{evaluate_with_durations, expected_durations};

    fn fixture() -> (Schedule, TimedSchedule) {
        let inst = InstanceSpec::new(10, 2).seed(1).build().unwrap();
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..10).map(|i| ProcId((i % 2) as u32)).collect();
        let s = Schedule::from_order_and_assignment(&order, &assignment, 2).unwrap();
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let d = expected_durations(&inst.timing, &s);
        let t = evaluate_with_durations(&ds, &s, &inst.platform, &d);
        (s, t)
    }

    #[test]
    fn trace_contains_every_task_and_lane() {
        let (s, t) = fixture();
        let json = to_chrome_trace(&s, &t);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // One X event per task.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 10);
        // One metadata event per processor.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(json.contains("\"name\":\"v0\""));
        assert!(json.contains("\"args\":{\"name\":\"p1\"}"));
    }

    #[test]
    fn trace_is_structurally_balanced_json() {
        let (s, t) = fixture();
        let json = to_chrome_trace(&s, &t);
        // Braces and brackets balance (a cheap well-formedness check
        // without a JSON parser in the dependency set).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn durations_scale_to_microseconds() {
        let (s, t) = fixture();
        let json = to_chrome_trace(&s, &t);
        // The first task's duration in the JSON equals 1000x its span.
        let task0 = rds_graph::TaskId(0);
        let span = (t.finish_of(task0) - t.start_of(task0)) * 1000.0;
        assert!(json.contains(&format!("\"dur\":{span:.3}")));
    }
}

//! Proactive replication: placing redundant task copies in slack windows.
//!
//! The paper's slack theory (Definition 3.3, Theorem 3.4) identifies where a
//! schedule can absorb extra work for free: wherever the disjunctive graph
//! `G_s` leaves a processor idle, running something there cannot extend the
//! makespan as long as the primary timeline is untouched. This module
//! exploits that observation *proactively*: given a static schedule, it
//! computes the expected timeline, enumerates the **idle gaps** of every
//! processor, and places replicas of critical or failure-prone tasks into
//! those gaps on processors *other than* their primary host.
//!
//! Replicas obey two planning constraints that make them free insurance:
//!
//! 1. **Gap fit** — a replica's planned window lies entirely inside an idle
//!    gap of the expected timeline, so in expectation it displaces nothing.
//! 2. **Insurance constraint** — a replica's planned finish is at least its
//!    primary's expected finish. Combined with the executor's
//!    first-finisher-wins semantics (primary wins ties), the fault-free run
//!    is *bit-identical* to the primary-only run: `M₀` is unchanged.
//!
//! At runtime (see [`crate::recovery::execute_replicated`]) the first copy
//! of a task to finish defines the task's completion; a replica therefore
//! only helps — it rescues tasks stranded on failed processors, races
//! stragglers, and survives transient crashes of the primary attempt.
//!
//! Three placement policies order the candidates:
//!
//! * [`PlacementPolicy::CriticalPathFirst`] — smallest slack first: the
//!   tasks whose delay immediately extends the makespan;
//! * [`PlacementPolicy::MostFragileFirst`] — latest expected finish first:
//!   the tasks exposed the longest to processor failures;
//! * [`PlacementPolicy::RandomBaseline`] — a seeded shuffle, the control
//!   arm for the placement studies.

use rand::Rng;
use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_stats::rng::rng_from_seed;

use crate::disjunctive::{CycleError, DisjunctiveGraph};
use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::slack;
use crate::timing;

/// How replica candidates are prioritized under the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Replicate tasks in ascending slack order (critical tasks first).
    #[default]
    CriticalPathFirst,
    /// Replicate tasks in descending expected-finish order — the tasks
    /// whose completion is exposed to failures for the longest.
    MostFragileFirst,
    /// Seeded random order; the control baseline for placement studies.
    RandomBaseline,
}

impl PlacementPolicy {
    /// Stable label used in figures and traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::CriticalPathFirst => "critical-first",
            Self::MostFragileFirst => "fragile-first",
            Self::RandomBaseline => "random",
        }
    }

    /// All policies, informed-to-baseline order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [
            Self::CriticalPathFirst,
            Self::MostFragileFirst,
            Self::RandomBaseline,
        ]
    }

    /// Parses a label (as accepted by the experiment CLI).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "critical" | "critical-first" => Some(Self::CriticalPathFirst),
            "fragile" | "fragile-first" => Some(Self::MostFragileFirst),
            "random" => Some(Self::RandomBaseline),
            _ => None,
        }
    }
}

/// Replication tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationConfig {
    /// Replica budget as a fraction of the task count: at most
    /// `ceil(budget · n)` replicas are placed (0 disables replication).
    pub budget: f64,
    /// Candidate prioritization.
    pub policy: PlacementPolicy,
    /// Maximum replicas per task (distinct processors).
    pub max_replicas_per_task: usize,
    /// Seed for [`PlacementPolicy::RandomBaseline`]'s shuffle.
    pub seed: u64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            budget: 0.5,
            policy: PlacementPolicy::CriticalPathFirst,
            max_replicas_per_task: 1,
            seed: 0,
        }
    }
}

impl ReplicationConfig {
    /// Config with the given budget, default policy.
    #[must_use]
    pub fn with_budget(budget: f64) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }

    /// Sets the placement policy.
    #[must_use]
    pub fn policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the shuffle seed (random baseline only).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(
            self.budget.is_finite() && self.budget >= 0.0,
            "replication budget must be finite and non-negative, got {}",
            self.budget
        );
    }
}

/// One planned replica: a redundant copy of `task` on `proc`, scheduled to
/// occupy `[start, finish]` of the expected timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replica {
    /// The replicated task.
    pub task: TaskId,
    /// Host processor (never the task's primary processor).
    pub proc: ProcId,
    /// Planned start on the expected timeline; the executor never starts a
    /// replica earlier than this.
    pub start: f64,
    /// Planned finish (`start` + expected duration on `proc`); at least the
    /// primary's expected finish (insurance constraint).
    pub finish: f64,
}

/// A full replica placement for one schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplicaPlan {
    replicas: Vec<Replica>,
    by_task: Vec<Vec<usize>>,
    expected_makespan: f64,
}

impl ReplicaPlan {
    /// The empty plan (no replicas) for `task_count` tasks — the
    /// no-replication baseline.
    #[must_use]
    pub fn empty(task_count: usize) -> Self {
        Self {
            replicas: Vec::new(),
            by_task: vec![Vec::new(); task_count],
            expected_makespan: 0.0,
        }
    }

    /// All planned replicas.
    #[must_use]
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Number of replicas placed.
    #[must_use]
    pub fn count(&self) -> usize {
        self.replicas.len()
    }

    /// `true` when no replica was placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Indices (into [`ReplicaPlan::replicas`]) of `t`'s replicas.
    #[must_use]
    pub fn replicas_of(&self, t: TaskId) -> &[usize] {
        &self.by_task[t.index()]
    }

    /// Expected makespan `M₀` of the underlying schedule (the planner's
    /// timeline the gaps were carved from).
    #[must_use]
    pub fn expected_makespan(&self) -> f64 {
        self.expected_makespan
    }

    /// Total planned replica work (sum of expected replica durations).
    #[must_use]
    pub fn planned_work(&self) -> f64 {
        self.replicas.iter().map(|r| r.finish - r.start).sum()
    }
}

/// An idle window of one processor on the expected timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleGap {
    /// Gap start.
    pub start: f64,
    /// Gap end (`f64::INFINITY` for the trailing gap after the last task).
    pub end: f64,
}

/// Enumerates the idle gaps of every processor on the expected timeline:
/// before the first task, between consecutive tasks, and the unbounded
/// trailing gap after the last one.
#[must_use]
pub fn idle_gaps(
    schedule: &Schedule,
    timed: &timing::TimedSchedule,
    procs: usize,
) -> Vec<Vec<IdleGap>> {
    let mut gaps: Vec<Vec<IdleGap>> = Vec::with_capacity(procs);
    for p in 0..procs {
        let mut proc_gaps = Vec::new();
        let mut cur = 0.0_f64;
        for &t in schedule.tasks_on(ProcId(p as u32)) {
            let s = timed.start_of(t);
            if s > cur {
                proc_gaps.push(IdleGap { start: cur, end: s });
            }
            cur = cur.max(timed.finish_of(t));
        }
        proc_gaps.push(IdleGap {
            start: cur,
            end: f64::INFINITY,
        });
        gaps.push(proc_gaps);
    }
    gaps
}

/// Plans replicas for `schedule` under `cfg`.
///
/// The planner evaluates the expected timeline, carves out every
/// processor's idle gaps, orders the tasks by the placement policy and
/// greedily assigns each candidate a replica on the processor (excluding
/// its primary host and hosts of its earlier replicas) where the replica's
/// planned finish is earliest — subject to the gap-fit and insurance
/// constraints documented at the module level. Placement mutates the gap
/// set, so replicas on one processor never overlap each other.
///
/// # Errors
/// Returns [`CycleError`] when the schedule is incompatible with the
/// instance's graph.
///
/// # Panics
/// Panics when `cfg.budget` is negative or non-finite.
pub fn plan_replicas(
    inst: &Instance,
    schedule: &Schedule,
    cfg: &ReplicationConfig,
) -> Result<ReplicaPlan, CycleError> {
    cfg.validate();
    let n = inst.task_count();
    let m = inst.proc_count();
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    let durations = timing::expected_durations(&inst.timing, schedule);
    let analysis = slack::analyze(&ds, schedule, &inst.platform, &durations);
    let timed = timing::evaluate_with_durations(&ds, schedule, &inst.platform, &durations);

    let mut plan = ReplicaPlan {
        replicas: Vec::new(),
        by_task: vec![Vec::new(); n],
        expected_makespan: analysis.makespan,
    };
    let cap = (cfg.budget * n as f64).ceil() as usize;
    if cap == 0 || m < 2 || n == 0 {
        return Ok(plan);
    }

    let candidates = candidate_order(cfg, &analysis, &timed, &durations);
    let mut gaps = idle_gaps(schedule, &timed, m);

    for &t in &candidates {
        if plan.replicas.len() >= cap {
            break;
        }
        let quota = cfg
            .max_replicas_per_task
            .min(cap - plan.replicas.len())
            .min(m - 1);
        for _ in 0..quota {
            let Some((proc, start, finish, gap_idx)) =
                best_placement(inst, schedule, &timed, &gaps, &plan, t)
            else {
                break; // no processor fits another copy of t
            };
            split_gap(&mut gaps[proc.index()], gap_idx, start, finish);
            let ri = plan.replicas.len();
            plan.replicas.push(Replica {
                task: t,
                proc,
                start,
                finish,
            });
            plan.by_task[t.index()].push(ri);
        }
    }
    Ok(plan)
}

/// Tasks in the order the policy wants them replicated.
fn candidate_order(
    cfg: &ReplicationConfig,
    analysis: &slack::SlackAnalysis,
    timed: &timing::TimedSchedule,
    durations: &[f64],
) -> Vec<TaskId> {
    let n = durations.len();
    let mut order: Vec<TaskId> = (0..n).map(|i| TaskId(i as u32)).collect();
    match cfg.policy {
        PlacementPolicy::CriticalPathFirst => {
            order.sort_by(|a, b| {
                analysis.slack[a.index()]
                    .total_cmp(&analysis.slack[b.index()])
                    .then(durations[b.index()].total_cmp(&durations[a.index()]))
                    .then(a.cmp(b))
            });
        }
        PlacementPolicy::MostFragileFirst => {
            order.sort_by(|a, b| {
                timed.finish[b.index()]
                    .total_cmp(&timed.finish[a.index()])
                    .then(durations[b.index()].total_cmp(&durations[a.index()]))
                    .then(a.cmp(b))
            });
        }
        PlacementPolicy::RandomBaseline => {
            let mut rng = rng_from_seed(cfg.seed);
            // Fisher–Yates, same idiom as the GA's selection shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
        }
    }
    order
}

/// The feasible placement of one more replica of `t` with the earliest
/// planned finish: `(proc, start, finish, gap index)`.
fn best_placement(
    inst: &Instance,
    schedule: &Schedule,
    timed: &timing::TimedSchedule,
    gaps: &[Vec<IdleGap>],
    plan: &ReplicaPlan,
    t: TaskId,
) -> Option<(ProcId, f64, f64, usize)> {
    let primary = schedule.proc_of(t);
    let primary_finish = timed.finish_of(t);
    let mut best: Option<(ProcId, f64, f64, usize)> = None;
    for p in 0..inst.proc_count() {
        let proc = ProcId(p as u32);
        if proc == primary
            || plan.by_task[t.index()]
                .iter()
                .any(|&ri| plan.replicas[ri].proc == proc)
        {
            continue;
        }
        // Data from the primary locations of the predecessors.
        let mut ready = 0.0_f64;
        for e in inst.graph.predecessors(t) {
            let arrive = timed.finish_of(e.task)
                + inst
                    .platform
                    .comm_time(e.data, schedule.proc_of(e.task), proc);
            if arrive > ready {
                ready = arrive;
            }
        }
        let d = inst.timing.expected(t.index(), proc);
        for (gi, gap) in gaps[p].iter().enumerate() {
            let mut s = gap.start.max(ready);
            let mut fin = s + d;
            // Insurance constraint: the replica must not be able to beat
            // its primary in the fault-free run. Nudge the start up until
            // the planned finish is at least the primary's expected finish
            // (a plain `primary_finish - d` can round a hair short).
            if fin < primary_finish {
                s = (primary_finish - d).max(s);
                fin = s + d;
                while fin < primary_finish {
                    s += (primary_finish - fin).max(primary_finish.abs() * f64::EPSILON);
                    fin = s + d;
                }
            }
            if fin <= gap.end {
                let better =
                    best.is_none_or(|(bp, _, bfin, _)| fin < bfin || (fin == bfin && proc < bp));
                if better {
                    best = Some((proc, s, fin, gi));
                }
                break; // later gaps on p only finish later
            }
        }
    }
    best
}

/// Removes `[start, finish]` from gap `gi`, keeping the non-degenerate
/// remainders.
fn split_gap(gaps: &mut Vec<IdleGap>, gi: usize, start: f64, finish: f64) {
    let gap = gaps.remove(gi);
    let mut insert_at = gi;
    if start > gap.start {
        gaps.insert(
            insert_at,
            IdleGap {
                start: gap.start,
                end: start,
            },
        );
        insert_at += 1;
    }
    if finish < gap.end {
        gaps.insert(
            insert_at,
            IdleGap {
                start: finish,
                end: gap.end,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(30, 4)
            .seed(seed)
            .uncertainty_level(4.0)
            .build()
            .unwrap()
    }

    fn round_robin(i: &Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&i.graph).unwrap();
        let m = i.proc_count();
        let assignment: Vec<ProcId> = (0..i.task_count())
            .map(|t| ProcId((t % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    #[test]
    fn zero_budget_places_nothing() {
        let i = inst(1);
        let s = round_robin(&i);
        let plan = plan_replicas(&i, &s, &ReplicationConfig::with_budget(0.0)).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.count(), 0);
    }

    #[test]
    fn budget_caps_replica_count() {
        let i = inst(2);
        let s = round_robin(&i);
        for budget in [0.1, 0.3, 1.0] {
            let plan = plan_replicas(&i, &s, &ReplicationConfig::with_budget(budget)).unwrap();
            let cap = (budget * i.task_count() as f64).ceil() as usize;
            assert!(plan.count() <= cap, "{} replicas > cap {cap}", plan.count());
        }
    }

    #[test]
    fn replicas_avoid_primary_processor_and_duplicates() {
        let i = inst(3);
        let s = round_robin(&i);
        let cfg = ReplicationConfig {
            budget: 1.0,
            max_replicas_per_task: 2,
            ..ReplicationConfig::default()
        };
        let plan = plan_replicas(&i, &s, &cfg).unwrap();
        assert!(!plan.is_empty());
        for r in plan.replicas() {
            assert_ne!(r.proc, s.proc_of(r.task), "replica on primary proc");
        }
        for t in i.graph.tasks() {
            let procs: Vec<ProcId> = plan
                .replicas_of(t)
                .iter()
                .map(|&ri| plan.replicas()[ri].proc)
                .collect();
            let mut uniq = procs.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), procs.len(), "{t} replicated twice on one proc");
        }
    }

    #[test]
    fn insurance_constraint_holds() {
        let i = inst(4);
        let s = round_robin(&i);
        let ds = DisjunctiveGraph::build(&i.graph, &s).unwrap();
        let durations = timing::expected_durations(&i.timing, &s);
        let timed = timing::evaluate_with_durations(&ds, &s, &i.platform, &durations);
        for policy in PlacementPolicy::all() {
            let cfg = ReplicationConfig::with_budget(1.0).policy(policy);
            let plan = plan_replicas(&i, &s, &cfg).unwrap();
            for r in plan.replicas() {
                assert!(
                    r.finish >= timed.finish_of(r.task),
                    "{policy:?}: replica of {} plans to finish at {} before primary {}",
                    r.task,
                    r.finish,
                    timed.finish_of(r.task)
                );
            }
        }
    }

    #[test]
    fn replica_windows_fit_idle_gaps_without_overlap() {
        let i = inst(5);
        let s = round_robin(&i);
        let ds = DisjunctiveGraph::build(&i.graph, &s).unwrap();
        let durations = timing::expected_durations(&i.timing, &s);
        let timed = timing::evaluate_with_durations(&ds, &s, &i.platform, &durations);
        let plan = plan_replicas(&i, &s, &ReplicationConfig::with_budget(1.0)).unwrap();
        // Collect per-processor busy spans: primaries plus replicas.
        for p in 0..i.proc_count() {
            let mut spans: Vec<(f64, f64)> = s
                .tasks_on(ProcId(p as u32))
                .iter()
                .map(|&t| (timed.start_of(t), timed.finish_of(t)))
                .collect();
            spans.extend(
                plan.replicas()
                    .iter()
                    .filter(|r| r.proc.index() == p)
                    .map(|r| (r.start, r.finish)),
            );
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-9,
                    "overlap on proc {p}: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn policies_are_deterministic_and_random_depends_on_seed() {
        let i = inst(6);
        let s = round_robin(&i);
        let cfg = ReplicationConfig::with_budget(0.4);
        let a = plan_replicas(&i, &s, &cfg).unwrap();
        let b = plan_replicas(&i, &s, &cfg).unwrap();
        assert_eq!(a, b);
        let r1 = plan_replicas(
            &i,
            &s,
            &ReplicationConfig::with_budget(0.4)
                .policy(PlacementPolicy::RandomBaseline)
                .seed(1),
        )
        .unwrap();
        let r2 = plan_replicas(
            &i,
            &s,
            &ReplicationConfig::with_budget(0.4)
                .policy(PlacementPolicy::RandomBaseline)
                .seed(1),
        )
        .unwrap();
        assert_eq!(r1, r2, "same seed must reproduce the shuffle");
    }

    #[test]
    fn critical_first_prefers_low_slack_tasks() {
        let i = inst(7);
        let s = round_robin(&i);
        let analysis = slack::analyze_expected(&i, &s).unwrap();
        let cfg = ReplicationConfig::with_budget(0.2); // few replicas
        let plan = plan_replicas(&i, &s, &cfg).unwrap();
        assert!(!plan.is_empty());
        // The mean slack of the replicated tasks must not exceed the mean
        // slack over all tasks — the policy front-loads critical work.
        let picked: f64 = plan
            .replicas()
            .iter()
            .map(|r| analysis.slack_of(r.task))
            .sum::<f64>()
            / plan.count() as f64;
        assert!(
            picked <= analysis.average_slack + 1e-9,
            "critical-first picked mean slack {picked} > average {}",
            analysis.average_slack
        );
    }

    #[test]
    fn idle_gaps_cover_the_complement_of_busy_time() {
        let i = inst(8);
        let s = round_robin(&i);
        let ds = DisjunctiveGraph::build(&i.graph, &s).unwrap();
        let durations = timing::expected_durations(&i.timing, &s);
        let timed = timing::evaluate_with_durations(&ds, &s, &i.platform, &durations);
        let gaps = idle_gaps(&s, &timed, i.proc_count());
        for (p, proc_gaps) in gaps.iter().enumerate() {
            assert!(proc_gaps.last().unwrap().end.is_infinite());
            for g in proc_gaps {
                assert!(g.end > g.start);
                // No primary task may overlap a gap.
                for &t in s.tasks_on(ProcId(p as u32)) {
                    let (ts, tf) = (timed.start_of(t), timed.finish_of(t));
                    assert!(
                        tf <= g.start + 1e-9 || ts >= g.end - 1e-9,
                        "task {t} [{ts},{tf}] overlaps gap [{},{}] on {p}",
                        g.start,
                        g.end
                    );
                }
            }
        }
    }

    #[test]
    fn parse_labels_round_trip() {
        for policy in PlacementPolicy::all() {
            assert_eq!(PlacementPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(PlacementPolicy::parse("nope"), None);
    }
}

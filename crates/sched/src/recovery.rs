//! Recovery policies: executing a schedule through a fault scenario.
//!
//! [`execute_with_faults`] is a discrete-event executor that replays a
//! static schedule against one realization's durations *and* one
//! [`FaultScenario`](crate::faults::FaultScenario), reacting according to a
//! pluggable [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::FailStop`] — no recovery; any permanent failure or
//!   task crash that touches unfinished work fails the realization. This
//!   measures the *raw damage* a fault regime inflicts.
//! * [`RecoveryPolicy::RetrySameProc`] — transient task crashes are
//!   re-executed on the same processor after a backoff delay; permanent
//!   failures are still fatal.
//! * [`RecoveryPolicy::MigrateReplan`] — on a permanent failure, the
//!   unstarted remainder of the DAG is re-planned over the surviving
//!   processors with a HEFT-style earliest-finish-time pass (the same
//!   upward-rank + EFT mathematics as `rds-heft`, recomputed here because
//!   `rds-heft` sits *above* this crate in the dependency graph; the
//!   public partial-graph entry point lives in `rds_heft::reschedule`).
//!
//! [`execute_replicated`] extends the executor with the two *proactive*
//! knobs of [`crate::replication`]:
//!
//! * **Replication, first-finisher-wins.** Replicas planned into idle slack
//!   windows dispatch only on idle processors whose own queue head is not
//!   ready, never earlier than their planned start. The first copy of a
//!   task to finish defines the task's completion (ties go to the primary);
//!   the losing copy's effort is charged to
//!   [`RecoveryStats::duplicate_work`]. A dispensable running replica is
//!   killed the moment it would delay a ready primary, so primaries are
//!   never delayed and the fault-free run is bit-identical to the
//!   primary-only run. When a primary copy is permanently lost (its host
//!   died with it queued, or it crashed under a no-retry policy) its
//!   surviving replicas are **promoted**: they become indispensable and
//!   carry the task alone.
//! * **Checkpoint/restart.** With a [`CheckpointConfig`], primary attempts
//!   checkpoint every `interval` fraction of their duration (paying
//!   `overhead` extra time per checkpoint) and restart from the last
//!   checkpoint instead of from scratch after a crash or abort
//!   (shared-storage model: a migrated task resumes its preserved fraction
//!   on the new host). Replicas never checkpoint.
//!
//! Semantics, fixed for all policies:
//!
//! * tasks already **finished** are never re-executed;
//! * a task **running** on a healthy processor is never migrated;
//! * a task running on a processor at its failure instant is lost and
//!   (under `MigrateReplan`) re-planned from scratch elsewhere;
//! * slowdown windows and stragglers merely stretch durations — they never
//!   fail a realization under any policy (stragglers stretch the *primary*
//!   attempt only; replicas draw their own durations);
//! * the executor is deterministic: all randomness lives in the realized
//!   duration matrix, the fault scenario and the replica draws.

use std::collections::VecDeque;
use std::fmt;

use rds_graph::TaskId;
use rds_platform::{Availability, ProcId};
use rds_stats::matrix::Matrix;

use crate::faults::{advance_through, FaultScenario, ReplicaDraws};
use crate::instance::Instance;
use crate::replication::ReplicaPlan;
use crate::schedule::Schedule;

/// How the executor reacts to faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecoveryPolicy {
    /// No recovery: permanent failures and task crashes fail the run.
    FailStop,
    /// Retry crashed tasks in place with backoff; failures remain fatal.
    RetrySameProc,
    /// Retry crashes in place *and* replan the unstarted subgraph onto
    /// surviving processors when a processor dies.
    #[default]
    MigrateReplan,
}

impl RecoveryPolicy {
    /// Stable label used in figures and traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::FailStop => "fail-stop",
            Self::RetrySameProc => "retry-same",
            Self::MigrateReplan => "migrate-replan",
        }
    }

    /// All policies, in damage-to-resilience order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::FailStop, Self::RetrySameProc, Self::MigrateReplan]
    }
}

/// Checkpoint/restart tuning: periodic checkpoints with a
/// resume-from-fraction cost model.
///
/// A checkpointing attempt of base duration `b` takes
/// `b · (1 + overhead · k)` where `k = ⌈1/interval⌉ − 1` is the number of
/// checkpoints taken; after a crash or abort the fraction
/// `⌊f/interval⌋ · interval` of the attempt is preserved and only the
/// remainder re-executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointConfig {
    /// Fraction of an attempt between checkpoints, in `(0, 1]`.
    pub interval: f64,
    /// Fractional duration overhead per checkpoint (`≥ 0`).
    pub overhead: f64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            interval: 0.25,
            overhead: 0.02,
        }
    }
}

impl CheckpointConfig {
    /// A validated config.
    ///
    /// # Errors
    /// Returns [`ExecutionError::BadCheckpoint`] when `interval` is outside
    /// `(0, 1]` or `overhead` is negative or non-finite.
    pub fn new(interval: f64, overhead: f64) -> Result<Self, ExecutionError> {
        let cfg = Self { interval, overhead };
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), ExecutionError> {
        if !(self.interval > 0.0 && self.interval <= 1.0)
            || !(self.overhead >= 0.0 && self.overhead.is_finite())
        {
            return Err(ExecutionError::BadCheckpoint {
                interval: self.interval,
                overhead: self.overhead,
            });
        }
        Ok(())
    }

    /// Checkpoints taken during a full attempt.
    #[must_use]
    pub fn count(&self) -> f64 {
        ((1.0 / self.interval).ceil() - 1.0).max(0.0)
    }

    /// Duration inflation factor of a checkpointing attempt.
    #[must_use]
    pub fn inflate(&self) -> f64 {
        1.0 + self.overhead * self.count()
    }

    /// Fraction of an attempt preserved when it dies at `fraction`.
    #[must_use]
    pub fn preserved(&self, fraction: f64) -> f64 {
        ((fraction / self.interval).floor() * self.interval).clamp(0.0, 1.0)
    }
}

/// Recovery tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// The policy.
    pub policy: RecoveryPolicy,
    /// Backoff before retrying a crashed task, as a fraction of the task's
    /// expected duration on its processor (doubled per extra retry).
    pub backoff: f64,
    /// Maximum retries per task (transient crashes occur once per task, so
    /// 1 suffices; 0 turns `RetrySameProc` into `FailStop` for crashes).
    pub max_retries: u32,
    /// Optional checkpoint/restart of primary attempts.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            policy: RecoveryPolicy::MigrateReplan,
            backoff: 0.25,
            max_retries: 3,
            checkpoint: None,
        }
    }
}

impl RecoveryConfig {
    /// Config for `policy` with default knobs.
    #[must_use]
    pub fn new(policy: RecoveryPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Enables checkpoint/restart.
    #[must_use]
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }
}

/// A malformed input that would previously have crashed the executor.
///
/// These are *caller* errors (wrong matrix shape, draws that do not match
/// the plan) or internal invariant breaches surfaced as values instead of
/// panics, so a bad schedule can never take down a whole Monte Carlo
/// sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionError {
    /// `durations` is not `tasks × procs`.
    DurationShape {
        /// Rows provided.
        rows: usize,
        /// Columns provided.
        cols: usize,
        /// Tasks expected.
        tasks: usize,
        /// Processors expected.
        procs: usize,
    },
    /// The replica draws do not align with the replica plan.
    ReplicaDrawMismatch {
        /// Replicas in the plan.
        replicas: usize,
        /// Draws provided.
        draws: usize,
    },
    /// A replica references a task or processor outside the instance.
    ReplicaOutOfRange {
        /// Replica index in the plan.
        index: usize,
    },
    /// Invalid checkpoint parameters.
    BadCheckpoint {
        /// Offending interval.
        interval: f64,
        /// Offending overhead.
        overhead: f64,
    },
    /// An executor invariant broke (a bug, reported instead of panicking).
    Internal(&'static str),
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::DurationShape {
                rows,
                cols,
                tasks,
                procs,
            } => write!(f, "durations must be {tasks}x{procs}, got {rows}x{cols}"),
            Self::ReplicaDrawMismatch { replicas, draws } => {
                write!(f, "{draws} replica draws for a plan of {replicas} replicas")
            }
            Self::ReplicaOutOfRange { index } => {
                write!(f, "replica {index} references an unknown task or processor")
            }
            Self::BadCheckpoint { interval, overhead } => write!(
                f,
                "checkpoint interval must lie in (0,1] and overhead be \
                 non-negative, got interval {interval}, overhead {overhead}"
            ),
            Self::Internal(msg) => write!(f, "executor invariant broken: {msg}"),
        }
    }
}

impl std::error::Error for ExecutionError {}

/// Why a realization failed to complete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailReason {
    /// A processor with unfinished work died and neither the policy nor a
    /// surviving replica can absorb it.
    ProcessorLost(ProcId),
    /// A task crashed and the policy cannot retry (or retries exhausted)
    /// and no surviving replica carries it.
    TaskCrashed(TaskId),
    /// Every processor died before the DAG completed (`MigrateReplan` only;
    /// the generator's survivor rule makes this unreachable for generated
    /// scenarios, but hand-built ones may trigger it).
    NoProcessorsLeft,
}

/// Outcome of executing one realization through a fault scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// All tasks finished; the realized makespan.
    Completed {
        /// The realized makespan.
        makespan: f64,
    },
    /// The run aborted at `at`.
    Failed {
        /// When the run was declared failed.
        at: f64,
        /// Why it failed.
        reason: FailReason,
    },
}

impl Outcome {
    /// The makespan when completed.
    #[must_use]
    pub fn makespan(&self) -> Option<f64> {
        match *self {
            Self::Completed { makespan } => Some(makespan),
            Self::Failed { .. } => None,
        }
    }
}

/// Recovery effort spent during one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Number of replans triggered by permanent failures.
    pub replans: usize,
    /// Number of task retries after transient crashes.
    pub retries: usize,
    /// Work (in time units at full speed) lost to aborts and crashes.
    pub lost_work: f64,
    /// Total backoff delay inserted before retries.
    pub backoff_delay: f64,
    /// Replica executions started.
    pub replica_starts: usize,
    /// Tasks completed by a replica before (or instead of) their primary.
    pub replica_wins: usize,
    /// Total time consumed by replica executions (complete or partial).
    pub replica_work: f64,
    /// Wasted duplicate work: effort spent on copies that did not define
    /// their task's completion (killed replicas, redundant primaries).
    pub duplicate_work: f64,
    /// Replicas promoted to sole surviving copy of their task.
    pub promotions: usize,
    /// Extra execution time paid for taking checkpoints.
    pub checkpoint_overhead: f64,
    /// Work preserved by checkpoints across crashes and aborts.
    pub saved_work: f64,
    /// Sentinel trigger firings (overruns beyond the slack threshold).
    pub sentinel_fires: usize,
    /// Replans initiated by the sentinel (excludes failure-forced replans).
    pub sentinel_replans: usize,
    /// Speculative replica armings requested by the sentinel.
    pub speculations: usize,
    /// Optional tasks dropped under graceful degradation.
    pub dropped_tasks: usize,
    /// Total weight of the dropped tasks.
    pub dropped_weight: f64,
}

impl RecoveryStats {
    /// Accumulates another run's stats (used by the Monte Carlo
    /// aggregation).
    pub fn absorb(&mut self, other: &Self) {
        self.replans += other.replans;
        self.retries += other.retries;
        self.lost_work += other.lost_work;
        self.backoff_delay += other.backoff_delay;
        self.replica_starts += other.replica_starts;
        self.replica_wins += other.replica_wins;
        self.replica_work += other.replica_work;
        self.duplicate_work += other.duplicate_work;
        self.promotions += other.promotions;
        self.checkpoint_overhead += other.checkpoint_overhead;
        self.saved_work += other.saved_work;
        self.sentinel_fires += other.sentinel_fires;
        self.sentinel_replans += other.sentinel_replans;
        self.speculations += other.speculations;
        self.dropped_tasks += other.dropped_tasks;
        self.dropped_weight += other.dropped_weight;
    }
}

/// A timestamped recovery event, for traces and debugging.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// Processor `proc` died at `at`.
    ProcessorFailed {
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// `task` was running on `proc` when it died; its work is lost.
    TaskAborted {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// `task`'s first attempt on `proc` crashed at `at`.
    TaskCrashed {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// `task` restarted on `proc` at `at` (after backoff).
    TaskRetried {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// The unstarted subgraph (`moved` tasks) was re-planned at `at`.
    Replanned {
        /// Time.
        at: f64,
        /// Number of tasks whose queue slot changed.
        moved: usize,
    },
    /// A replica of `task` started executing on `proc` at `at`.
    ReplicaStarted {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// A replica of `task` on `proc` finished first and defined the task's
    /// completion.
    ReplicaWon {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// A replica of `task` on `proc` died at `at` (killed to make way for
    /// a primary, lost with its processor, or crashed).
    ReplicaKilled {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// A replica of `task` on `proc` became the sole surviving copy.
    ReplicaPromoted {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// The sentinel detected that `task` finished `lateness` beyond its
    /// planned finish, consuming more than the trigger fraction of its
    /// slack account.
    SentinelFired {
        /// The overrunning task.
        task: TaskId,
        /// Time.
        at: f64,
        /// Realized finish minus planned finish.
        lateness: f64,
        /// The task's slack account at the firing.
        slack: f64,
    },
    /// The sentinel re-planned the unstarted subgraph (`moved` tasks).
    SentinelReplanned {
        /// Time.
        at: f64,
        /// Number of tasks re-queued.
        moved: usize,
    },
    /// The sentinel armed the pending replicas of `task` for speculation.
    SpeculationArmed {
        /// The speculated task.
        task: TaskId,
        /// Time.
        at: f64,
    },
    /// `task` (marked optional) was dropped under graceful degradation.
    TaskDropped {
        /// The dropped task.
        task: TaskId,
        /// Time.
        at: f64,
    },
    /// Minimum remaining slack over the unfinished subgraph, sampled at
    /// each sentinel firing.
    SlackSnapshot {
        /// Time.
        at: f64,
        /// Minimum slack account over unfinished tasks (0 when none
        /// remain).
        min_slack: f64,
    },
}

impl RecoveryEvent {
    /// Event timestamp.
    #[must_use]
    pub fn at(&self) -> f64 {
        match *self {
            Self::ProcessorFailed { at, .. }
            | Self::TaskAborted { at, .. }
            | Self::TaskCrashed { at, .. }
            | Self::TaskRetried { at, .. }
            | Self::Replanned { at, .. }
            | Self::ReplicaStarted { at, .. }
            | Self::ReplicaWon { at, .. }
            | Self::ReplicaKilled { at, .. }
            | Self::ReplicaPromoted { at, .. }
            | Self::SentinelFired { at, .. }
            | Self::SentinelReplanned { at, .. }
            | Self::SpeculationArmed { at, .. }
            | Self::TaskDropped { at, .. }
            | Self::SlackSnapshot { at, .. } => at,
        }
    }

    /// The processor lane the event belongs to, when it has one.
    #[must_use]
    pub fn lane(&self) -> Option<ProcId> {
        match *self {
            Self::ProcessorFailed { proc, .. }
            | Self::TaskAborted { proc, .. }
            | Self::TaskCrashed { proc, .. }
            | Self::TaskRetried { proc, .. }
            | Self::ReplicaStarted { proc, .. }
            | Self::ReplicaWon { proc, .. }
            | Self::ReplicaKilled { proc, .. }
            | Self::ReplicaPromoted { proc, .. } => Some(proc),
            Self::Replanned { .. }
            | Self::SentinelFired { .. }
            | Self::SentinelReplanned { .. }
            | Self::SpeculationArmed { .. }
            | Self::TaskDropped { .. }
            | Self::SlackSnapshot { .. } => None,
        }
    }

    /// Human-readable label for trace viewers.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            Self::ProcessorFailed { proc, .. } => format!("fail {proc}"),
            Self::TaskAborted { task, .. } => format!("abort {task}"),
            Self::TaskCrashed { task, .. } => format!("crash {task}"),
            Self::TaskRetried { task, .. } => format!("retry {task}"),
            Self::Replanned { moved, .. } => format!("replan {moved}"),
            Self::ReplicaStarted { task, .. } => format!("r-start {task}"),
            Self::ReplicaWon { task, .. } => format!("r-win {task}"),
            Self::ReplicaKilled { task, .. } => format!("r-kill {task}"),
            Self::ReplicaPromoted { task, .. } => format!("r-promote {task}"),
            Self::SentinelFired { task, .. } => format!("sentinel {task}"),
            Self::SentinelReplanned { moved, .. } => format!("s-replan {moved}"),
            Self::SpeculationArmed { task, .. } => format!("speculate {task}"),
            Self::TaskDropped { task, .. } => format!("drop {task}"),
            Self::SlackSnapshot { min_slack, .. } => format!("slack {min_slack:.3}"),
        }
    }
}

/// One executed copy interval on the realized timeline: a primary or
/// replica occupying `proc` over `[start, end]`. `won` marks the copy that
/// defined its task's completion. Killed or aborted copies report the
/// interval they actually occupied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopySpan {
    /// The task the copy belongs to.
    pub task: TaskId,
    /// Host processor.
    pub proc: ProcId,
    /// Interval start.
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// `true` for replica copies.
    pub replica: bool,
    /// `true` when this copy defined the task's completion.
    pub won: bool,
}

/// Full result of one faulty execution.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// Completed-or-failed.
    pub outcome: Outcome,
    /// The schedule that actually executed (placement + per-processor
    /// order of the *winning* copies), present only when the run completed
    /// without dropping tasks (a degraded run has no one-appearance-per-task
    /// schedule).
    pub schedule: Option<Schedule>,
    /// Realized start times of the winning copies (NaN for tasks that
    /// never ran).
    pub start: Vec<f64>,
    /// Realized finish times of the winning copies (NaN for tasks that
    /// never finished).
    pub finish: Vec<f64>,
    /// Recovery effort.
    pub stats: RecoveryStats,
    /// Timestamped recovery events, in occurrence order.
    pub events: Vec<RecoveryEvent>,
    /// Every executed copy interval (primaries and replicas, winners and
    /// losers), for exclusivity checks and replica-aware Gantt lanes.
    pub spans: Vec<CopySpan>,
}

/// Which copy of a task a running slot holds.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CopyKind {
    Primary,
    Replica(usize),
}

/// One task copy either running or committed to run on a processor.
#[derive(Debug, Clone, Copy)]
struct Running {
    task: TaskId,
    start: f64,
    finish: f64,
    copy: CopyKind,
    /// An attempt that will crash at `finish` instead of completing: any
    /// replica with a crash draw, or a primary whose crash is unrecoverable
    /// (fail-stop / no retries left).
    doomed: bool,
}

/// Runtime state of one planned replica.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RState {
    Pending,
    Running(usize),
    Done,
    Dead,
}

/// Executes `plan` against realized `durations` (an `n × m` matrix) and a
/// fault `scenario` under the given recovery policy, without replicas.
///
/// The executor is *omniscient about the present, blind to the future*:
/// dispatch decisions use realized finish times of completed work (as an
/// online runtime observing its own history would), while replans estimate
/// remaining work with expected durations (the scheduler cannot see
/// unrevealed draws).
///
/// # Errors
/// Returns [`ExecutionError`] when `durations` is not
/// `task_count × proc_count` or an executor invariant breaks.
pub fn execute_with_faults(
    inst: &Instance,
    plan: &Schedule,
    durations: &Matrix,
    scenario: &FaultScenario,
    cfg: &RecoveryConfig,
) -> Result<FaultRun, ExecutionError> {
    execute_replicated(
        inst,
        plan,
        durations,
        scenario,
        cfg,
        &ReplicaPlan::empty(inst.task_count()),
        &ReplicaDraws::empty(),
    )
}

/// [`execute_with_faults`] with a replica plan: first-finisher-wins
/// replication plus optional checkpoint/restart (see the module docs for
/// the exact semantics).
///
/// `draws` must align with `replicas` (one
/// [`ReplicaDraw`](crate::faults::ReplicaDraw) per planned replica, same
/// order).
///
/// # Errors
/// Returns [`ExecutionError`] on shape mismatches, an invalid checkpoint
/// config, or a broken executor invariant.
pub fn execute_replicated(
    inst: &Instance,
    plan: &Schedule,
    durations: &Matrix,
    scenario: &FaultScenario,
    cfg: &RecoveryConfig,
    replicas: &ReplicaPlan,
    draws: &ReplicaDraws,
) -> Result<FaultRun, ExecutionError> {
    execute_inner(inst, plan, durations, scenario, cfg, replicas, draws, None)
}

/// The event loop shared by [`execute_replicated`] and
/// [`crate::sentinel::execute_adaptive`]. With `sentinel: None` the
/// behavior (and bit pattern of every output) is exactly the historical
/// replicated executor; with a sentinel attached, completions additionally
/// settle the task's slack account and may fire escalating repairs (see
/// the `sentinel` module docs).
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub(crate) fn execute_inner(
    inst: &Instance,
    plan: &Schedule,
    durations: &Matrix,
    scenario: &FaultScenario,
    cfg: &RecoveryConfig,
    replicas: &ReplicaPlan,
    draws: &ReplicaDraws,
    mut sentinel: Option<(
        &crate::sentinel::SentinelConfig,
        &mut crate::sentinel::SentinelState,
    )>,
) -> Result<FaultRun, ExecutionError> {
    let n = inst.task_count();
    let m = inst.proc_count();
    if durations.rows() != n || durations.cols() != m {
        return Err(ExecutionError::DurationShape {
            rows: durations.rows(),
            cols: durations.cols(),
            tasks: n,
            procs: m,
        });
    }
    if draws.draws.len() != replicas.count() {
        return Err(ExecutionError::ReplicaDrawMismatch {
            replicas: replicas.count(),
            draws: draws.draws.len(),
        });
    }
    for (ri, r) in replicas.replicas().iter().enumerate() {
        if r.task.index() >= n || r.proc.index() >= m {
            return Err(ExecutionError::ReplicaOutOfRange { index: ri });
        }
    }
    if let Some(ckpt) = &cfg.checkpoint {
        ckpt.validate()?;
    }

    let windows = scenario.windows_by_proc(m);
    let mut failures = scenario.failures.clone();
    failures.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.proc.cmp(&b.proc)));
    let mut next_failure = 0usize;

    let mut queue: Vec<VecDeque<TaskId>> = (0..m)
        .map(|p| plan.tasks_on(ProcId(p as u32)).iter().copied().collect())
        .collect();
    let mut avail = Availability::all_up(m);
    let mut running: Vec<Option<Running>> = vec![None; m];
    let mut finished = vec![false; n];
    let mut start = vec![f64::NAN; n];
    let mut finish = vec![f64::NAN; n];
    // Completed copies of each task: (finish, location). Successor data can
    // arrive from whichever completed copy is cheapest.
    let mut sources: Vec<Vec<(f64, ProcId)>> = vec![Vec::new(); n];
    // Execution placement of the winning copy; starts as the plan and is
    // overwritten on (re-)dispatch, so communication uses actual locations.
    let mut placement: Vec<ProcId> = plan.assignment().to_vec();
    let mut exec_order: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut retried = vec![0u32; n];
    // Durable fraction of each task's work (checkpointing only).
    let mut progress = vec![0.0f64; n];
    // `true` once no primary copy of the task can ever run again.
    let mut primary_dead = vec![false; n];
    let mut proc_free = vec![0.0f64; m];
    let mut done = 0usize;
    let mut now = 0.0f64;
    let mut stats = RecoveryStats::default();
    let mut events: Vec<RecoveryEvent> = Vec::new();
    let mut spans: Vec<CopySpan> = Vec::new();
    // Upward ranks for replanning, computed on first use.
    let mut replan_order: Option<Vec<TaskId>> = None;

    // Replica runtime state: per-replica lifecycle plus per-processor
    // pending lists in planned-start order.
    let mut rstate: Vec<RState> = vec![RState::Pending; replicas.count()];
    let mut pending_by_proc: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (ri, r) in replicas.replicas().iter().enumerate() {
        pending_by_proc[r.proc.index()].push(ri);
    }
    for list in &mut pending_by_proc {
        list.sort_by(|&a, &b| {
            replicas.replicas()[a]
                .start
                .total_cmp(&replicas.replicas()[b].start)
                .then(a.cmp(&b))
        });
    }
    let has_alive_copy = |rstate: &[RState], t: TaskId| -> bool {
        replicas
            .replicas_of(t)
            .iter()
            .any(|&ri| matches!(rstate[ri], RState::Pending | RState::Running(_)))
    };

    let fail = |at: f64,
                reason: FailReason,
                start: Vec<f64>,
                finish: Vec<f64>,
                stats: RecoveryStats,
                events: Vec<RecoveryEvent>,
                spans: Vec<CopySpan>| FaultRun {
        outcome: Outcome::Failed { at, reason },
        schedule: None,
        start,
        finish,
        stats,
        events,
        spans,
    };

    loop {
        // Dispatch: start the head of every idle, alive processor's queue
        // whose predecessors are all finished, then offer leftover idle
        // processors to pending replicas. Repeat until a fixed point — one
        // completion can ready several heads.
        let mut dispatched = true;
        while dispatched {
            dispatched = false;
            for p in 0..m {
                if !avail.is_up(ProcId(p as u32)) {
                    continue;
                }
                if matches!(running[p], Some(r) if r.copy == CopyKind::Primary) {
                    continue;
                }
                // Tasks completed by a replica are dropped from the queue.
                while queue[p].front().is_some_and(|t| finished[t.index()]) {
                    queue[p].pop_front();
                }
                let Some(&t) = queue[p].front() else { continue };
                if !inst
                    .graph
                    .predecessors(t)
                    .iter()
                    .all(|e| finished[e.task.index()])
                {
                    continue;
                }
                // Earliest start: processor free + data arrivals from the
                // cheapest *completed copy* of each predecessor.
                let mut s = proc_free[p];
                for e in inst.graph.predecessors(t) {
                    let mut best = f64::INFINITY;
                    for &(f, loc) in &sources[e.task.index()] {
                        let arrive = f + inst.platform.comm_time(e.data, loc, ProcId(p as u32));
                        if arrive < best {
                            best = arrive;
                        }
                    }
                    if best > s {
                        s = best;
                    }
                }
                // A replica currently holds the slot. If it is
                // indispensable, wait; if it would finish before the
                // primary could start anyway, let it; otherwise kill it —
                // primaries are never delayed by dispensable replicas.
                if let Some(r) = running[p] {
                    let CopyKind::Replica(ri) = r.copy else {
                        return Err(ExecutionError::Internal(
                            "primary dispatch found a primary in a free slot",
                        ));
                    };
                    if primary_dead[r.task.index()] {
                        continue; // indispensable: the primary must wait
                    }
                    if r.finish <= s {
                        continue; // finishes before the primary starts
                    }
                    kill_running_replica(
                        p,
                        ri,
                        now,
                        &mut running,
                        &mut rstate,
                        &mut stats,
                        &mut events,
                        &mut spans,
                        &mut proc_free,
                    );
                }
                let base = durations[(t.index(), p)]
                    * scenario.straggler_factor(t)
                    * (1.0 - progress[t.index()]);
                let eff = match &cfg.checkpoint {
                    Some(ckpt) => {
                        let eff = base * ckpt.inflate();
                        stats.checkpoint_overhead += eff - base;
                        eff
                    }
                    None => base,
                };
                let fin;
                let mut doomed = false;
                if retried[t.index()] == 0 && scenario.crash_of(t).is_some() {
                    let Some(fraction) = scenario.crash_of(t) else {
                        return Err(ExecutionError::Internal("crash_of changed under us"));
                    };
                    let crash_at = advance_through(&windows[p], s, fraction * eff);
                    if cfg.policy == RecoveryPolicy::FailStop || cfg.max_retries == 0 {
                        // The attempt is unrecoverable, but the crash only
                        // fires when its event drains at `crash_at`. Until
                        // then it occupies the processor like any running
                        // task, so an earlier processor failure truncates
                        // the attempt instead of the crash committing a
                        // span (and a promotion) from the future.
                        fin = crash_at;
                        doomed = true;
                    } else {
                        events.push(RecoveryEvent::TaskCrashed {
                            task: t,
                            proc: ProcId(p as u32),
                            at: crash_at,
                        });
                        // Retry in place after backoff (crashes fire once,
                        // so a single retry always suffices). Checkpoints
                        // preserve the completed multiple of the interval.
                        retried[t.index()] = 1;
                        stats.retries += 1;
                        let preserved = cfg
                            .checkpoint
                            .as_ref()
                            .map_or(0.0, |c| c.preserved(fraction));
                        stats.lost_work += (fraction - preserved) * eff;
                        stats.saved_work += preserved * eff;
                        let backoff =
                            cfg.backoff * inst.timing.expected(t.index(), ProcId(p as u32));
                        stats.backoff_delay += backoff;
                        let restart = crash_at + backoff;
                        events.push(RecoveryEvent::TaskRetried {
                            task: t,
                            proc: ProcId(p as u32),
                            at: restart,
                        });
                        fin = advance_through(&windows[p], restart, (1.0 - preserved) * eff);
                    }
                } else {
                    fin = advance_through(&windows[p], s, eff);
                }
                queue[p].pop_front();
                running[p] = Some(Running {
                    task: t,
                    start: s,
                    finish: fin,
                    copy: CopyKind::Primary,
                    doomed,
                });
                start[t.index()] = s;
                placement[t.index()] = ProcId(p as u32);
                dispatched = true;
            }
            // Replica dispatch: leftover idle processors host their next
            // eligible pending replica (queue head unready or queue empty —
            // a ready head was dispatched above).
            for p in 0..m {
                if !avail.is_up(ProcId(p as u32)) || running[p].is_some() {
                    continue;
                }
                let Some(&ri) = pending_by_proc[p].iter().find(|&&ri| {
                    rstate[ri] == RState::Pending && {
                        let t = replicas.replicas()[ri].task;
                        !finished[t.index()]
                            // Under the sentinel, planned replicas are held
                            // back until speculation arms them (or their
                            // primary is lost and they carry the task).
                            && sentinel
                                .as_ref()
                                .is_none_or(|(_, s)| s.armed[t.index()] || primary_dead[t.index()])
                            && inst
                                .graph
                                .predecessors(t)
                                .iter()
                                .all(|e| finished[e.task.index()])
                    }
                }) else {
                    continue;
                };
                let r = replicas.replicas()[ri];
                let t = r.task;
                // Never earlier than planned (the insurance constraint's
                // runtime half) nor before the data arrives.
                let mut s = proc_free[p].max(r.start);
                for e in inst.graph.predecessors(t) {
                    let mut best = f64::INFINITY;
                    for &(f, loc) in &sources[e.task.index()] {
                        let arrive = f + inst.platform.comm_time(e.data, loc, ProcId(p as u32));
                        if arrive < best {
                            best = arrive;
                        }
                    }
                    if best > s {
                        s = best;
                    }
                }
                let draw = draws.draws[ri];
                let (fin, doomed) = match draw.crash {
                    Some(fraction) => (
                        advance_through(&windows[p], s, fraction * draw.duration),
                        true,
                    ),
                    None => (advance_through(&windows[p], s, draw.duration), false),
                };
                running[p] = Some(Running {
                    task: t,
                    start: s,
                    finish: fin,
                    copy: CopyKind::Replica(ri),
                    doomed,
                });
                rstate[ri] = RState::Running(p);
                stats.replica_starts += 1;
                events.push(RecoveryEvent::ReplicaStarted {
                    task: t,
                    proc: ProcId(p as u32),
                    at: s,
                });
                dispatched = true;
            }
        }
        if done == n {
            break;
        }

        // Next event: earliest completion vs earliest pending failure, with
        // deterministic tie-breaks (completion first, primary before
        // replica, then processor id).
        let next_fin: Option<(f64, u8, usize)> = running
            .iter()
            .enumerate()
            .filter_map(|(p, r)| {
                r.as_ref().map(|r| {
                    let rank = u8::from(matches!(r.copy, CopyKind::Replica(_)));
                    (r.finish, rank, p)
                })
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let pending_failure = failures.get(next_failure);

        let take_completion = match (next_fin, pending_failure) {
            (Some((f, _, _)), Some(pf)) => f <= pf.at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                // No running work, no pending failures, tasks remain: the
                // plan queues stalled. Unreachable for valid plans (list
                // schedules always progress); fail defensively rather than
                // spin.
                let at = proc_free.iter().copied().fold(0.0f64, f64::max);
                return Ok(fail(
                    at,
                    FailReason::NoProcessorsLeft,
                    start,
                    finish,
                    stats,
                    events,
                    spans,
                ));
            }
        };

        if take_completion {
            let Some((_, _, p)) = next_fin else {
                return Err(ExecutionError::Internal(
                    "completion branch requires a running task",
                ));
            };
            let Some(r) = running[p].take() else {
                return Err(ExecutionError::Internal(
                    "selected processor is not running",
                ));
            };
            now = r.finish;
            let ti = r.task.index();
            // Set when this completion defines a task (fed to the sentinel
            // hook below).
            let mut won: Option<TaskId> = None;
            match r.copy {
                CopyKind::Primary if r.doomed => {
                    // The unrecoverable crash scheduled at dispatch fires
                    // now; the attempt produced no output, so it is never a
                    // data source.
                    proc_free[p] = r.finish;
                    events.push(RecoveryEvent::TaskCrashed {
                        task: r.task,
                        proc: ProcId(p as u32),
                        at: r.finish,
                    });
                    spans.push(CopySpan {
                        task: r.task,
                        proc: ProcId(p as u32),
                        start: r.start,
                        end: r.finish,
                        replica: false,
                        won: false,
                    });
                    let dur = r.finish - r.start;
                    if finished[ti] {
                        // A replica already won; only duplicate effort died.
                        stats.duplicate_work += dur;
                    } else {
                        stats.lost_work += dur;
                        if has_alive_copy(&rstate, r.task) {
                            // A replica survives: promote and move on.
                            promote_replicas(
                                r.task,
                                r.finish,
                                replicas,
                                &rstate,
                                &mut primary_dead,
                                &mut stats,
                                &mut events,
                            );
                        } else {
                            return Ok(fail(
                                r.finish,
                                FailReason::TaskCrashed(r.task),
                                start,
                                finish,
                                stats,
                                events,
                                spans,
                            ));
                        }
                    }
                }
                CopyKind::Primary => {
                    proc_free[p] = r.finish;
                    sources[ti].push((r.finish, ProcId(p as u32)));
                    if finished[ti] {
                        // A replica already won; this completion is merely
                        // a redundant data source.
                        stats.duplicate_work += r.finish - r.start;
                        spans.push(CopySpan {
                            task: r.task,
                            proc: ProcId(p as u32),
                            start: r.start,
                            end: r.finish,
                            replica: false,
                            won: false,
                        });
                    } else {
                        finished[ti] = true;
                        finish[ti] = r.finish;
                        exec_order[p].push(r.task);
                        done += 1;
                        won = Some(r.task);
                        spans.push(CopySpan {
                            task: r.task,
                            proc: ProcId(p as u32),
                            start: r.start,
                            end: r.finish,
                            replica: false,
                            won: true,
                        });
                        kill_copies_of(
                            r.task,
                            now,
                            replicas,
                            &mut running,
                            &mut rstate,
                            &mut stats,
                            &mut events,
                            &mut spans,
                            &mut proc_free,
                        );
                    }
                }
                CopyKind::Replica(ri) => {
                    proc_free[p] = r.finish;
                    let dur = r.finish - r.start;
                    if r.doomed || finished[ti] {
                        // Crashed replica attempt (or a defensive redundant
                        // completion): dead, its effort wasted.
                        rstate[ri] = RState::Dead;
                        stats.replica_work += dur;
                        stats.duplicate_work += dur;
                        events.push(RecoveryEvent::ReplicaKilled {
                            task: r.task,
                            proc: ProcId(p as u32),
                            at: r.finish,
                        });
                        spans.push(CopySpan {
                            task: r.task,
                            proc: ProcId(p as u32),
                            start: r.start,
                            end: r.finish,
                            replica: true,
                            won: false,
                        });
                        if !finished[ti] && primary_dead[ti] && !has_alive_copy(&rstate, r.task) {
                            return Ok(fail(
                                r.finish,
                                FailReason::TaskCrashed(r.task),
                                start,
                                finish,
                                stats,
                                events,
                                spans,
                            ));
                        }
                    } else {
                        // First finisher: the replica defines the task.
                        rstate[ri] = RState::Done;
                        finished[ti] = true;
                        start[ti] = r.start;
                        finish[ti] = r.finish;
                        placement[ti] = ProcId(p as u32);
                        sources[ti].push((r.finish, ProcId(p as u32)));
                        exec_order[p].push(r.task);
                        done += 1;
                        won = Some(r.task);
                        stats.replica_wins += 1;
                        stats.replica_work += dur;
                        events.push(RecoveryEvent::ReplicaWon {
                            task: r.task,
                            proc: ProcId(p as u32),
                            at: r.finish,
                        });
                        spans.push(CopySpan {
                            task: r.task,
                            proc: ProcId(p as u32),
                            start: r.start,
                            end: r.finish,
                            replica: true,
                            won: true,
                        });
                        // Sibling replicas die; a running primary keeps
                        // going (it becomes a redundant data source).
                        kill_copies_of(
                            r.task,
                            now,
                            replicas,
                            &mut running,
                            &mut rstate,
                            &mut stats,
                            &mut events,
                            &mut spans,
                            &mut proc_free,
                        );
                    }
                }
            }
            // Sentinel hook: a defining completion settles the task's slack
            // account; consuming more than the trigger fraction fires an
            // escalating response (replan → speculation → degradation).
            if let (Some(t), Some((scfg, sstate))) = (won, sentinel.as_mut()) {
                let wi = t.index();
                let lateness = finish[wi] - sstate.account_pf[wi];
                if lateness > scfg.trigger_fraction * sstate.account_slack[wi] + sstate.eps_abs {
                    stats.sentinel_fires += 1;
                    events.push(RecoveryEvent::SentinelFired {
                        task: t,
                        at: now,
                        lateness,
                        slack: sstate.account_slack[wi],
                    });
                    events.push(RecoveryEvent::SlackSnapshot {
                        at: now,
                        min_slack: sstate.min_unfinished_slack(&finished),
                    });
                    let projected = sstate.projected(lateness, &finished);
                    let cooldown = scfg.cooldown * sstate.m0;
                    if sstate.replans_used < scfg.max_replans
                        && now >= sstate.last_replan_at + cooldown
                        && avail.any_up()
                    {
                        // Stage 1: bounded replan of the unstarted subgraph
                        // (cooldown hysteresis keeps overrun storms from
                        // thrashing; the budget bounds total repairs).
                        let order =
                            replan_order.get_or_insert_with(|| crate::replan::rank_order(inst));
                        let (moved, result) = replan(
                            inst,
                            order,
                            &avail,
                            &finished,
                            &finish,
                            &primary_dead,
                            &running,
                            &placement,
                            &proc_free,
                            now,
                            &mut queue,
                        )?;
                        sstate.replans_used += 1;
                        sstate.last_replan_at = now;
                        stats.sentinel_replans += 1;
                        events.push(RecoveryEvent::SentinelReplanned { at: now, moved });
                        sstate.rebuild_accounts(inst, &result);
                    } else if projected > sstate.deadline
                        && sstate.speculations_used < scfg.max_speculations
                    {
                        // Stage 2: the deadline is threatened and replans
                        // are exhausted (or cooling down) — arm the pending
                        // replicas of the most critical unfinished task.
                        let mut candidate: Option<TaskId> = None;
                        for (ri, r) in replicas.replicas().iter().enumerate() {
                            let rt = r.task;
                            if rstate[ri] != RState::Pending
                                || finished[rt.index()]
                                || primary_dead[rt.index()]
                                || sstate.armed[rt.index()]
                            {
                                continue;
                            }
                            if candidate.is_none_or(|c| {
                                sstate.account_slack[rt.index()] < sstate.account_slack[c.index()]
                            }) {
                                candidate = Some(rt);
                            }
                        }
                        if let Some(c) = candidate {
                            sstate.armed[c.index()] = true;
                            sstate.speculations_used += 1;
                            stats.speculations += 1;
                            events.push(RecoveryEvent::SpeculationArmed { task: c, at: now });
                        }
                    } else if projected > sstate.deadline && !sstate.degraded {
                        // Stage 3: graceful degradation — shed pending
                        // speculation costs, then drop the optional
                        // subgraph, trading output weight for the deadline.
                        sstate.degraded = true;
                        for ri in 0..rstate.len() {
                            let rt = replicas.replicas()[ri].task;
                            if rstate[ri] == RState::Pending
                                && !sstate.armed[rt.index()]
                                && !primary_dead[rt.index()]
                            {
                                rstate[ri] = RState::Dead;
                                events.push(RecoveryEvent::ReplicaKilled {
                                    task: rt,
                                    proc: replicas.replicas()[ri].proc,
                                    at: now,
                                });
                            }
                        }
                        for t2 in inst.graph.tasks() {
                            let i2 = t2.index();
                            if finished[i2] || !inst.graph.is_optional(t2) || primary_dead[i2] {
                                continue;
                            }
                            if running.iter().flatten().any(|r| r.task == t2) {
                                continue; // let a running copy finish
                            }
                            finished[i2] = true;
                            done += 1;
                            stats.dropped_tasks += 1;
                            stats.dropped_weight += inst.graph.weight_of(t2);
                            events.push(RecoveryEvent::TaskDropped { task: t2, at: now });
                            kill_copies_of(
                                t2,
                                now,
                                replicas,
                                &mut running,
                                &mut rstate,
                                &mut stats,
                                &mut events,
                                &mut spans,
                                &mut proc_free,
                            );
                        }
                    }
                }
            }
            continue;
        }

        // Permanent processor failure.
        let Some(&f) = failures.get(next_failure) else {
            return Err(ExecutionError::Internal(
                "failure branch requires a pending failure",
            ));
        };
        next_failure += 1;
        let p = f.proc.index();
        if !avail.is_up(f.proc) {
            continue;
        }
        now = f.at;
        avail.mark_down(f.proc, f.at);
        events.push(RecoveryEvent::ProcessorFailed {
            proc: f.proc,
            at: f.at,
        });
        if let Some(r) = running[p].take() {
            let ti = r.task.index();
            match r.copy {
                CopyKind::Primary if finished[ti] => {
                    // A redundant primary died with its processor; only
                    // duplicate effort is lost.
                    let partial = (f.at.min(r.finish) - r.start).max(0.0);
                    stats.duplicate_work += partial;
                    if partial > 0.0 {
                        spans.push(CopySpan {
                            task: r.task,
                            proc: f.proc,
                            start: r.start,
                            end: r.start + partial,
                            replica: false,
                            won: false,
                        });
                    }
                }
                CopyKind::Primary => {
                    // A committed task whose interval crosses the failure
                    // instant is aborted; one committed entirely before it
                    // already completed (completion events at time <= f.at
                    // were drained first). Checkpoints preserve the
                    // completed multiple of the interval for the re-run.
                    let wall = r.finish - r.start;
                    let g = if wall > 0.0 {
                        ((f.at - r.start).max(0.0) / wall).min(1.0)
                    } else {
                        0.0
                    };
                    let preserved = cfg.checkpoint.as_ref().map_or(0.0, |c| c.preserved(g));
                    stats.lost_work += (g - preserved) * wall;
                    stats.saved_work += preserved * wall;
                    // A doomed attempt's wall only spans the crash fraction
                    // of the task, so scale the checkpoint credit down to
                    // the share of remaining work it actually covered.
                    let covered = if r.doomed {
                        scenario.crash_of(r.task).unwrap_or(1.0)
                    } else {
                        1.0
                    };
                    progress[ti] += preserved * covered * (1.0 - progress[ti]);
                    events.push(RecoveryEvent::TaskAborted {
                        task: r.task,
                        proc: f.proc,
                        at: f.at,
                    });
                    if f.at > r.start {
                        spans.push(CopySpan {
                            task: r.task,
                            proc: f.proc,
                            start: r.start,
                            end: f.at,
                            replica: false,
                            won: false,
                        });
                    }
                    start[ti] = f64::NAN;
                    queue[p].push_front(r.task);
                }
                CopyKind::Replica(ri) => {
                    rstate[ri] = RState::Dead;
                    let partial = (f.at.min(r.finish) - r.start).max(0.0);
                    stats.replica_work += partial;
                    stats.duplicate_work += partial;
                    events.push(RecoveryEvent::ReplicaKilled {
                        task: r.task,
                        proc: f.proc,
                        at: f.at,
                    });
                    if partial > 0.0 {
                        spans.push(CopySpan {
                            task: r.task,
                            proc: f.proc,
                            start: r.start,
                            end: r.start + partial,
                            replica: true,
                            won: false,
                        });
                    }
                    if !finished[ti] && primary_dead[ti] && !has_alive_copy(&rstate, r.task) {
                        return Ok(fail(
                            f.at,
                            FailReason::ProcessorLost(f.proc),
                            start,
                            finish,
                            stats,
                            events,
                            spans,
                        ));
                    }
                }
            }
        }
        // Pending replicas hosted on the dead processor die with it.
        for &ri in &pending_by_proc[p] {
            if rstate[ri] != RState::Pending {
                continue;
            }
            rstate[ri] = RState::Dead;
            let rt = replicas.replicas()[ri].task;
            events.push(RecoveryEvent::ReplicaKilled {
                task: rt,
                proc: f.proc,
                at: f.at,
            });
            if !finished[rt.index()] && primary_dead[rt.index()] && !has_alive_copy(&rstate, rt) {
                return Ok(fail(
                    f.at,
                    FailReason::ProcessorLost(f.proc),
                    start,
                    finish,
                    stats,
                    events,
                    spans,
                ));
            }
        }
        proc_free[p] = f.at;
        // Tasks a replica already finished are no longer stranded.
        queue[p].retain(|t| !finished[t.index()]);
        if queue[p].is_empty() {
            // Harmless failure: the processor had nothing left to do.
            continue;
        }
        match cfg.policy {
            RecoveryPolicy::FailStop | RecoveryPolicy::RetrySameProc => {
                // Without migration the stranded queue is fatal — unless
                // every stranded task still has a living replica, which is
                // then promoted to carry the task alone.
                if queue[p].iter().all(|&t| has_alive_copy(&rstate, t)) {
                    let stranded: Vec<TaskId> = queue[p].drain(..).collect();
                    for t in stranded {
                        promote_replicas(
                            t,
                            f.at,
                            replicas,
                            &rstate,
                            &mut primary_dead,
                            &mut stats,
                            &mut events,
                        );
                    }
                } else {
                    return Ok(fail(
                        f.at,
                        FailReason::ProcessorLost(f.proc),
                        start,
                        finish,
                        stats,
                        events,
                        spans,
                    ));
                }
            }
            RecoveryPolicy::MigrateReplan => {
                if !avail.any_up() {
                    return Ok(fail(
                        f.at,
                        FailReason::NoProcessorsLeft,
                        start,
                        finish,
                        stats,
                        events,
                        spans,
                    ));
                }
                let order = replan_order.get_or_insert_with(|| crate::replan::rank_order(inst));
                let (moved, result) = replan(
                    inst,
                    order,
                    &avail,
                    &finished,
                    &finish,
                    &primary_dead,
                    &running,
                    &placement,
                    &proc_free,
                    f.at,
                    &mut queue,
                )?;
                stats.replans += 1;
                events.push(RecoveryEvent::Replanned { at: f.at, moved });
                // Failure-forced replans do not count against the
                // sentinel's budget, but the slack accounts must track the
                // repaired plan.
                if let Some((_, sstate)) = sentinel.as_mut() {
                    sstate.rebuild_accounts(inst, &result);
                }
            }
        }
    }

    // Copies still running when the last task finished are wasted trailing
    // work: account them and close their spans, truncated at the
    // processor's failure onset when one is still pending — no copy can
    // outlive its processor, even past the last drained event.
    for (p, slot) in running.iter_mut().enumerate() {
        if let Some(r) = slot.take() {
            let cut = failures
                .iter()
                .find(|f| f.proc.index() == p)
                .map_or(r.finish, |f| f.at.min(r.finish));
            let dur = (cut - r.start).max(0.0);
            match r.copy {
                CopyKind::Primary => stats.duplicate_work += dur,
                CopyKind::Replica(ri) => {
                    rstate[ri] = RState::Dead;
                    stats.replica_work += dur;
                    stats.duplicate_work += dur;
                }
            }
            if dur > 0.0 {
                spans.push(CopySpan {
                    task: r.task,
                    proc: ProcId(p as u32),
                    start: r.start,
                    end: cut,
                    replica: matches!(r.copy, CopyKind::Replica(_)),
                    won: false,
                });
            }
        }
    }

    let makespan = finish.iter().copied().fold(0.0f64, f64::max);
    // A degraded run never executed its dropped tasks, so no
    // every-task-once schedule exists; the run still counts as completed
    // (at its degradation level) rather than failed.
    let schedule =
        if stats.dropped_tasks > 0 {
            None
        } else {
            Some(Schedule::from_proc_lists(n, exec_order).map_err(|_| {
                ExecutionError::Internal("executor did not complete every task once")
            })?)
        };
    Ok(FaultRun {
        outcome: Outcome::Completed { makespan },
        schedule,
        start,
        finish,
        stats,
        events,
        spans,
    })
}

/// Kills the replica in `running[p]` at time `at` (it never completes).
#[allow(clippy::too_many_arguments)]
fn kill_running_replica(
    p: usize,
    ri: usize,
    at: f64,
    running: &mut [Option<Running>],
    rstate: &mut [RState],
    stats: &mut RecoveryStats,
    events: &mut Vec<RecoveryEvent>,
    spans: &mut Vec<CopySpan>,
    proc_free: &mut [f64],
) {
    let Some(r) = running[p].take() else { return };
    rstate[ri] = RState::Dead;
    let end = at.min(r.finish);
    let partial = (end - r.start).max(0.0);
    if partial > 0.0 {
        stats.replica_work += partial;
        stats.duplicate_work += partial;
        proc_free[p] = proc_free[p].max(end);
        spans.push(CopySpan {
            task: r.task,
            proc: ProcId(p as u32),
            start: r.start,
            end,
            replica: true,
            won: false,
        });
    }
    events.push(RecoveryEvent::ReplicaKilled {
        task: r.task,
        proc: ProcId(p as u32),
        at,
    });
}

/// Kills every remaining copy of `t` (its winner just finished): pending
/// replicas die silently, running replicas are killed at `at`. A running
/// redundant *primary* keeps going — it will complete as an extra data
/// source.
#[allow(clippy::too_many_arguments)]
fn kill_copies_of(
    t: TaskId,
    at: f64,
    replicas: &ReplicaPlan,
    running: &mut [Option<Running>],
    rstate: &mut Vec<RState>,
    stats: &mut RecoveryStats,
    events: &mut Vec<RecoveryEvent>,
    spans: &mut Vec<CopySpan>,
    proc_free: &mut [f64],
) {
    for &ri in replicas.replicas_of(t) {
        match rstate[ri] {
            RState::Pending => rstate[ri] = RState::Dead,
            RState::Running(q) => {
                kill_running_replica(q, ri, at, running, rstate, stats, events, spans, proc_free);
            }
            RState::Done | RState::Dead => {}
        }
    }
}

/// Marks `t`'s primary as permanently lost and promotes its surviving
/// replicas to indispensable copies.
fn promote_replicas(
    t: TaskId,
    at: f64,
    replicas: &ReplicaPlan,
    rstate: &[RState],
    primary_dead: &mut [bool],
    stats: &mut RecoveryStats,
    events: &mut Vec<RecoveryEvent>,
) {
    if primary_dead[t.index()] {
        return;
    }
    primary_dead[t.index()] = true;
    for &ri in replicas.replicas_of(t) {
        if matches!(rstate[ri], RState::Pending | RState::Running(_)) {
            stats.promotions += 1;
            events.push(RecoveryEvent::ReplicaPromoted {
                task: t,
                proc: replicas.replicas()[ri].proc,
                at,
            });
        }
    }
}

/// Re-plans every unfinished, uncommitted task onto the alive processors
/// via the shared partial-graph HEFT pass in [`crate::replan`], rewriting
/// the per-processor queues. Tasks whose primary is permanently dead stay
/// with their replicas. Returns the number of tasks re-queued together
/// with the full [`ReplanResult`] (the sentinel rebuilds its slack
/// accounts from it).
#[allow(clippy::too_many_arguments)]
fn replan(
    inst: &Instance,
    order: &[TaskId],
    avail: &Availability,
    finished: &[bool],
    finish: &[f64],
    primary_dead: &[bool],
    running: &[Option<Running>],
    placement: &[ProcId],
    proc_free: &[f64],
    now: f64,
    queue: &mut [VecDeque<TaskId>],
) -> Result<(usize, crate::replan::ReplanResult), ExecutionError> {
    use crate::replan::{replan_partial, FrozenState, ReplanError};

    let n = inst.task_count();
    let m = inst.proc_count();

    // Freeze the execution prefix: finished tasks at their realized
    // (placement, finish); committed running primaries at their committed
    // finish (a task running on a healthy processor is never migrated);
    // replica-carried tasks (primary permanently dead) are skipped — they
    // are not re-planned and their completion time is unknown, so their
    // successors plan as if the data were available.
    let mut state = FrozenState {
        finished: (0..n)
            .map(|t| {
                if finished[t] {
                    Some((placement[t], finish[t]))
                } else {
                    None
                }
            })
            .collect(),
        alive: (0..m).map(|p| avail.is_up(ProcId(p as u32))).collect(),
        free_at: (0..m)
            .map(|p| {
                let busy = running[p].as_ref().map_or(0.0, |r| r.finish);
                now.max(proc_free[p]).max(busy)
            })
            .collect(),
        skip: vec![false; n],
    };
    for (p, slot) in running.iter().enumerate() {
        if let Some(r) = slot {
            if r.copy == CopyKind::Primary && !finished[r.task.index()] {
                state.finished[r.task.index()] = Some((ProcId(p as u32), r.finish));
            }
        }
    }
    for t in 0..n {
        if !finished[t] && primary_dead[t] && state.finished[t].is_none() {
            state.skip[t] = true;
        }
    }

    let result = replan_partial(inst, order, &state).map_err(|e| match e {
        ReplanError::NoAliveProcessor => {
            ExecutionError::Internal("replan requires at least one alive processor")
        }
        ReplanError::ShapeMismatch | ReplanError::InvalidPlacement(_) => {
            ExecutionError::Internal("replan built an inconsistent frozen state")
        }
    })?;

    for q in queue.iter_mut() {
        q.clear();
    }
    for (p, list) in result.proc_tasks.iter().enumerate() {
        queue[p].extend(list.iter().copied());
    }
    Ok((result.replanned, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, ProcessorFailure, Straggler, TaskCrash};
    use crate::instance::InstanceSpec;
    use crate::replication::{plan_replicas, ReplicationConfig};
    use crate::timing;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(30, 4)
            .seed(seed)
            .uncertainty_level(4.0)
            .build()
            .unwrap()
    }

    fn round_robin(i: &Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&i.graph).unwrap();
        let m = i.proc_count();
        let assignment: Vec<ProcId> = (0..i.task_count())
            .map(|t| ProcId((t % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    fn expected_matrix(i: &Instance) -> Matrix {
        Matrix::from_fn(i.task_count(), i.proc_count(), |t, p| {
            i.timing.expected(t, ProcId(p as u32))
        })
    }

    /// With a quiet scenario the executor must reproduce the static timing
    /// of the plan exactly, for every policy.
    #[test]
    fn quiet_scenario_matches_static_timing() {
        let i = inst(1);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let per_task: Vec<f64> = (0..i.task_count())
            .map(|t| durations[(t, s.proc_of(TaskId(t as u32)).index())])
            .collect();
        let ds = crate::disjunctive::DisjunctiveGraph::build(&i.graph, &s).unwrap();
        let reference = timing::evaluate_with_durations(&ds, &s, &i.platform, &per_task).makespan;
        for policy in RecoveryPolicy::all() {
            let run = execute_with_faults(
                &i,
                &s,
                &durations,
                &FaultScenario::default(),
                &RecoveryConfig::new(policy),
            )
            .unwrap();
            let makespan = run.outcome.makespan().expect("quiet run completes");
            assert!(
                (makespan - reference).abs() < 1e-9,
                "{policy:?}: {makespan} != static {reference}"
            );
            assert_eq!(run.stats, RecoveryStats::default());
            assert!(run.events.is_empty());
            assert_eq!(run.schedule.as_ref().unwrap(), &s);
            assert_eq!(run.spans.len(), i.task_count());
            assert!(run.spans.iter().all(|sp| sp.won && !sp.replica));
        }
    }

    #[test]
    fn failstop_fails_on_processor_failure_with_pending_work() {
        let i = inst(2);
        let s = round_robin(&i);
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: 1e-6,
            }],
            ..FaultScenario::default()
        };
        let run = execute_with_faults(
            &i,
            &s,
            &expected_matrix(&i),
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        match run.outcome {
            Outcome::Failed { reason, .. } => {
                assert_eq!(reason, FailReason::ProcessorLost(ProcId(0)));
            }
            Outcome::Completed { .. } => panic!("fail-stop must fail when a loaded proc dies"),
        }
        assert!(run.schedule.is_none());
    }

    #[test]
    fn late_failure_after_all_work_is_harmless() {
        let i = inst(3);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let quiet = execute_with_faults(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        let m0 = quiet.outcome.makespan().unwrap();
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: m0 + 1.0,
            }],
            ..FaultScenario::default()
        };
        let run = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        assert_eq!(run.outcome.makespan(), Some(m0));
    }

    #[test]
    fn migrate_replan_completes_despite_failure() {
        let i = inst(4);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let quiet = execute_with_faults(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
        )
        .unwrap();
        let m0 = quiet.outcome.makespan().unwrap();
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: 0.3 * m0,
            }],
            ..FaultScenario::default()
        };
        let run = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
        )
        .unwrap();
        let makespan = run.outcome.makespan().expect("migrate-replan completes");
        // Work was still outstanding at the failure instant (the quiet run
        // finishes at m0 > 0.3*m0), and replanned tasks dispatch no earlier
        // than the failure, so the realized makespan must exceed it. (The
        // replan MAY beat m0 outright: EFT on the survivors can improve on a
        // round-robin plan, so `makespan >= m0` would be unsound.)
        assert!(
            makespan > 0.3 * m0,
            "unfinished work cannot end before the failure"
        );
        assert!(run.stats.replans >= 1);
        let schedule = run.schedule.expect("completed run has a schedule");
        assert!(schedule.validate_against(&i.graph).is_ok());
        // Nothing may *finish* on the dead processor after its death.
        for &t in schedule.tasks_on(ProcId(0)) {
            assert!(
                run.finish[t.index()] <= 0.3 * m0 + 1e-9,
                "{t} finished on the dead processor after it died"
            );
        }
        // Physical validity of the realized timeline: precedence (comm >= 0
        // means finish-before-start suffices) and per-proc exclusivity.
        for t in i.graph.tasks() {
            for e in i.graph.predecessors(t) {
                assert!(run.start[t.index()] >= run.finish[e.task.index()] - 1e-9);
            }
        }
        for p in 0..i.proc_count() {
            let tasks = schedule.tasks_on(ProcId(p as u32));
            for w in tasks.windows(2) {
                assert!(run.start[w[1].index()] >= run.finish[w[0].index()] - 1e-9);
            }
        }
    }

    #[test]
    fn retry_recovers_from_crash_failstop_does_not() {
        let i = inst(5);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let scenario = FaultScenario {
            crashes: vec![TaskCrash {
                task: TaskId(0),
                fraction: 0.5,
            }],
            ..FaultScenario::default()
        };
        let failstop = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        assert!(matches!(
            failstop.outcome,
            Outcome::Failed {
                reason: FailReason::TaskCrashed(TaskId(0)),
                ..
            }
        ));
        let retry = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::RetrySameProc),
        )
        .unwrap();
        let quiet = execute_with_faults(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::RetrySameProc),
        )
        .unwrap();
        let with_crash = retry.outcome.makespan().expect("retry completes");
        let without = quiet.outcome.makespan().unwrap();
        assert!(with_crash >= without, "a crash cannot make the run faster");
        assert_eq!(retry.stats.retries, 1);
        assert!(retry.stats.lost_work > 0.0);
        assert!(retry.stats.backoff_delay > 0.0);
    }

    #[test]
    fn straggler_only_delays_never_fails() {
        let i = inst(6);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let scenario = FaultScenario {
            stragglers: vec![Straggler {
                task: TaskId(3),
                factor: 5.0,
            }],
            ..FaultScenario::default()
        };
        for policy in RecoveryPolicy::all() {
            let run =
                execute_with_faults(&i, &s, &durations, &scenario, &RecoveryConfig::new(policy))
                    .unwrap();
            assert!(run.outcome.makespan().is_some(), "{policy:?} must complete");
        }
    }

    #[test]
    fn generated_scenarios_always_complete_under_migrate_replan() {
        let i = inst(7);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let cfg = FaultConfig {
            failure_rate: 0.5,
            crash_rate: 0.3,
            horizon: 50.0,
            ..FaultConfig::default()
        };
        for seed in 0..25 {
            let scenario = FaultScenario::generate(&cfg, i.task_count(), i.proc_count(), seed);
            let run = execute_with_faults(
                &i,
                &s,
                &durations,
                &scenario,
                &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
            )
            .unwrap();
            let makespan = run
                .outcome
                .makespan()
                .expect("migrate-replan completes every generated scenario");
            assert!(makespan.is_finite() && makespan > 0.0);
            if let Some(sched) = run.schedule {
                assert!(sched.validate_against(&i.graph).is_ok());
            }
        }
    }

    /// Malformed inputs surface as typed errors instead of panics.
    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        let i = inst(10);
        let s = round_robin(&i);
        let bad = Matrix::from_fn(3, 2, |_, _| 1.0);
        let err = execute_with_faults(
            &i,
            &s,
            &bad,
            &FaultScenario::default(),
            &RecoveryConfig::default(),
        );
        assert!(matches!(err, Err(ExecutionError::DurationShape { .. })));

        let plan = plan_replicas(&i, &s, &ReplicationConfig::default()).unwrap();
        assert!(!plan.is_empty());
        let err = execute_replicated(
            &i,
            &s,
            &expected_matrix(&i),
            &FaultScenario::default(),
            &RecoveryConfig::default(),
            &plan,
            &ReplicaDraws::empty(),
        );
        assert!(matches!(
            err,
            Err(ExecutionError::ReplicaDrawMismatch { .. })
        ));

        assert!(CheckpointConfig::new(0.0, 0.1).is_err());
        assert!(CheckpointConfig::new(0.5, -1.0).is_err());
        assert!(CheckpointConfig::new(0.25, 0.02).is_ok());
        assert!(!ExecutionError::Internal("x").to_string().is_empty());
    }

    /// Checkpoints convert crash losses into saved work; with zero
    /// checkpoint overhead the checkpointed run can only be faster.
    #[test]
    fn checkpointing_preserves_crash_work() {
        let i = inst(9);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let scenario = FaultScenario {
            crashes: vec![TaskCrash {
                task: TaskId(0),
                fraction: 0.5,
            }],
            ..FaultScenario::default()
        };
        let plain = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::RetrySameProc),
        )
        .unwrap();
        let free_ckpt = RecoveryConfig::new(RecoveryPolicy::RetrySameProc)
            .with_checkpoint(CheckpointConfig::new(0.25, 0.0).unwrap());
        let ckpt = execute_with_faults(&i, &s, &durations, &scenario, &free_ckpt).unwrap();
        // fraction 0.5 is an exact multiple of interval 0.25: nothing lost.
        assert!(ckpt.stats.saved_work > 0.0);
        assert!(ckpt.stats.lost_work.abs() < 1e-12);
        assert!(plain.stats.lost_work > 0.0);
        assert!(
            ckpt.outcome.makespan().unwrap() <= plain.outcome.makespan().unwrap(),
            "free checkpoints cannot slow the run down"
        );

        // Non-zero overhead is paid even on a quiet run.
        let paid_ckpt = RecoveryConfig::new(RecoveryPolicy::RetrySameProc)
            .with_checkpoint(CheckpointConfig::new(0.25, 0.1).unwrap());
        let quiet_plain = execute_with_faults(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::RetrySameProc),
        )
        .unwrap();
        let quiet_paid =
            execute_with_faults(&i, &s, &durations, &FaultScenario::default(), &paid_ckpt).unwrap();
        assert!(quiet_paid.stats.checkpoint_overhead > 0.0);
        assert!(quiet_paid.outcome.makespan().unwrap() > quiet_plain.outcome.makespan().unwrap());
    }

    /// A processor failure that strands queued work is fatal under
    /// `RetrySameProc` — unless every stranded task has a surviving
    /// replica, which is promoted and carries the task.
    #[test]
    fn replicas_rescue_a_stranded_queue_without_migration() {
        let i = inst(11);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: 1e-6,
            }],
            ..FaultScenario::default()
        };
        let cfg = RecoveryConfig::new(RecoveryPolicy::RetrySameProc);
        let bare = execute_with_faults(&i, &s, &durations, &scenario, &cfg).unwrap();
        assert!(
            matches!(bare.outcome, Outcome::Failed { .. }),
            "without replicas the stranded queue is fatal"
        );

        let rcfg = ReplicationConfig::with_budget(1.0);
        let plan = plan_replicas(&i, &s, &rcfg).unwrap();
        assert_eq!(plan.count(), i.task_count(), "budget 1.0 covers every task");
        let draws = ReplicaDraws::nominal(&plan, &i.timing);
        let run = execute_replicated(&i, &s, &durations, &scenario, &cfg, &plan, &draws).unwrap();
        let makespan = run
            .outcome
            .makespan()
            .expect("promoted replicas must carry the stranded tasks");
        assert!(makespan.is_finite() && makespan > 0.0);
        assert!(run.stats.promotions >= 1);
        assert!(run.stats.replica_wins >= 1);
        let schedule = run.schedule.expect("completed run has a schedule");
        assert!(schedule.validate_against(&i.graph).is_ok());
        assert!(
            schedule.tasks_on(ProcId(0)).is_empty() || run.finish.iter().all(|f| f.is_finite())
        );
    }

    /// With nominal replica draws and a quiet scenario, replication leaves
    /// the realized timeline bit-identical to the primary-only run: the
    /// insurance constraint plus primary-first tie-breaks mean no replica
    /// ever wins, and the kill/defer rule never delays a primary.
    #[test]
    fn quiet_replicated_run_is_bit_identical_to_primary_only() {
        let i = inst(8);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let cfg = RecoveryConfig::default();
        let base =
            execute_with_faults(&i, &s, &durations, &FaultScenario::default(), &cfg).unwrap();
        let plan = plan_replicas(&i, &s, &ReplicationConfig::default()).unwrap();
        assert!(!plan.is_empty());
        let draws = ReplicaDraws::nominal(&plan, &i.timing);
        let repl = execute_replicated(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &cfg,
            &plan,
            &draws,
        )
        .unwrap();
        let m0 = base.outcome.makespan().unwrap();
        let m0r = repl.outcome.makespan().unwrap();
        assert_eq!(m0.to_bits(), m0r.to_bits(), "M0 must be bit-identical");
        for t in 0..i.task_count() {
            assert_eq!(base.start[t].to_bits(), repl.start[t].to_bits());
            assert_eq!(base.finish[t].to_bits(), repl.finish[t].to_bits());
        }
        assert_eq!(repl.stats.replica_wins, 0);
        assert_eq!(repl.schedule.as_ref().unwrap(), &s);
    }
}

//! Recovery policies: executing a schedule through a fault scenario.
//!
//! [`execute_with_faults`] is a discrete-event executor that replays a
//! static schedule against one realization's durations *and* one
//! [`FaultScenario`](crate::faults::FaultScenario), reacting according to a
//! pluggable [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::FailStop`] — no recovery; any permanent failure or
//!   task crash that touches unfinished work fails the realization. This
//!   measures the *raw damage* a fault regime inflicts.
//! * [`RecoveryPolicy::RetrySameProc`] — transient task crashes are
//!   re-executed on the same processor after a backoff delay; permanent
//!   failures are still fatal.
//! * [`RecoveryPolicy::MigrateReplan`] — on a permanent failure, the
//!   unstarted remainder of the DAG is re-planned over the surviving
//!   processors with a HEFT-style earliest-finish-time pass (the same
//!   upward-rank + EFT mathematics as `rds-heft`, recomputed here because
//!   `rds-heft` sits *above* this crate in the dependency graph; the
//!   public partial-graph entry point lives in `rds_heft::reschedule`).
//!
//! Semantics, fixed for all policies:
//!
//! * tasks already **finished** are never re-executed;
//! * a task **running** on a healthy processor is never migrated;
//! * a task running on a processor at its failure instant is lost and
//!   (under `MigrateReplan`) re-planned from scratch elsewhere;
//! * slowdown windows and stragglers merely stretch durations — they never
//!   fail a realization under any policy;
//! * the executor is deterministic: all randomness lives in the realized
//!   duration matrix and the fault scenario.

use std::collections::VecDeque;

use rds_graph::TaskId;
use rds_platform::{Availability, ProcId};
use rds_stats::matrix::Matrix;

use crate::faults::{advance_through, FaultScenario};
use crate::instance::Instance;
use crate::schedule::Schedule;

/// How the executor reacts to faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecoveryPolicy {
    /// No recovery: permanent failures and task crashes fail the run.
    FailStop,
    /// Retry crashed tasks in place with backoff; failures remain fatal.
    RetrySameProc,
    /// Retry crashes in place *and* replan the unstarted subgraph onto
    /// surviving processors when a processor dies.
    #[default]
    MigrateReplan,
}

impl RecoveryPolicy {
    /// Stable label used in figures and traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::FailStop => "fail-stop",
            Self::RetrySameProc => "retry-same",
            Self::MigrateReplan => "migrate-replan",
        }
    }

    /// All policies, in damage-to-resilience order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::FailStop, Self::RetrySameProc, Self::MigrateReplan]
    }
}

/// Recovery tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// The policy.
    pub policy: RecoveryPolicy,
    /// Backoff before retrying a crashed task, as a fraction of the task's
    /// expected duration on its processor (doubled per extra retry).
    pub backoff: f64,
    /// Maximum retries per task (transient crashes occur once per task, so
    /// 1 suffices; 0 turns `RetrySameProc` into `FailStop` for crashes).
    pub max_retries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            policy: RecoveryPolicy::MigrateReplan,
            backoff: 0.25,
            max_retries: 3,
        }
    }
}

impl RecoveryConfig {
    /// Config for `policy` with default knobs.
    #[must_use]
    pub fn new(policy: RecoveryPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }
}

/// Why a realization failed to complete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailReason {
    /// A processor with unfinished work died and the policy cannot migrate.
    ProcessorLost(ProcId),
    /// A task crashed and the policy cannot retry (or retries exhausted).
    TaskCrashed(TaskId),
    /// Every processor died before the DAG completed (`MigrateReplan` only;
    /// the generator's survivor rule makes this unreachable for generated
    /// scenarios, but hand-built ones may trigger it).
    NoProcessorsLeft,
}

/// Outcome of executing one realization through a fault scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// All tasks finished; the realized makespan.
    Completed {
        /// The realized makespan.
        makespan: f64,
    },
    /// The run aborted at `at`.
    Failed {
        /// When the run was declared failed.
        at: f64,
        /// Why it failed.
        reason: FailReason,
    },
}

impl Outcome {
    /// The makespan when completed.
    #[must_use]
    pub fn makespan(&self) -> Option<f64> {
        match *self {
            Self::Completed { makespan } => Some(makespan),
            Self::Failed { .. } => None,
        }
    }
}

/// Recovery effort spent during one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Number of replans triggered by permanent failures.
    pub replans: usize,
    /// Number of task retries after transient crashes.
    pub retries: usize,
    /// Work (in time units at full speed) lost to aborts and crashes.
    pub lost_work: f64,
    /// Total backoff delay inserted before retries.
    pub backoff_delay: f64,
}

impl RecoveryStats {
    /// Accumulates another run's stats (used by the Monte Carlo
    /// aggregation).
    pub fn absorb(&mut self, other: &Self) {
        self.replans += other.replans;
        self.retries += other.retries;
        self.lost_work += other.lost_work;
        self.backoff_delay += other.backoff_delay;
    }
}

/// A timestamped recovery event, for traces and debugging.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// Processor `proc` died at `at`.
    ProcessorFailed {
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// `task` was running on `proc` when it died; its work is lost.
    TaskAborted {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// `task`'s first attempt on `proc` crashed at `at`.
    TaskCrashed {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// `task` restarted on `proc` at `at` (after backoff).
    TaskRetried {
        /// Task.
        task: TaskId,
        /// Processor.
        proc: ProcId,
        /// Time.
        at: f64,
    },
    /// The unstarted subgraph (`moved` tasks) was re-planned at `at`.
    Replanned {
        /// Time.
        at: f64,
        /// Number of tasks whose queue slot changed.
        moved: usize,
    },
}

impl RecoveryEvent {
    /// Event timestamp.
    #[must_use]
    pub fn at(&self) -> f64 {
        match *self {
            Self::ProcessorFailed { at, .. }
            | Self::TaskAborted { at, .. }
            | Self::TaskCrashed { at, .. }
            | Self::TaskRetried { at, .. }
            | Self::Replanned { at, .. } => at,
        }
    }

    /// The processor lane the event belongs to, when it has one.
    #[must_use]
    pub fn lane(&self) -> Option<ProcId> {
        match *self {
            Self::ProcessorFailed { proc, .. }
            | Self::TaskAborted { proc, .. }
            | Self::TaskCrashed { proc, .. }
            | Self::TaskRetried { proc, .. } => Some(proc),
            Self::Replanned { .. } => None,
        }
    }

    /// Human-readable label for trace viewers.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            Self::ProcessorFailed { proc, .. } => format!("fail {proc}"),
            Self::TaskAborted { task, .. } => format!("abort {task}"),
            Self::TaskCrashed { task, .. } => format!("crash {task}"),
            Self::TaskRetried { task, .. } => format!("retry {task}"),
            Self::Replanned { moved, .. } => format!("replan {moved}"),
        }
    }
}

/// Full result of one faulty execution.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// Completed-or-failed.
    pub outcome: Outcome,
    /// The schedule that actually executed (placement + per-processor
    /// order), present only when the run completed.
    pub schedule: Option<Schedule>,
    /// Realized start times (NaN for tasks that never ran).
    pub start: Vec<f64>,
    /// Realized finish times (NaN for tasks that never finished).
    pub finish: Vec<f64>,
    /// Recovery effort.
    pub stats: RecoveryStats,
    /// Timestamped recovery events, in occurrence order.
    pub events: Vec<RecoveryEvent>,
}

/// One task either running or committed to run on a processor.
#[derive(Debug, Clone, Copy)]
struct Running {
    task: TaskId,
    start: f64,
    finish: f64,
}

/// Executes `plan` against realized `durations` (an `n × m` matrix) and a
/// fault `scenario` under the given recovery policy.
///
/// The executor is *omniscient about the present, blind to the future*:
/// dispatch decisions use realized finish times of completed work (as an
/// online runtime observing its own history would), while replans estimate
/// remaining work with expected durations (the scheduler cannot see
/// unrevealed draws).
///
/// # Panics
/// Panics when `durations` is not `task_count × proc_count`.
#[must_use]
pub fn execute_with_faults(
    inst: &Instance,
    plan: &Schedule,
    durations: &Matrix,
    scenario: &FaultScenario,
    cfg: &RecoveryConfig,
) -> FaultRun {
    let n = inst.task_count();
    let m = inst.proc_count();
    assert!(
        durations.rows() == n && durations.cols() == m,
        "durations must be {n}x{m}, got {}x{}",
        durations.rows(),
        durations.cols()
    );

    let windows = scenario.windows_by_proc(m);
    let mut failures = scenario.failures.clone();
    failures.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.proc.cmp(&b.proc)));
    let mut next_failure = 0usize;

    let mut queue: Vec<VecDeque<TaskId>> = (0..m)
        .map(|p| plan.tasks_on(ProcId(p as u32)).iter().copied().collect())
        .collect();
    let mut avail = Availability::all_up(m);
    let mut running: Vec<Option<Running>> = vec![None; m];
    let mut finished = vec![false; n];
    let mut start = vec![f64::NAN; n];
    let mut finish = vec![f64::NAN; n];
    // Execution placement; starts as the plan and is overwritten whenever a
    // task is (re-)dispatched, so communication uses actual locations.
    let mut placement: Vec<ProcId> = plan.assignment().to_vec();
    let mut exec_order: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut retried = vec![0u32; n];
    let mut proc_free = vec![0.0f64; m];
    let mut done = 0usize;
    let mut stats = RecoveryStats::default();
    let mut events: Vec<RecoveryEvent> = Vec::new();
    // Upward ranks for replanning, computed on first use.
    let mut replan_order: Option<Vec<TaskId>> = None;

    let fail = |at: f64,
                reason: FailReason,
                start: Vec<f64>,
                finish: Vec<f64>,
                stats: RecoveryStats,
                events: Vec<RecoveryEvent>| FaultRun {
        outcome: Outcome::Failed { at, reason },
        schedule: None,
        start,
        finish,
        stats,
        events,
    };

    loop {
        // Dispatch: start the head of every idle, alive processor's queue
        // whose predecessors are all finished. Repeat until a fixed point —
        // one completion can ready several heads.
        let mut dispatched = true;
        while dispatched {
            dispatched = false;
            for p in 0..m {
                if !avail.is_up(ProcId(p as u32)) || running[p].is_some() {
                    continue;
                }
                let Some(&t) = queue[p].front() else { continue };
                if !inst
                    .graph
                    .predecessors(t)
                    .iter()
                    .all(|e| finished[e.task.index()])
                {
                    continue;
                }
                // Earliest start: processor free + data arrivals from the
                // predecessors' *actual* placements.
                let mut s = proc_free[p];
                for e in inst.graph.predecessors(t) {
                    let arrive = finish[e.task.index()]
                        + inst.platform.comm_time(
                            e.data,
                            placement[e.task.index()],
                            ProcId(p as u32),
                        );
                    if arrive > s {
                        s = arrive;
                    }
                }
                let base = durations[(t.index(), p)] * scenario.straggler_factor(t);
                let fin;
                if retried[t.index()] == 0 && scenario.crash_of(t).is_some() {
                    let fraction = scenario.crash_of(t).expect("checked above");
                    let crash_at = advance_through(&windows[p], s, fraction * base);
                    events.push(RecoveryEvent::TaskCrashed {
                        task: t,
                        proc: ProcId(p as u32),
                        at: crash_at,
                    });
                    if cfg.policy == RecoveryPolicy::FailStop || cfg.max_retries == 0 {
                        return fail(
                            crash_at,
                            FailReason::TaskCrashed(t),
                            start,
                            finish,
                            stats,
                            events,
                        );
                    }
                    // Retry in place after backoff (crashes fire once, so a
                    // single retry always suffices).
                    retried[t.index()] = 1;
                    stats.retries += 1;
                    stats.lost_work += fraction * base;
                    let backoff = cfg.backoff * inst.timing.expected(t.index(), ProcId(p as u32));
                    stats.backoff_delay += backoff;
                    let restart = crash_at + backoff;
                    events.push(RecoveryEvent::TaskRetried {
                        task: t,
                        proc: ProcId(p as u32),
                        at: restart,
                    });
                    fin = advance_through(&windows[p], restart, base);
                } else {
                    fin = advance_through(&windows[p], s, base);
                }
                queue[p].pop_front();
                running[p] = Some(Running {
                    task: t,
                    start: s,
                    finish: fin,
                });
                start[t.index()] = s;
                placement[t.index()] = ProcId(p as u32);
                dispatched = true;
            }
        }
        if done == n {
            break;
        }

        // Next event: earliest completion vs earliest pending failure, with
        // deterministic tie-breaks (completion first, then processor id).
        let next_fin: Option<(f64, usize)> = running
            .iter()
            .enumerate()
            .filter_map(|(p, r)| r.as_ref().map(|r| (r.finish, p)))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let pending_failure = failures.get(next_failure);

        let take_completion = match (next_fin, pending_failure) {
            (Some((f, _)), Some(pf)) => f <= pf.at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                // No running work, no pending failures, tasks remain: the
                // plan queues stalled. Unreachable for valid plans (list
                // schedules always progress); fail defensively rather than
                // spin.
                let at = proc_free.iter().copied().fold(0.0f64, f64::max);
                return fail(
                    at,
                    FailReason::NoProcessorsLeft,
                    start,
                    finish,
                    stats,
                    events,
                );
            }
        };

        if take_completion {
            let (_, p) = next_fin.expect("completion branch requires a running task");
            let r = running[p].take().expect("selected processor is running");
            finished[r.task.index()] = true;
            finish[r.task.index()] = r.finish;
            proc_free[p] = r.finish;
            exec_order[p].push(r.task);
            done += 1;
            continue;
        }

        // Permanent processor failure.
        let f = *failures
            .get(next_failure)
            .expect("failure branch requires a pending failure");
        next_failure += 1;
        let p = f.proc.index();
        if !avail.is_up(f.proc) {
            continue;
        }
        avail.mark_down(f.proc, f.at);
        events.push(RecoveryEvent::ProcessorFailed {
            proc: f.proc,
            at: f.at,
        });
        if let Some(r) = running[p].take() {
            // A committed task whose interval crosses the failure instant is
            // aborted; one committed entirely before it already completed
            // (completion events at time <= f.at were drained first).
            stats.lost_work += (f.at - r.start).max(0.0);
            events.push(RecoveryEvent::TaskAborted {
                task: r.task,
                proc: f.proc,
                at: f.at,
            });
            start[r.task.index()] = f64::NAN;
            queue[p].push_front(r.task);
        }
        proc_free[p] = f.at;
        if queue[p].is_empty() {
            // Harmless failure: the processor had nothing left to do.
            continue;
        }
        match cfg.policy {
            RecoveryPolicy::FailStop | RecoveryPolicy::RetrySameProc => {
                return fail(
                    f.at,
                    FailReason::ProcessorLost(f.proc),
                    start,
                    finish,
                    stats,
                    events,
                );
            }
            RecoveryPolicy::MigrateReplan => {
                if !avail.any_up() {
                    return fail(
                        f.at,
                        FailReason::NoProcessorsLeft,
                        start,
                        finish,
                        stats,
                        events,
                    );
                }
                let order = replan_order.get_or_insert_with(|| rank_order_for(inst));
                let moved = replan(
                    inst, order, &avail, &finished, &finish, &running, &placement, &proc_free,
                    f.at, &mut queue,
                );
                stats.replans += 1;
                events.push(RecoveryEvent::Replanned { at: f.at, moved });
            }
        }
    }

    let makespan = finish.iter().copied().fold(0.0f64, f64::max);
    let schedule = Schedule::from_proc_lists(n, exec_order)
        .expect("faulty executor completes every task exactly once");
    FaultRun {
        outcome: Outcome::Completed { makespan },
        schedule: Some(schedule),
        start,
        finish,
        stats,
        events,
    }
}

/// Tasks in decreasing expected-time upward-rank order (HEFT's priority),
/// the same prioritization `dynamic.rs` uses.
fn rank_order_for(inst: &Instance) -> Vec<TaskId> {
    let ranks = rds_graph::paths::bottom_levels(
        &inst.graph,
        |t: TaskId| inst.timing.mean_expected(t.index()),
        |_, _, data| inst.platform.mean_comm_time(data),
    );
    let mut order: Vec<TaskId> = inst.graph.tasks().collect();
    order.sort_by(|a, b| {
        ranks[b.index()]
            .total_cmp(&ranks[a.index()])
            .then_with(|| a.cmp(b))
    });
    order
}

/// Re-plans every unfinished, uncommitted task onto the alive processors by
/// earliest estimated finish time, rewriting the per-processor queues.
/// Returns the number of tasks re-queued.
#[allow(clippy::too_many_arguments)]
fn replan(
    inst: &Instance,
    order: &[TaskId],
    avail: &Availability,
    finished: &[bool],
    finish: &[f64],
    running: &[Option<Running>],
    placement: &[ProcId],
    proc_free: &[f64],
    now: f64,
    queue: &mut [VecDeque<TaskId>],
) -> usize {
    let n = inst.task_count();
    let m = inst.proc_count();

    // Committed (running) tasks stay where they are; mark them.
    let mut committed = vec![false; n];
    for r in running.iter().flatten() {
        committed[r.task.index()] = true;
    }

    // Estimated availability of each alive processor, and estimated finish
    // times: realized for finished work, committed for running work,
    // estimated (expected durations) for re-planned work.
    let mut free: Vec<f64> = (0..m)
        .map(|p| {
            if !avail.is_up(ProcId(p as u32)) {
                f64::INFINITY
            } else {
                let busy = running[p].as_ref().map_or(0.0, |r| r.finish);
                now.max(proc_free[p]).max(busy)
            }
        })
        .collect();
    let mut est_finish: Vec<f64> = (0..n)
        .map(|t| if finished[t] { finish[t] } else { f64::NAN })
        .collect();
    for r in running.iter().flatten() {
        est_finish[r.task.index()] = r.finish;
    }
    let mut est_place: Vec<ProcId> = placement.to_vec();

    for q in queue.iter_mut() {
        q.clear();
    }
    let mut moved = 0usize;
    for &t in order {
        let ti = t.index();
        if finished[ti] || committed[ti] {
            continue;
        }
        // Earliest estimated finish over alive processors; ties by id, the
        // same comparison HEFT's placement loop uses.
        let mut best: Option<(f64, ProcId)> = None;
        for p in 0..m {
            if !avail.is_up(ProcId(p as u32)) {
                continue;
            }
            let mut est = free[p];
            for e in inst.graph.predecessors(t) {
                let arrive = est_finish[e.task.index()]
                    + inst
                        .platform
                        .comm_time(e.data, est_place[e.task.index()], ProcId(p as u32));
                if arrive > est {
                    est = arrive;
                }
            }
            let eft = est + inst.timing.expected(ti, ProcId(p as u32));
            if best.is_none_or(|(beft, _)| eft < beft - 1e-12) {
                best = Some((eft, ProcId(p as u32)));
            }
        }
        let (eft, p) = best.expect("replan requires at least one alive processor");
        queue[p.index()].push_back(t);
        free[p.index()] = eft;
        est_finish[ti] = eft;
        est_place[ti] = p;
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, ProcessorFailure, Straggler, TaskCrash};
    use crate::instance::InstanceSpec;
    use crate::timing;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(30, 4)
            .seed(seed)
            .uncertainty_level(4.0)
            .build()
            .unwrap()
    }

    fn round_robin(i: &Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&i.graph).unwrap();
        let m = i.proc_count();
        let assignment: Vec<ProcId> = (0..i.task_count())
            .map(|t| ProcId((t % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    fn expected_matrix(i: &Instance) -> Matrix {
        Matrix::from_fn(i.task_count(), i.proc_count(), |t, p| {
            i.timing.expected(t, ProcId(p as u32))
        })
    }

    /// With a quiet scenario the executor must reproduce the static timing
    /// of the plan exactly, for every policy.
    #[test]
    fn quiet_scenario_matches_static_timing() {
        let i = inst(1);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let per_task: Vec<f64> = (0..i.task_count())
            .map(|t| durations[(t, s.proc_of(TaskId(t as u32)).index())])
            .collect();
        let ds = crate::disjunctive::DisjunctiveGraph::build(&i.graph, &s).unwrap();
        let reference = timing::evaluate_with_durations(&ds, &s, &i.platform, &per_task).makespan;
        for policy in RecoveryPolicy::all() {
            let run = execute_with_faults(
                &i,
                &s,
                &durations,
                &FaultScenario::default(),
                &RecoveryConfig::new(policy),
            );
            let makespan = run.outcome.makespan().expect("quiet run completes");
            assert!(
                (makespan - reference).abs() < 1e-9,
                "{policy:?}: {makespan} != static {reference}"
            );
            assert_eq!(run.stats, RecoveryStats::default());
            assert!(run.events.is_empty());
            assert_eq!(run.schedule.as_ref().unwrap(), &s);
        }
    }

    #[test]
    fn failstop_fails_on_processor_failure_with_pending_work() {
        let i = inst(2);
        let s = round_robin(&i);
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: 1e-6,
            }],
            ..FaultScenario::default()
        };
        let run = execute_with_faults(
            &i,
            &s,
            &expected_matrix(&i),
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        );
        match run.outcome {
            Outcome::Failed { reason, .. } => {
                assert_eq!(reason, FailReason::ProcessorLost(ProcId(0)));
            }
            Outcome::Completed { .. } => panic!("fail-stop must fail when a loaded proc dies"),
        }
        assert!(run.schedule.is_none());
    }

    #[test]
    fn late_failure_after_all_work_is_harmless() {
        let i = inst(3);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let quiet = execute_with_faults(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        );
        let m0 = quiet.outcome.makespan().unwrap();
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: m0 + 1.0,
            }],
            ..FaultScenario::default()
        };
        let run = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        );
        assert_eq!(run.outcome.makespan(), Some(m0));
    }

    #[test]
    fn migrate_replan_completes_despite_failure() {
        let i = inst(4);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let quiet = execute_with_faults(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
        );
        let m0 = quiet.outcome.makespan().unwrap();
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(0),
                at: 0.3 * m0,
            }],
            ..FaultScenario::default()
        };
        let run = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
        );
        let makespan = run.outcome.makespan().expect("migrate-replan completes");
        // Work was still outstanding at the failure instant (the quiet run
        // finishes at m0 > 0.3*m0), and replanned tasks dispatch no earlier
        // than the failure, so the realized makespan must exceed it. (The
        // replan MAY beat m0 outright: EFT on the survivors can improve on a
        // round-robin plan, so `makespan >= m0` would be unsound.)
        assert!(
            makespan > 0.3 * m0,
            "unfinished work cannot end before the failure"
        );
        assert!(run.stats.replans >= 1);
        let schedule = run.schedule.expect("completed run has a schedule");
        assert!(schedule.validate_against(&i.graph).is_ok());
        // Nothing may *finish* on the dead processor after its death.
        for &t in schedule.tasks_on(ProcId(0)) {
            assert!(
                run.finish[t.index()] <= 0.3 * m0 + 1e-9,
                "{t} finished on the dead processor after it died"
            );
        }
        // Physical validity of the realized timeline: precedence (comm >= 0
        // means finish-before-start suffices) and per-proc exclusivity.
        for t in i.graph.tasks() {
            for e in i.graph.predecessors(t) {
                assert!(run.start[t.index()] >= run.finish[e.task.index()] - 1e-9);
            }
        }
        for p in 0..i.proc_count() {
            let tasks = schedule.tasks_on(ProcId(p as u32));
            for w in tasks.windows(2) {
                assert!(run.start[w[1].index()] >= run.finish[w[0].index()] - 1e-9);
            }
        }
    }

    #[test]
    fn retry_recovers_from_crash_failstop_does_not() {
        let i = inst(5);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let scenario = FaultScenario {
            crashes: vec![TaskCrash {
                task: TaskId(0),
                fraction: 0.5,
            }],
            ..FaultScenario::default()
        };
        let failstop = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        );
        assert!(matches!(
            failstop.outcome,
            Outcome::Failed {
                reason: FailReason::TaskCrashed(TaskId(0)),
                ..
            }
        ));
        let retry = execute_with_faults(
            &i,
            &s,
            &durations,
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::RetrySameProc),
        );
        let quiet = execute_with_faults(
            &i,
            &s,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::new(RecoveryPolicy::RetrySameProc),
        );
        let with_crash = retry.outcome.makespan().expect("retry completes");
        let without = quiet.outcome.makespan().unwrap();
        assert!(with_crash >= without, "a crash cannot make the run faster");
        assert_eq!(retry.stats.retries, 1);
        assert!(retry.stats.lost_work > 0.0);
        assert!(retry.stats.backoff_delay > 0.0);
    }

    #[test]
    fn straggler_only_delays_never_fails() {
        let i = inst(6);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let scenario = FaultScenario {
            stragglers: vec![Straggler {
                task: TaskId(3),
                factor: 5.0,
            }],
            ..FaultScenario::default()
        };
        for policy in RecoveryPolicy::all() {
            let run =
                execute_with_faults(&i, &s, &durations, &scenario, &RecoveryConfig::new(policy));
            assert!(run.outcome.makespan().is_some(), "{policy:?} must complete");
        }
    }

    #[test]
    fn generated_scenarios_always_complete_under_migrate_replan() {
        let i = inst(7);
        let s = round_robin(&i);
        let durations = expected_matrix(&i);
        let cfg = FaultConfig {
            failure_rate: 0.5,
            crash_rate: 0.3,
            horizon: 50.0,
            ..FaultConfig::default()
        };
        for seed in 0..25 {
            let scenario = FaultScenario::generate(&cfg, i.task_count(), i.proc_count(), seed);
            let run = execute_with_faults(
                &i,
                &s,
                &durations,
                &scenario,
                &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
            );
            let makespan = run
                .outcome
                .makespan()
                .expect("migrate-replan completes every generated scenario");
            assert!(makespan.is_finite() && makespan > 0.0);
            if let Some(sched) = run.schedule {
                assert!(sched.validate_against(&i.graph).is_ok());
            }
        }
    }
}

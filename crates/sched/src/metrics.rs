//! Robustness metrics (Definitions 3.6 and 3.7).
//!
//! Given the expected makespan `M₀` and realized makespans `M_1..M_N`:
//!
//! * relative tardiness `δ_i = max(0, M_i − M₀) / M₀`;
//! * `R1 = 1 / E[δ]` — tardiness-based robustness;
//! * miss rate `α = |{i : M_i > M₀}| / N`;
//! * `R2 = 1 / α` — miss-rate-based robustness.
//!
//! Both are `+∞` for a schedule that never runs late (e.g. `UL ≡ 1`); the
//! experiment harness guards ratios accordingly.

use rds_stats::describe::Summary;

use crate::recovery::RecoveryStats;

/// Relative tardiness `δ` of one realization.
///
/// # Panics
/// Panics when `expected <= 0` — makespans of non-empty schedules are
/// strictly positive.
#[inline]
pub fn relative_tardiness(realized: f64, expected: f64) -> f64 {
    assert!(expected > 0.0, "expected makespan must be positive");
    (realized - expected).max(0.0) / expected
}

/// `R1 = 1 / E[δ]` from a mean tardiness (`+∞` when the mean is zero).
#[inline]
pub fn r1_from_tardiness(mean_tardiness: f64) -> f64 {
    if mean_tardiness <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / mean_tardiness
    }
}

/// `R2 = 1 / α` from a miss rate (`+∞` when no realization missed).
#[inline]
pub fn r2_from_miss_rate(miss_rate: f64) -> f64 {
    if miss_rate <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / miss_rate
    }
}

/// Aggregated Monte Carlo results for one schedule.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Expected makespan `M₀` (deterministic evaluation with `UL·B`).
    pub expected_makespan: f64,
    /// Average slack `σ̄` of the schedule (expected durations).
    pub average_slack: f64,
    /// Number of realizations `N`.
    pub realizations: usize,
    /// Mean realized makespan `E[M_i]`.
    pub mean_makespan: f64,
    /// Mean relative tardiness `E[δ]`.
    pub mean_tardiness: f64,
    /// Tardiness-based robustness `R1`.
    pub r1: f64,
    /// Miss rate `α`.
    pub miss_rate: f64,
    /// Miss-rate-based robustness `R2`.
    pub r2: f64,
    /// Summary of the realized makespans (quantiles etc.).
    pub makespans: Summary,
}

impl RobustnessReport {
    /// Dispersion of the realized makespans: `std(M_i) / mean(M_i)` —
    /// the coefficient-of-variation robustness surrogate used by several
    /// works the paper surveys (smaller = more stable).
    #[must_use]
    pub fn makespan_cov(&self) -> f64 {
        self.makespans.std_dev() / self.makespans.mean()
    }

    /// Tail ratio `quantile_q(M_i) / M₀` — how bad the worst `1−q` of
    /// realizations get, relative to the promise `M₀`.
    ///
    /// # Panics
    /// Panics when `q` is outside `[0,1]`.
    #[must_use]
    pub fn quantile_ratio(&self, q: f64) -> f64 {
        self.makespans.quantile(q) / self.expected_makespan
    }

    /// Probabilistic guarantee `P(M_i ≤ (1+γ)·M₀)`: the fraction of
    /// realizations finishing within a `γ` overrun budget. `γ = 0` gives
    /// `1 − α` (the complement of the miss rate).
    ///
    /// # Panics
    /// Panics when `gamma` is negative.
    #[must_use]
    pub fn prob_within(&self, gamma: f64) -> f64 {
        assert!(gamma >= 0.0, "overrun budget must be non-negative");
        1.0 - self
            .makespans
            .fraction_above((1.0 + gamma) * self.expected_makespan)
    }

    /// Mean *absolute* overrun `E[max(0, M_i − M₀)]` in time units
    /// (`mean_tardiness · M₀`).
    #[must_use]
    pub fn expected_overrun(&self) -> f64 {
        self.mean_tardiness * self.expected_makespan
    }

    /// Builds the report from `M₀`, the schedule's average slack and the
    /// realized makespans.
    ///
    /// # Panics
    /// Panics when `makespans` is empty or `expected_makespan <= 0`.
    pub fn from_makespans(expected_makespan: f64, average_slack: f64, makespans: Vec<f64>) -> Self {
        assert!(
            !makespans.is_empty(),
            "at least one realization is required"
        );
        assert!(
            expected_makespan > 0.0,
            "expected makespan must be positive"
        );
        let n = makespans.len();
        let mean_makespan = makespans.iter().sum::<f64>() / n as f64;
        let mean_tardiness = makespans
            .iter()
            .map(|&m| relative_tardiness(m, expected_makespan))
            .sum::<f64>()
            / n as f64;
        let summary = Summary::from_samples(makespans);
        let miss_rate = summary.fraction_above(expected_makespan);
        Self {
            expected_makespan,
            average_slack,
            realizations: n,
            mean_makespan,
            mean_tardiness,
            r1: r1_from_tardiness(mean_tardiness),
            miss_rate,
            r2: r2_from_miss_rate(miss_rate),
            makespans: summary,
        }
    }
}

/// Aggregated Monte Carlo results for one schedule executed through fault
/// scenarios under a recovery policy (see `crate::recovery`).
///
/// Unlike [`RobustnessReport`], realizations can *fail* (fail-stop policies
/// give up on permanent damage); `R1`/`R2` are computed over the completed
/// realizations while `miss_rate` counts a failed realization as a miss —
/// a run that never finishes certainly exceeded `M₀`.
#[derive(Debug, Clone)]
pub struct FaultRobustnessReport {
    /// Expected makespan `M₀` of the fault-free plan.
    pub expected_makespan: f64,
    /// Average slack `σ̄` of the plan (expected durations).
    pub average_slack: f64,
    /// Number of realizations `N`.
    pub realizations: usize,
    /// Realizations that completed all tasks.
    pub completed: usize,
    /// `1 − completed / N`.
    pub failed_rate: f64,
    /// Mean realized makespan over *completed* realizations (NaN when none
    /// completed).
    pub mean_makespan: f64,
    /// Mean relative tardiness over completed realizations (NaN when none
    /// completed).
    pub mean_tardiness: f64,
    /// `R1 = 1/E[δ]` over completed realizations.
    pub r1: f64,
    /// Fraction of realizations exceeding `M₀`, counting failures as
    /// misses.
    pub miss_rate: f64,
    /// `R2 = 1/α` with the failure-inclusive miss rate.
    pub r2: f64,
    /// Mean replans per realization.
    pub mean_replans: f64,
    /// Mean task retries per realization.
    pub mean_retries: f64,
    /// Mean work lost to aborts/crashes per realization (time units).
    pub mean_lost_work: f64,
    /// Mean backoff delay inserted per realization (time units).
    pub mean_backoff_delay: f64,
    /// Reliability: `P(run completes) = completed / N = 1 − failed_rate`.
    pub completion_probability: f64,
    /// Mean tasks completed by a replica per realization.
    pub mean_replica_wins: f64,
    /// Mean time consumed by replica executions per realization.
    pub mean_replica_work: f64,
    /// Mean wasted duplicate work per realization (losing copies).
    pub mean_duplicate_work: f64,
    /// Mean replica promotions (sole-surviving-copy events) per
    /// realization.
    pub mean_promotions: f64,
    /// Mean extra time paid for checkpoints per realization.
    pub mean_checkpoint_overhead: f64,
    /// Mean work preserved by checkpoints per realization.
    pub mean_saved_work: f64,
    /// Mean sentinel trigger firings per realization.
    pub mean_sentinel_fires: f64,
    /// Mean sentinel-initiated replans per realization (the repair count;
    /// failure-forced replans are under [`Self::mean_replans`]).
    pub mean_sentinel_replans: f64,
    /// Mean speculation armings per realization.
    pub mean_speculations: f64,
    /// Mean optional tasks dropped per realization (degradation events).
    pub mean_dropped_tasks: f64,
    /// Mean dropped task weight per realization — divide by the graph's
    /// total weight for a normalized degradation level.
    pub mean_dropped_weight: f64,
    /// The ε-deadline the run was executed against (adaptive runs only).
    pub deadline: Option<f64>,
    /// Fraction of realizations that missed the deadline (completions
    /// beyond it plus failures); `None` until a deadline is attached.
    pub deadline_miss_rate: Option<f64>,
    /// Summary of the completed realized makespans (`None` when every
    /// realization failed).
    pub makespans: Option<Summary>,
}

impl FaultRobustnessReport {
    /// Builds the report from `M₀`, the plan's average slack, the completed
    /// makespans, the failed-realization count, and the summed
    /// [`RecoveryStats`] across all realizations.
    ///
    /// `mean_makespan` is the expected makespan *conditioned on
    /// completion*; pair it with [`Self::completion_probability`] (or use
    /// [`Self::effective_mean`]) when comparing policies whose completion
    /// rates differ.
    ///
    /// # Panics
    /// Panics when there are zero realizations in total or
    /// `expected_makespan <= 0`.
    pub fn from_outcomes(
        expected_makespan: f64,
        average_slack: f64,
        completed_makespans: Vec<f64>,
        failed: usize,
        totals: &RecoveryStats,
    ) -> Self {
        let completed = completed_makespans.len();
        let n = completed + failed;
        assert!(n > 0, "at least one realization is required");
        assert!(
            expected_makespan > 0.0,
            "expected makespan must be positive"
        );
        let nf = n as f64;
        let (mean_makespan, mean_tardiness, late) = if completed == 0 {
            (f64::NAN, f64::NAN, 0usize)
        } else {
            let mean = completed_makespans.iter().sum::<f64>() / completed as f64;
            let tard = completed_makespans
                .iter()
                .map(|&m| relative_tardiness(m, expected_makespan))
                .sum::<f64>()
                / completed as f64;
            let late = completed_makespans
                .iter()
                .filter(|&&m| m > expected_makespan)
                .count();
            (mean, tard, late)
        };
        let miss_rate = (late + failed) as f64 / nf;
        Self {
            expected_makespan,
            average_slack,
            realizations: n,
            completed,
            failed_rate: failed as f64 / nf,
            mean_makespan,
            mean_tardiness,
            r1: if completed == 0 {
                0.0 // every realization failed: no robustness to speak of
            } else {
                r1_from_tardiness(mean_tardiness)
            },
            miss_rate,
            r2: r2_from_miss_rate(miss_rate),
            mean_replans: totals.replans as f64 / nf,
            mean_retries: totals.retries as f64 / nf,
            mean_lost_work: totals.lost_work / nf,
            mean_backoff_delay: totals.backoff_delay / nf,
            completion_probability: completed as f64 / nf,
            mean_replica_wins: totals.replica_wins as f64 / nf,
            mean_replica_work: totals.replica_work / nf,
            mean_duplicate_work: totals.duplicate_work / nf,
            mean_promotions: totals.promotions as f64 / nf,
            mean_checkpoint_overhead: totals.checkpoint_overhead / nf,
            mean_saved_work: totals.saved_work / nf,
            mean_sentinel_fires: totals.sentinel_fires as f64 / nf,
            mean_sentinel_replans: totals.sentinel_replans as f64 / nf,
            mean_speculations: totals.speculations as f64 / nf,
            mean_dropped_tasks: totals.dropped_tasks as f64 / nf,
            mean_dropped_weight: totals.dropped_weight / nf,
            deadline: None,
            deadline_miss_rate: None,
            makespans: if completed == 0 {
                None
            } else {
                Some(Summary::from_samples(completed_makespans))
            },
        }
    }

    /// Attaches an ε-deadline and computes the deadline miss rate: the
    /// fraction of realizations finishing strictly beyond `deadline`, with
    /// failed realizations always counted as misses. Degraded completions
    /// (dropped tasks) that land within the deadline are *not* misses —
    /// the degradation level is reported separately via
    /// [`Self::mean_dropped_weight`].
    ///
    /// # Panics
    /// Panics when `deadline` is not positive and finite.
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        assert!(
            deadline > 0.0 && deadline.is_finite(),
            "deadline must be positive and finite"
        );
        let failed = self.realizations - self.completed;
        let late = self
            .makespans
            .as_ref()
            .map_or(0.0, |s| s.fraction_above(deadline) * self.completed as f64);
        self.deadline = Some(deadline);
        self.deadline_miss_rate = Some((late + failed as f64) / self.realizations as f64);
        self
    }

    /// Replication overhead: mean wasted duplicate work per realization,
    /// relative to the fault-free makespan `M₀` — "how much redundant
    /// compute did the insurance cost, in units of one nominal run".
    #[must_use]
    pub fn replication_overhead(&self) -> f64 {
        self.mean_duplicate_work / self.expected_makespan
    }

    /// Effective mean makespan with failed realizations charged `penalty`
    /// time units each. A survivor-biased plain mean would reward policies
    /// that abandon hard realizations; charging a pessimistic
    /// restart-from-scratch bound (e.g. twice the serial expected work)
    /// makes policies comparable on one axis.
    #[must_use]
    pub fn effective_mean(&self, penalty: f64) -> f64 {
        let failed = self.realizations - self.completed;
        let completed_sum = if self.completed == 0 {
            0.0
        } else {
            self.mean_makespan * self.completed as f64
        };
        (completed_sum + penalty * failed as f64) / self.realizations as f64
    }

    /// Bootstrap 95% confidence interval for [`Self::effective_mean`]:
    /// resamples the per-realization effective makespans (completed values
    /// plus one `penalty` entry per failure). Deterministic in `seed`;
    /// `None` when there are no realizations or `resamples` is zero.
    #[must_use]
    pub fn effective_mean_ci(
        &self,
        penalty: f64,
        resamples: usize,
        seed: u64,
    ) -> Option<rds_stats::BootstrapCi> {
        let failed = self.realizations - self.completed;
        let mut samples: Vec<f64> = self
            .makespans
            .as_ref()
            .map(|s| s.sorted().to_vec())
            .unwrap_or_default();
        samples.extend(std::iter::repeat(penalty).take(failed));
        rds_stats::bootstrap_mean_ci95(&samples, resamples, seed)
    }

    /// Bootstrap 95% confidence interval for the deadline miss rate
    /// (resampling per-realization miss indicators, failures counted as
    /// misses). `None` when no deadline is attached, there are no
    /// realizations, or `resamples` is zero.
    #[must_use]
    pub fn deadline_miss_ci(&self, resamples: usize, seed: u64) -> Option<rds_stats::BootstrapCi> {
        let deadline = self.deadline?;
        let failed = self.realizations - self.completed;
        let mut indicators: Vec<f64> = self
            .makespans
            .as_ref()
            .map(|s| {
                s.sorted()
                    .iter()
                    .map(|&m| f64::from(u8::from(m > deadline)))
                    .collect()
            })
            .unwrap_or_default();
        indicators.extend(std::iter::repeat(1.0).take(failed));
        rds_stats::bootstrap_mean_ci95(&indicators, resamples, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tardiness_clamps_early_finishes() {
        assert_eq!(relative_tardiness(8.0, 10.0), 0.0);
        assert_eq!(relative_tardiness(15.0, 10.0), 0.5);
        assert_eq!(relative_tardiness(10.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tardiness_rejects_zero_expected() {
        let _ = relative_tardiness(1.0, 0.0);
    }

    #[test]
    fn r1_r2_inverses_and_infinities() {
        assert_eq!(r1_from_tardiness(0.5), 2.0);
        assert_eq!(r1_from_tardiness(0.0), f64::INFINITY);
        assert_eq!(r2_from_miss_rate(0.25), 4.0);
        assert_eq!(r2_from_miss_rate(0.0), f64::INFINITY);
    }

    #[test]
    fn report_hand_computed() {
        // M0 = 10; realizations 8, 12, 10, 14.
        // δ = 0, 0.2, 0, 0.4 -> mean 0.15; R1 = 1/0.15.
        // misses (strictly > 10): 12, 14 -> α = 0.5; R2 = 2.
        let r = RobustnessReport::from_makespans(10.0, 1.5, vec![8.0, 12.0, 10.0, 14.0]);
        assert_eq!(r.realizations, 4);
        assert_eq!(r.mean_makespan, 11.0);
        assert!((r.mean_tardiness - 0.15).abs() < 1e-12);
        assert!((r.r1 - 1.0 / 0.15).abs() < 1e-9);
        assert_eq!(r.miss_rate, 0.5);
        assert_eq!(r.r2, 2.0);
        assert_eq!(r.average_slack, 1.5);
        assert_eq!(r.makespans.max(), 14.0);
    }

    #[test]
    fn never_late_schedule_has_infinite_robustness() {
        let r = RobustnessReport::from_makespans(10.0, 0.0, vec![10.0, 9.0, 8.0]);
        assert_eq!(r.mean_tardiness, 0.0);
        assert_eq!(r.r1, f64::INFINITY);
        assert_eq!(r.miss_rate, 0.0);
        assert_eq!(r.r2, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "at least one realization")]
    fn empty_realizations_rejected() {
        let _ = RobustnessReport::from_makespans(10.0, 0.0, vec![]);
    }

    #[test]
    fn extended_metrics_hand_computed() {
        // M0 = 10; realizations 8, 12, 10, 14.
        let r = RobustnessReport::from_makespans(10.0, 0.0, vec![8.0, 12.0, 10.0, 14.0]);
        // P(M <= 1.1 * 10 = 11): {8, 10} of 4.
        assert_eq!(r.prob_within(0.1), 0.5);
        // P(M <= 1.4 * 10 = 14): all four (14 not strictly above).
        assert_eq!(r.prob_within(0.4), 1.0);
        // gamma=0 complements the miss rate.
        assert!((r.prob_within(0.0) - (1.0 - r.miss_rate)).abs() < 1e-12);
        // Max-quantile ratio.
        assert!((r.quantile_ratio(1.0) - 1.4).abs() < 1e-12);
        // Expected absolute overrun = 0.15 * 10.
        assert!((r.expected_overrun() - 1.5).abs() < 1e-12);
        // CoV is positive for a spread sample.
        assert!(r.makespan_cov() > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn prob_within_rejects_negative_budget() {
        let r = RobustnessReport::from_makespans(10.0, 0.0, vec![10.0]);
        let _ = r.prob_within(-0.1);
    }

    #[test]
    fn more_tardy_realizations_lower_r1() {
        let good = RobustnessReport::from_makespans(10.0, 0.0, vec![10.5, 10.5]);
        let bad = RobustnessReport::from_makespans(10.0, 0.0, vec![15.0, 15.0]);
        assert!(good.r1 > bad.r1);
    }

    #[test]
    fn fault_report_hand_computed() {
        // M0 = 10; completed 8, 12 (1 late), 2 failed of 4 total.
        let totals = RecoveryStats {
            replans: 3,
            retries: 1,
            lost_work: 5.0,
            backoff_delay: 2.0,
            replica_starts: 6,
            replica_wins: 2,
            replica_work: 8.0,
            duplicate_work: 6.0,
            promotions: 1,
            checkpoint_overhead: 1.0,
            saved_work: 3.0,
            sentinel_fires: 4,
            sentinel_replans: 2,
            speculations: 1,
            dropped_tasks: 2,
            dropped_weight: 3.0,
        };
        let r = FaultRobustnessReport::from_outcomes(10.0, 1.0, vec![8.0, 12.0], 2, &totals);
        assert_eq!(r.realizations, 4);
        assert_eq!(r.completed, 2);
        assert_eq!(r.failed_rate, 0.5);
        assert_eq!(r.completion_probability, 0.5);
        assert_eq!(r.mean_replica_wins, 0.5);
        assert_eq!(r.mean_replica_work, 2.0);
        assert_eq!(r.mean_duplicate_work, 1.5);
        assert_eq!(r.mean_promotions, 0.25);
        assert_eq!(r.mean_checkpoint_overhead, 0.25);
        assert_eq!(r.mean_saved_work, 0.75);
        // 1.5 units of duplicate work per realization over M0 = 10.
        assert!((r.replication_overhead() - 0.15).abs() < 1e-12);
        assert_eq!(r.mean_makespan, 10.0);
        // δ over completed: 0, 0.2 -> mean 0.1.
        assert!((r.mean_tardiness - 0.1).abs() < 1e-12);
        assert!((r.r1 - 10.0).abs() < 1e-9);
        // Misses: the late completion + both failures = 3/4.
        assert_eq!(r.miss_rate, 0.75);
        assert!((r.r2 - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.mean_replans, 0.75);
        assert_eq!(r.mean_retries, 0.25);
        assert_eq!(r.mean_lost_work, 1.25);
        assert_eq!(r.mean_backoff_delay, 0.5);
        // Effective mean with penalty 30: (8 + 12 + 30 + 30) / 4 = 20.
        assert_eq!(r.effective_mean(30.0), 20.0);
        assert!(r.makespans.is_some());
        assert_eq!(r.mean_sentinel_fires, 1.0);
        assert_eq!(r.mean_sentinel_replans, 0.5);
        assert_eq!(r.mean_speculations, 0.25);
        assert_eq!(r.mean_dropped_tasks, 0.5);
        assert_eq!(r.mean_dropped_weight, 0.75);
        assert!(r.deadline.is_none() && r.deadline_miss_rate.is_none());
        // ε-deadline 11: the 12 completion plus both failures miss -> 3/4.
        let r = r.with_deadline(11.0);
        assert_eq!(r.deadline, Some(11.0));
        assert_eq!(r.deadline_miss_rate, Some(0.75));
        // 13: only the failures miss.
        let r = r.with_deadline(13.0);
        assert_eq!(r.deadline_miss_rate, Some(0.5));
    }

    #[test]
    fn bootstrap_cis_bracket_the_point_estimates() {
        // 60 completions spread around 10, 20 failures.
        let ms: Vec<f64> = (0..60).map(|i| 8.0 + 0.1 * f64::from(i)).collect();
        let r = FaultRobustnessReport::from_outcomes(10.0, 1.0, ms, 20, &RecoveryStats::default())
            .with_deadline(12.0);
        let eff = r.effective_mean_ci(40.0, 300, 7).unwrap();
        assert!(eff.contains(r.effective_mean(40.0)));
        assert!(eff.half_width() > 0.0);
        let miss = r.deadline_miss_ci(300, 7).unwrap();
        assert!(miss.contains(r.deadline_miss_rate.unwrap()));
        assert!(miss.lo >= 0.0 && miss.hi <= 1.0);
        // Deterministic per seed.
        let again = r.deadline_miss_ci(300, 7).unwrap();
        assert_eq!(miss.lo.to_bits(), again.lo.to_bits());
        // No deadline, no miss CI.
        let bare = FaultRobustnessReport::from_outcomes(
            10.0,
            1.0,
            vec![10.0],
            0,
            &RecoveryStats::default(),
        );
        assert!(bare.deadline_miss_ci(100, 1).is_none());
    }

    #[test]
    fn fault_report_with_no_faults_matches_plain_report() {
        let ms = vec![8.0, 12.0, 10.0, 14.0];
        let plain = RobustnessReport::from_makespans(10.0, 1.5, ms.clone());
        let faulty =
            FaultRobustnessReport::from_outcomes(10.0, 1.5, ms, 0, &RecoveryStats::default());
        assert_eq!(faulty.failed_rate, 0.0);
        assert_eq!(faulty.completion_probability, 1.0);
        assert_eq!(faulty.mean_makespan, plain.mean_makespan);
        assert_eq!(faulty.mean_tardiness, plain.mean_tardiness);
        assert_eq!(faulty.r1, plain.r1);
        assert_eq!(faulty.miss_rate, plain.miss_rate);
        assert_eq!(faulty.r2, plain.r2);
        // With nothing failed the effective mean ignores the penalty.
        assert_eq!(faulty.effective_mean(1e9), plain.mean_makespan);
    }

    #[test]
    fn fault_report_all_failed_edge_case() {
        let r =
            FaultRobustnessReport::from_outcomes(10.0, 0.0, vec![], 5, &RecoveryStats::default());
        assert_eq!(r.completed, 0);
        assert_eq!(r.failed_rate, 1.0);
        assert_eq!(r.completion_probability, 0.0);
        assert!(r.mean_makespan.is_nan());
        assert_eq!(r.r1, 0.0);
        assert_eq!(r.miss_rate, 1.0);
        assert_eq!(r.r2, 1.0);
        assert!(r.makespans.is_none());
        assert_eq!(r.effective_mean(42.0), 42.0);
    }
}

//! Robustness metrics (Definitions 3.6 and 3.7).
//!
//! Given the expected makespan `M₀` and realized makespans `M_1..M_N`:
//!
//! * relative tardiness `δ_i = max(0, M_i − M₀) / M₀`;
//! * `R1 = 1 / E[δ]` — tardiness-based robustness;
//! * miss rate `α = |{i : M_i > M₀}| / N`;
//! * `R2 = 1 / α` — miss-rate-based robustness.
//!
//! Both are `+∞` for a schedule that never runs late (e.g. `UL ≡ 1`); the
//! experiment harness guards ratios accordingly.

use rds_stats::describe::Summary;

/// Relative tardiness `δ` of one realization.
///
/// # Panics
/// Panics when `expected <= 0` — makespans of non-empty schedules are
/// strictly positive.
#[inline]
pub fn relative_tardiness(realized: f64, expected: f64) -> f64 {
    assert!(expected > 0.0, "expected makespan must be positive");
    (realized - expected).max(0.0) / expected
}

/// `R1 = 1 / E[δ]` from a mean tardiness (`+∞` when the mean is zero).
#[inline]
pub fn r1_from_tardiness(mean_tardiness: f64) -> f64 {
    if mean_tardiness <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / mean_tardiness
    }
}

/// `R2 = 1 / α` from a miss rate (`+∞` when no realization missed).
#[inline]
pub fn r2_from_miss_rate(miss_rate: f64) -> f64 {
    if miss_rate <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / miss_rate
    }
}

/// Aggregated Monte Carlo results for one schedule.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Expected makespan `M₀` (deterministic evaluation with `UL·B`).
    pub expected_makespan: f64,
    /// Average slack `σ̄` of the schedule (expected durations).
    pub average_slack: f64,
    /// Number of realizations `N`.
    pub realizations: usize,
    /// Mean realized makespan `E[M_i]`.
    pub mean_makespan: f64,
    /// Mean relative tardiness `E[δ]`.
    pub mean_tardiness: f64,
    /// Tardiness-based robustness `R1`.
    pub r1: f64,
    /// Miss rate `α`.
    pub miss_rate: f64,
    /// Miss-rate-based robustness `R2`.
    pub r2: f64,
    /// Summary of the realized makespans (quantiles etc.).
    pub makespans: Summary,
}

impl RobustnessReport {
    /// Dispersion of the realized makespans: `std(M_i) / mean(M_i)` —
    /// the coefficient-of-variation robustness surrogate used by several
    /// works the paper surveys (smaller = more stable).
    #[must_use]
    pub fn makespan_cov(&self) -> f64 {
        self.makespans.std_dev() / self.makespans.mean()
    }

    /// Tail ratio `quantile_q(M_i) / M₀` — how bad the worst `1−q` of
    /// realizations get, relative to the promise `M₀`.
    ///
    /// # Panics
    /// Panics when `q` is outside `[0,1]`.
    #[must_use]
    pub fn quantile_ratio(&self, q: f64) -> f64 {
        self.makespans.quantile(q) / self.expected_makespan
    }

    /// Probabilistic guarantee `P(M_i ≤ (1+γ)·M₀)`: the fraction of
    /// realizations finishing within a `γ` overrun budget. `γ = 0` gives
    /// `1 − α` (the complement of the miss rate).
    ///
    /// # Panics
    /// Panics when `gamma` is negative.
    #[must_use]
    pub fn prob_within(&self, gamma: f64) -> f64 {
        assert!(gamma >= 0.0, "overrun budget must be non-negative");
        1.0 - self
            .makespans
            .fraction_above((1.0 + gamma) * self.expected_makespan)
    }

    /// Mean *absolute* overrun `E[max(0, M_i − M₀)]` in time units
    /// (`mean_tardiness · M₀`).
    #[must_use]
    pub fn expected_overrun(&self) -> f64 {
        self.mean_tardiness * self.expected_makespan
    }

    /// Builds the report from `M₀`, the schedule's average slack and the
    /// realized makespans.
    ///
    /// # Panics
    /// Panics when `makespans` is empty or `expected_makespan <= 0`.
    pub fn from_makespans(
        expected_makespan: f64,
        average_slack: f64,
        makespans: Vec<f64>,
    ) -> Self {
        assert!(
            !makespans.is_empty(),
            "at least one realization is required"
        );
        assert!(expected_makespan > 0.0, "expected makespan must be positive");
        let n = makespans.len();
        let mean_makespan = makespans.iter().sum::<f64>() / n as f64;
        let mean_tardiness = makespans
            .iter()
            .map(|&m| relative_tardiness(m, expected_makespan))
            .sum::<f64>()
            / n as f64;
        let summary = Summary::from_samples(makespans);
        let miss_rate = summary.fraction_above(expected_makespan);
        Self {
            expected_makespan,
            average_slack,
            realizations: n,
            mean_makespan,
            mean_tardiness,
            r1: r1_from_tardiness(mean_tardiness),
            miss_rate,
            r2: r2_from_miss_rate(miss_rate),
            makespans: summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tardiness_clamps_early_finishes() {
        assert_eq!(relative_tardiness(8.0, 10.0), 0.0);
        assert_eq!(relative_tardiness(15.0, 10.0), 0.5);
        assert_eq!(relative_tardiness(10.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tardiness_rejects_zero_expected() {
        let _ = relative_tardiness(1.0, 0.0);
    }

    #[test]
    fn r1_r2_inverses_and_infinities() {
        assert_eq!(r1_from_tardiness(0.5), 2.0);
        assert_eq!(r1_from_tardiness(0.0), f64::INFINITY);
        assert_eq!(r2_from_miss_rate(0.25), 4.0);
        assert_eq!(r2_from_miss_rate(0.0), f64::INFINITY);
    }

    #[test]
    fn report_hand_computed() {
        // M0 = 10; realizations 8, 12, 10, 14.
        // δ = 0, 0.2, 0, 0.4 -> mean 0.15; R1 = 1/0.15.
        // misses (strictly > 10): 12, 14 -> α = 0.5; R2 = 2.
        let r = RobustnessReport::from_makespans(10.0, 1.5, vec![8.0, 12.0, 10.0, 14.0]);
        assert_eq!(r.realizations, 4);
        assert_eq!(r.mean_makespan, 11.0);
        assert!((r.mean_tardiness - 0.15).abs() < 1e-12);
        assert!((r.r1 - 1.0 / 0.15).abs() < 1e-9);
        assert_eq!(r.miss_rate, 0.5);
        assert_eq!(r.r2, 2.0);
        assert_eq!(r.average_slack, 1.5);
        assert_eq!(r.makespans.max(), 14.0);
    }

    #[test]
    fn never_late_schedule_has_infinite_robustness() {
        let r = RobustnessReport::from_makespans(10.0, 0.0, vec![10.0, 9.0, 8.0]);
        assert_eq!(r.mean_tardiness, 0.0);
        assert_eq!(r.r1, f64::INFINITY);
        assert_eq!(r.miss_rate, 0.0);
        assert_eq!(r.r2, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "at least one realization")]
    fn empty_realizations_rejected() {
        let _ = RobustnessReport::from_makespans(10.0, 0.0, vec![]);
    }

    #[test]
    fn extended_metrics_hand_computed() {
        // M0 = 10; realizations 8, 12, 10, 14.
        let r = RobustnessReport::from_makespans(10.0, 0.0, vec![8.0, 12.0, 10.0, 14.0]);
        // P(M <= 1.1 * 10 = 11): {8, 10} of 4.
        assert_eq!(r.prob_within(0.1), 0.5);
        // P(M <= 1.4 * 10 = 14): all four (14 not strictly above).
        assert_eq!(r.prob_within(0.4), 1.0);
        // gamma=0 complements the miss rate.
        assert!((r.prob_within(0.0) - (1.0 - r.miss_rate)).abs() < 1e-12);
        // Max-quantile ratio.
        assert!((r.quantile_ratio(1.0) - 1.4).abs() < 1e-12);
        // Expected absolute overrun = 0.15 * 10.
        assert!((r.expected_overrun() - 1.5).abs() < 1e-12);
        // CoV is positive for a spread sample.
        assert!(r.makespan_cov() > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn prob_within_rejects_negative_budget() {
        let r = RobustnessReport::from_makespans(10.0, 0.0, vec![10.0]);
        let _ = r.prob_within(-0.1);
    }

    #[test]
    fn more_tardy_realizations_lower_r1() {
        let good = RobustnessReport::from_makespans(10.0, 0.0, vec![10.5, 10.5]);
        let bad = RobustnessReport::from_makespans(10.0, 0.0, vec![15.0, 15.0]);
        assert!(good.r1 > bad.r1);
    }
}

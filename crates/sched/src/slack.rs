//! Slack (Definition 3.3) on the disjunctive graph.
//!
//! With the schedule fixed, compute on `G_s` (expected durations as node
//! weights, transfer times as edge weights):
//!
//! * `Tl(i)` — longest entry→`i` path length *excluding* `i`'s duration
//!   (equals the earliest start of `i`);
//! * `Bl(i)` — longest `i`→exit path length *including* `i`'s duration;
//! * `σ_i = M − Bl(i) − Tl(i)` where `M` is the makespan;
//! * the *average slack* `σ̄ = Σσ_i / N` — the GA's robustness surrogate.
//!
//! Theorem 3.4 (verified by tests here and property tests in the workspace
//! integration suite): a task finishing late by `Δ ≤ σ_i` cannot extend the
//! makespan, provided all other tasks hold their expected durations.

use rds_graph::TaskId;
use rds_platform::Platform;

use crate::disjunctive::DisjunctiveGraph;
use crate::schedule::Schedule;

/// Slack decomposition of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackAnalysis {
    /// Top level `Tl(i)` of every task.
    pub top_level: Vec<f64>,
    /// Bottom level `Bl(i)` of every task.
    pub bottom_level: Vec<f64>,
    /// Slack `σ_i` of every task.
    pub slack: Vec<f64>,
    /// Makespan `M` (critical path of `G_s`).
    pub makespan: f64,
    /// Average slack `σ̄`.
    pub average_slack: f64,
}

impl SlackAnalysis {
    /// Slack of task `t`.
    #[inline]
    pub fn slack_of(&self, t: TaskId) -> f64 {
        self.slack[t.index()]
    }

    /// Tasks with (numerically) zero slack — the critical tasks.
    pub fn critical_tasks(&self) -> Vec<TaskId> {
        const EPS: f64 = 1e-9;
        self.slack
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s.abs() <= EPS * self.makespan.max(1.0))
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }
}

/// Reusable per-task output buffers for [`analyze_into`].
///
/// Buffers are cleared and refilled on every call but keep their capacity,
/// so steady-state evaluations of same-shape instances allocate nothing.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SlackScratch {
    /// Top level `Tl(i)` of every task.
    pub top_level: Vec<f64>,
    /// Bottom level `Bl(i)` of every task.
    pub bottom_level: Vec<f64>,
    /// Slack `σ_i` of every task.
    pub slack: Vec<f64>,
}

/// Scalar results of an in-place slack analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackSummary {
    /// Makespan `M` (critical path of `G_s`).
    pub makespan: f64,
    /// Average slack `σ̄`.
    pub average_slack: f64,
}

/// In-place slack analysis over a flat [`DisjunctiveCsr`] — the zero-
/// allocation twin of [`analyze`].
///
/// Runs the identical forward (top-level) and backward (bottom-level)
/// longest-path passes over the CSR arrays, using the transfer times
/// precomputed at CSR build time; the per-task vectors land in `out` and
/// the scalars are returned. Results are bit-identical to [`analyze`]
/// (asserted with `==` by `tests/eval_kernel_proptest.rs`).
pub fn analyze_into(
    csr: &crate::csr::DisjunctiveCsr,
    durations: &[f64],
    out: &mut SlackScratch,
) -> SlackSummary {
    let n = csr.task_count();
    debug_assert_eq!(durations.len(), n);

    // Forward pass: top levels (= earliest starts).
    let tl = &mut out.top_level;
    tl.clear();
    tl.resize(n, 0.0);
    for &t in csr.topo() {
        let ti = t as usize;
        let mut best = 0.0_f64;
        let (pred_tasks, pred_comms) = csr.preds(ti);
        for (&q, &comm) in pred_tasks.iter().zip(pred_comms) {
            let qi = q as usize;
            let cand = tl[qi] + durations[qi] + comm;
            if cand > best {
                best = cand;
            }
        }
        tl[ti] = best;
    }

    backward_and_summarize(csr, durations, out)
}

/// Suffix-only twin of [`analyze_into`] for delta evaluation: the forward
/// pass recomputes top levels only for the tasks in `suffix` (walked in
/// the given order — the tail of the chromosome's scheduling string, a
/// valid topological order of `G_s`), reusing the prefix top levels the
/// caller preloaded into `out.top_level`. The backward pass, makespan
/// fold, and slack loop run in full with code identical to
/// [`analyze_into`], so given a correct prefix the results are
/// bit-identical to the full analysis (asserted by the delta parity
/// proptests).
///
/// Callers ([`crate::csr::EvalScratch::evaluate_delta`]) guarantee that
/// `out.top_level` holds `csr.task_count()` entries whose values for every
/// non-suffix task equal what the full forward pass would compute.
pub fn analyze_suffix_into(
    csr: &crate::csr::DisjunctiveCsr,
    durations: &[f64],
    suffix: &[TaskId],
    out: &mut SlackScratch,
) -> SlackSummary {
    let n = csr.task_count();
    debug_assert_eq!(durations.len(), n);
    debug_assert_eq!(out.top_level.len(), n);

    let tl = &mut out.top_level;
    for &t in suffix {
        let ti = t.index();
        let mut best = 0.0_f64;
        let (pred_tasks, pred_comms) = csr.preds(ti);
        for (&q, &comm) in pred_tasks.iter().zip(pred_comms) {
            let qi = q as usize;
            let cand = tl[qi] + durations[qi] + comm;
            if cand > best {
                best = cand;
            }
        }
        tl[ti] = best;
    }

    backward_and_summarize(csr, durations, out)
}

/// Shared tail of [`analyze_into`] / [`analyze_suffix_into`]: full
/// backward pass, makespan fold, and slack loop over the (already final)
/// top levels in `out.top_level`.
fn backward_and_summarize(
    csr: &crate::csr::DisjunctiveCsr,
    durations: &[f64],
    out: &mut SlackScratch,
) -> SlackSummary {
    let n = csr.task_count();
    let tl = &out.top_level;

    // Backward pass: bottom levels.
    let bl = &mut out.bottom_level;
    bl.clear();
    bl.resize(n, 0.0);
    for &t in csr.topo().iter().rev() {
        let ti = t as usize;
        let own = durations[ti];
        let mut best = own;
        let (succ_tasks, succ_comms) = csr.succs(ti);
        for (&q, &comm) in succ_tasks.iter().zip(succ_comms) {
            let cand = own + comm + bl[q as usize];
            if cand > best {
                best = cand;
            }
        }
        bl[ti] = best;
    }

    let makespan = (0..n).map(|i| tl[i] + bl[i]).fold(0.0, f64::max);
    let slack = &mut out.slack;
    slack.clear();
    for i in 0..n {
        // Clamp the tiny negative values produced by float rounding on the
        // critical path itself (same clamp as `analyze`).
        slack.push((makespan - bl[i] - tl[i]).max(0.0));
    }
    let average_slack = if n == 0 {
        0.0
    } else {
        slack.iter().sum::<f64>() / n as f64
    };
    SlackSummary {
        makespan,
        average_slack,
    }
}

/// Computes the slack analysis for a schedule under the given durations.
///
/// `durations[i]` is task `i`'s duration on its assigned processor (usually
/// the *expected* duration — the paper computes slack once the schedule is
/// fixed, with expected times).
pub fn analyze(
    ds: &DisjunctiveGraph,
    schedule: &Schedule,
    platform: &Platform,
    durations: &[f64],
) -> SlackAnalysis {
    let n = ds.task_count();
    debug_assert_eq!(durations.len(), n);

    // Forward pass: top levels (= earliest starts).
    let mut tl = vec![0.0_f64; n];
    for &t in ds.topo_order() {
        let pt = schedule.proc_of(t);
        let mut best = 0.0_f64;
        for e in ds.predecessors(t) {
            let q = e.task;
            let cand = tl[q.index()]
                + durations[q.index()]
                + platform.comm_time(e.data, schedule.proc_of(q), pt);
            if cand > best {
                best = cand;
            }
        }
        tl[t.index()] = best;
    }

    // Backward pass: bottom levels.
    let mut bl = vec![0.0_f64; n];
    for &t in ds.topo_order().iter().rev() {
        let pt = schedule.proc_of(t);
        let own = durations[t.index()];
        let mut best = own;
        for e in ds.successors(t) {
            let q = e.task;
            let cand = own + platform.comm_time(e.data, pt, schedule.proc_of(q)) + bl[q.index()];
            if cand > best {
                best = cand;
            }
        }
        bl[t.index()] = best;
    }

    let makespan = (0..n).map(|i| tl[i] + bl[i]).fold(0.0, f64::max);
    let mut slack = Vec::with_capacity(n);
    for i in 0..n {
        // Clamp the tiny negative values produced by float rounding on the
        // critical path itself.
        slack.push((makespan - bl[i] - tl[i]).max(0.0));
    }
    let average_slack = if n == 0 {
        0.0
    } else {
        slack.iter().sum::<f64>() / n as f64
    };
    SlackAnalysis {
        top_level: tl,
        bottom_level: bl,
        slack,
        makespan,
        average_slack,
    }
}

/// Convenience: expected-duration slack analysis straight from an instance
/// and a schedule.
///
/// # Errors
/// Returns an error when the schedule is incompatible with the graph.
pub fn analyze_expected(
    inst: &crate::instance::Instance,
    schedule: &Schedule,
) -> Result<SlackAnalysis, crate::disjunctive::CycleError> {
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    let durations = crate::timing::expected_durations(&inst.timing, schedule);
    Ok(analyze(&ds, schedule, &inst.platform, &durations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::evaluate_with_durations;
    use rds_graph::{TaskGraph, TaskGraphBuilder};
    use rds_platform::Platform;

    fn ids(xs: &[u32]) -> Vec<TaskId> {
        xs.iter().map(|&x| TaskId(x)).collect()
    }

    /// Two independent chains on two processors:
    /// p0 runs 0 (dur 10); p1 runs 1 (dur 4).
    fn two_chain() -> (TaskGraph, Platform, Schedule, Vec<f64>) {
        let g = TaskGraphBuilder::with_tasks(2).build().unwrap();
        let p = Platform::uniform(2, 1.0).unwrap();
        let s = Schedule::from_proc_lists(2, vec![ids(&[0]), ids(&[1])]).unwrap();
        (g, p, s, vec![10.0, 4.0])
    }

    #[test]
    fn slack_of_short_chain_is_gap() {
        let (g, p, s, dur) = two_chain();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let a = analyze(&ds, &s, &p, &dur);
        assert_eq!(a.makespan, 10.0);
        assert_eq!(a.slack_of(TaskId(0)), 0.0);
        assert_eq!(a.slack_of(TaskId(1)), 6.0);
        assert_eq!(a.average_slack, 3.0);
        assert_eq!(a.critical_tasks(), vec![TaskId(0)]);
    }

    #[test]
    fn makespan_matches_timing_evaluation() {
        let (g, p, s, dur) = two_chain();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let a = analyze(&ds, &s, &p, &dur);
        let t = evaluate_with_durations(&ds, &s, &p, &dur);
        assert_eq!(a.makespan, t.makespan);
        // Top level equals earliest start.
        assert_eq!(a.top_level, t.start);
    }

    #[test]
    fn critical_path_tasks_have_zero_slack() {
        // Chain 0 -> 1 -> 2 on one processor: all critical.
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 0.0)
            .add_edge(TaskId(1), TaskId(2), 0.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(1, 1.0).unwrap();
        let s = Schedule::from_proc_lists(3, vec![ids(&[0, 1, 2])]).unwrap();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let a = analyze(&ds, &s, &p, &[1.0, 2.0, 3.0]);
        assert_eq!(a.makespan, 6.0);
        assert!(a.slack.iter().all(|&x| x == 0.0));
        assert_eq!(a.critical_tasks().len(), 3);
        assert_eq!(a.average_slack, 0.0);
    }

    /// Theorem 3.4: inflating one task by less than its slack leaves the
    /// makespan unchanged; inflating beyond the slack extends it.
    #[test]
    fn theorem_3_4_single_task_inflation() {
        let (g, p, s, dur) = two_chain();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let a = analyze(&ds, &s, &p, &dur);
        let sigma = a.slack_of(TaskId(1));
        assert!(sigma > 0.0);

        // Δ = σ: makespan unchanged (boundary case included).
        let mut inflated = dur.clone();
        inflated[1] += sigma;
        let m = evaluate_with_durations(&ds, &s, &p, &inflated).makespan;
        assert!((m - a.makespan).abs() < 1e-9);

        // Δ > σ: makespan extends by exactly the excess here.
        inflated[1] += 1.0;
        let m2 = evaluate_with_durations(&ds, &s, &p, &inflated).makespan;
        assert!((m2 - (a.makespan + 1.0)).abs() < 1e-9);
    }

    /// Corollary 3.5: inflating several *independent* tasks each within
    /// their own slack keeps the makespan.
    #[test]
    fn corollary_3_5_independent_inflations() {
        // Diamond on 3 procs so the two middles are independent in Gs.
        let mut b = TaskGraphBuilder::with_tasks(4);
        b.add_edge(TaskId(0), TaskId(1), 0.0)
            .add_edge(TaskId(0), TaskId(2), 0.0)
            .add_edge(TaskId(1), TaskId(3), 0.0)
            .add_edge(TaskId(2), TaskId(3), 0.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(3, 1.0).unwrap();
        let s = Schedule::from_proc_lists(4, vec![ids(&[0, 3]), ids(&[1]), ids(&[2])]).unwrap();
        let dur = vec![1.0, 2.0, 8.0, 1.0];
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        assert!(ds.are_independent(TaskId(1), TaskId(2)));
        let a = analyze(&ds, &s, &p, &dur);
        let s1 = a.slack_of(TaskId(1));
        assert!(s1 > 0.0, "short branch has slack");
        // Inflate task 1 by its slack; task 2 is critical (slack 0, inflate 0).
        let mut inflated = dur.clone();
        inflated[1] += s1;
        let m = evaluate_with_durations(&ds, &s, &p, &inflated).makespan;
        assert!((m - a.makespan).abs() < 1e-9);
    }

    #[test]
    fn exit_tasks_on_critical_path_have_zero_slack() {
        let (g, p, s, dur) = two_chain();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let a = analyze(&ds, &s, &p, &dur);
        // The paper's proof sketch notes the slack of any exit task on the
        // critical path is 0.
        assert_eq!(a.slack_of(TaskId(0)), 0.0);
    }

    #[test]
    fn empty_graph_analysis() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        let p = Platform::uniform(1, 1.0).unwrap();
        let s = Schedule::from_proc_lists(0, vec![vec![]]).unwrap();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let a = analyze(&ds, &s, &p, &[]);
        assert_eq!(a.makespan, 0.0);
        assert_eq!(a.average_slack, 0.0);
    }
}

//! Flat CSR evaluation kernel for the disjunctive graph.
//!
//! [`DisjunctiveGraph`](crate::disjunctive::DisjunctiveGraph) stores `G_s`
//! as nested `Vec<Vec<DisEdge>>`, which is convenient but allocates one
//! heap block per task per evaluation and scatters edges across the heap.
//! The GA evaluates `G_s` once per chromosome per generation, so this
//! module provides the same graph in compressed-sparse-row form:
//! prefix-offset `u32` arrays for predecessors/successors plus parallel
//! `f64` arrays carrying the *precomputed* transfer time of each edge
//! (communication depends only on the edge's data size and the two
//! endpoint processors, both fixed once the assignment is fixed).
//!
//! [`DisjunctiveCsr::build_from_parts`] rebuilds the CSR **in place** from
//! an `(order, assignment)` pair — no `Schedule` needs to be materialized —
//! reusing every buffer, so repeated evaluations of same-shape instances
//! perform zero heap allocations. [`EvalScratch`] bundles the CSR with the
//! slack buffers into a caller-owned arena; one arena per thread is the
//! intended usage (see `rds-ga`'s population evaluation).
//!
//! Every pass replicates the reference implementations bit for bit:
//! identical edge order (graph predecessors first, then the disjunctive
//! predecessor), identical Kahn stack discipline, and identical floating-
//! point expression shapes. The parity proptests in
//! `crates/sched/tests/eval_kernel_proptest.rs` assert `==` on the results.

use rds_graph::{TaskGraph, TaskId};
use rds_platform::{Platform, ProcId};

use crate::disjunctive::{CycleError, DisjunctiveGraph};
use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::slack::{analyze_into, analyze_suffix_into, SlackScratch, SlackSummary};

/// Sentinel for "no task" in the packed `u32` arrays.
const NONE: u32 = u32::MAX;

/// Lane width of the batched Monte-Carlo kernel: realizations evaluated
/// per CSR traversal, interleaved in structure-of-arrays layout
/// (`buf[LANES * task + lane]`). Eight `f64` lanes span two AVX2 (or four
/// SSE2) vectors, wide enough for the inner max/add loop to vectorize
/// across realizations while the per-task state still fits in registers.
pub const LANES: usize = 8;

/// Resizes a scratch buffer to `len` without re-zeroing when the length
/// already matches. The batched and scalar walk kernels write every entry
/// they read (tasks are visited in topological order), so carrying stale
/// values across calls is safe — this skips an O(n) `memset` per
/// evaluation on the hot path.
#[inline]
pub fn ensure_scratch_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() != len {
        buf.clear();
        buf.resize(len, 0.0);
    }
}

/// The disjunctive graph `G_s` in compressed-sparse-row form with
/// precomputed per-edge transfer times.
///
/// All buffers are retained across rebuilds: after the first build of a
/// given shape, [`DisjunctiveCsr::build_from_parts`] and
/// [`DisjunctiveCsr::build_from_schedule`] allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct DisjunctiveCsr {
    tasks: u32,
    /// `pred_off[t]..pred_off[t+1]` indexes `t`'s predecessors.
    pred_off: Vec<u32>,
    pred_task: Vec<u32>,
    /// Transfer time of the mirrored predecessor edge (zero for
    /// co-located endpoints and for pure disjunctive edges).
    pred_comm: Vec<f64>,
    succ_off: Vec<u32>,
    succ_task: Vec<u32>,
    succ_comm: Vec<f64>,
    /// Kahn topological order (same order as the nested-vec builder).
    topo: Vec<u32>,
    disjunctive_edges: usize,
    // Rebuild scratch, all reused.
    indeg: Vec<u32>,
    ready: Vec<u32>,
    prev: Vec<u32>,
    last_on_proc: Vec<u32>,
    cursor: Vec<u32>,
}

impl DisjunctiveCsr {
    /// An empty CSR; buffers grow on first build and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the CSR in place from an execution order and a task →
    /// processor assignment (the raw chromosome genes), without decoding a
    /// [`Schedule`].
    ///
    /// # Errors
    /// Returns [`CycleError`] when the order contradicts the precedence
    /// constraints (cyclic `G_s`).
    ///
    /// # Panics
    /// Panics if `order` or `assignment` length differs from the graph's
    /// task count.
    pub fn build_from_parts(
        &mut self,
        graph: &TaskGraph,
        order: &[TaskId],
        assignment: &[ProcId],
        platform: &Platform,
    ) -> Result<(), CycleError> {
        let n = graph.task_count();
        assert_eq!(order.len(), n, "order and graph task counts must agree");
        assert_eq!(
            assignment.len(),
            n,
            "assignment and graph task counts must agree"
        );
        // Disjunctive predecessor of each task = previous task on its
        // processor in execution order (exactly `Schedule::prev_on_proc`).
        self.last_on_proc.clear();
        self.last_on_proc.resize(platform.proc_count(), NONE);
        self.prev.clear();
        self.prev.resize(n, NONE);
        for &t in order {
            let ti = t.index();
            let p = assignment[ti].index();
            self.prev[ti] = self.last_on_proc[p];
            self.last_on_proc[p] = t.0;
        }
        self.assemble(graph, assignment, platform)
    }

    /// Rebuilds the CSR in place from a decoded [`Schedule`].
    ///
    /// # Errors
    /// Returns [`CycleError`] when the schedule contradicts the precedence
    /// constraints.
    ///
    /// # Panics
    /// Panics if `schedule.task_count() != graph.task_count()`.
    pub fn build_from_schedule(
        &mut self,
        graph: &TaskGraph,
        schedule: &Schedule,
        platform: &Platform,
    ) -> Result<(), CycleError> {
        let n = graph.task_count();
        assert_eq!(
            schedule.task_count(),
            n,
            "schedule and graph task counts must agree"
        );
        self.prev.clear();
        self.prev.extend(
            (0..n as u32).map(|t| match schedule.prev_on_proc(TaskId(t)) {
                Some(q) => q.0,
                None => NONE,
            }),
        );
        self.assemble(graph, schedule.assignment(), platform)
    }

    /// Converts an already-built [`DisjunctiveGraph`] (edge order, topo
    /// order, and edge count preserved; transfer times precomputed) — used
    /// by the Monte Carlo realization loop, which evaluates one fixed
    /// schedule thousands of times.
    pub fn from_disjunctive(
        ds: &DisjunctiveGraph,
        schedule: &Schedule,
        platform: &Platform,
    ) -> Self {
        let n = ds.task_count();
        let mut csr = Self::new();
        csr.tasks = n as u32;
        csr.pred_off.push(0);
        csr.succ_off.push(0);
        for t in 0..n {
            let tid = TaskId(t as u32);
            let pt = schedule.proc_of(tid);
            for e in ds.predecessors(tid) {
                csr.pred_task.push(e.task.0);
                csr.pred_comm
                    .push(platform.comm_time(e.data, schedule.proc_of(e.task), pt));
            }
            csr.pred_off.push(csr.pred_task.len() as u32);
            for e in ds.successors(tid) {
                csr.succ_task.push(e.task.0);
                csr.succ_comm
                    .push(platform.comm_time(e.data, pt, schedule.proc_of(e.task)));
            }
            csr.succ_off.push(csr.succ_task.len() as u32);
        }
        csr.topo.extend(ds.topo_order().iter().map(|t| t.0));
        csr.disjunctive_edges = ds.disjunctive_edge_count();
        csr
    }

    /// Shared tail of the in-place builders: `self.prev` holds each task's
    /// disjunctive predecessor (or [`NONE`]).
    fn assemble(
        &mut self,
        graph: &TaskGraph,
        assignment: &[ProcId],
        platform: &Platform,
    ) -> Result<(), CycleError> {
        let n = graph.task_count();
        self.tasks = n as u32;
        self.disjunctive_edges = 0;
        self.pred_off.clear();
        self.pred_task.clear();
        self.pred_comm.clear();
        self.pred_off.push(0);
        // `cursor[q]` counts q's successors during the pred sweep, then
        // turns into q's scatter cursor for the succ fill.
        self.cursor.clear();
        self.cursor.resize(n, 0);
        for t in graph.tasks() {
            let ti = t.index();
            let pt = assignment[ti];
            // Conjunctive (graph) predecessors first, in graph order.
            for e in graph.predecessors(t) {
                let q = e.task.index();
                self.pred_task.push(e.task.0);
                self.pred_comm
                    .push(platform.comm_time(e.data, assignment[q], pt));
                self.cursor[q] += 1;
            }
            // Then the disjunctive predecessor unless it is already a graph
            // predecessor (Def. 3.1: E' excludes edges already in E).
            let prev = self.prev[ti];
            if prev != NONE {
                let start = self.pred_off[ti] as usize;
                if !self.pred_task[start..].contains(&prev) {
                    self.pred_task.push(prev);
                    // Disjunctive edges carry no data, so comm is 0 exactly.
                    self.pred_comm.push(0.0);
                    self.cursor[prev as usize] += 1;
                    self.disjunctive_edges += 1;
                }
            }
            self.pred_off.push(self.pred_task.len() as u32);
        }

        // Successor offsets by prefix sum, then scatter the mirrored edges.
        // Scanning tasks in ascending order keeps each successor list in the
        // same order the nested-vec builder pushes them.
        self.succ_off.clear();
        self.succ_off.push(0);
        let mut acc = 0u32;
        for c in &mut self.cursor {
            acc += *c;
            self.succ_off.push(acc);
            *c = 0;
        }
        let edges = self.pred_task.len();
        self.succ_task.clear();
        self.succ_task.resize(edges, 0);
        self.succ_comm.clear();
        self.succ_comm.resize(edges, 0.0);
        for t in 0..n {
            for e in self.pred_off[t] as usize..self.pred_off[t + 1] as usize {
                let q = self.pred_task[e] as usize;
                let pos = (self.succ_off[q] + self.cursor[q]) as usize;
                self.succ_task[pos] = t as u32;
                self.succ_comm[pos] = self.pred_comm[e];
                self.cursor[q] += 1;
            }
        }

        // Kahn topological sort — same stack discipline as
        // `DisjunctiveGraph::build` (pop from the back, push newly ready
        // tasks in successor order), so the order is identical.
        self.indeg.clear();
        for t in 0..n {
            self.indeg.push(self.pred_off[t + 1] - self.pred_off[t]);
        }
        self.ready.clear();
        for t in 0..n as u32 {
            if self.indeg[t as usize] == 0 {
                self.ready.push(t);
            }
        }
        self.topo.clear();
        while let Some(t) = self.ready.pop() {
            self.topo.push(t);
            for e in self.succ_off[t as usize] as usize..self.succ_off[t as usize + 1] as usize {
                let q = self.succ_task[e] as usize;
                self.indeg[q] -= 1;
                if self.indeg[q] == 0 {
                    self.ready.push(q as u32);
                }
            }
        }
        if self.topo.len() != n {
            return Err(CycleError);
        }
        Ok(())
    }

    /// Number of tasks.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks as usize
    }

    /// Total edge count `|E ∪ E'|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.pred_task.len()
    }

    /// Number of pure disjunctive edges `|E'|`.
    #[inline]
    pub fn disjunctive_edge_count(&self) -> usize {
        self.disjunctive_edges
    }

    /// The cached topological order (task indices).
    #[inline]
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// Predecessors of task `t` as `(tasks, transfer_times)` slices.
    #[inline]
    pub fn preds(&self, t: usize) -> (&[u32], &[f64]) {
        let r = self.pred_off[t] as usize..self.pred_off[t + 1] as usize;
        (&self.pred_task[r.clone()], &self.pred_comm[r])
    }

    /// Successors of task `t` as `(tasks, transfer_times)` slices.
    #[inline]
    pub fn succs(&self, t: usize) -> (&[u32], &[f64]) {
        let r = self.succ_off[t] as usize..self.succ_off[t + 1] as usize;
        (&self.succ_task[r.clone()], &self.succ_comm[r])
    }

    /// Makespan under a duration vector — bit-identical to
    /// [`crate::timing::makespan_with_durations`], with `finish` reused as
    /// the per-task finish-time buffer.
    pub fn makespan(&self, durations: &[f64], finish: &mut Vec<f64>) -> f64 {
        let n = self.tasks as usize;
        debug_assert_eq!(durations.len(), n);
        // Every entry is written before it is read (topo order), so a
        // same-length buffer needs no re-zeroing.
        ensure_scratch_len(finish, n);
        let mut makespan = 0.0_f64;
        for &t in &self.topo {
            let ti = t as usize;
            let mut s = 0.0_f64;
            for e in self.pred_off[ti] as usize..self.pred_off[ti + 1] as usize {
                let ready = finish[self.pred_task[e] as usize] + self.pred_comm[e];
                if ready > s {
                    s = ready;
                }
            }
            let f = s + durations[ti];
            finish[ti] = f;
            if f > makespan {
                makespan = f;
            }
        }
        makespan
    }

    /// Batched makespan: walks the CSR **once** for [`LANES`] realizations
    /// whose durations are interleaved in structure-of-arrays layout
    /// (`durations[LANES * task + lane]`). `finish` must hold exactly
    /// `LANES * task_count()` entries and receives the per-lane finish
    /// times in the same layout; `out[lane]` receives each lane's makespan.
    ///
    /// Per-lane arithmetic has exactly the scalar [`DisjunctiveCsr::makespan`]
    /// expression shapes (max of `finish + comm` over the same predecessor
    /// list, then one add), so every lane is bit-identical to a scalar walk
    /// over that lane's durations — asserted by the batch parity proptests.
    /// Callers with fewer than [`LANES`] live realizations pad the tail
    /// lanes with arbitrary finite durations and ignore those outputs.
    ///
    /// # Panics
    /// Debug-panics when the buffer lengths disagree with the task count.
    pub fn makespan_batch(&self, durations: &[f64], finish: &mut [f64], out: &mut [f64; LANES]) {
        let n = self.tasks as usize;
        debug_assert_eq!(durations.len(), LANES * n);
        debug_assert_eq!(finish.len(), LANES * n);
        *out = [0.0; LANES];
        for &t in &self.topo {
            let ti = t as usize;
            let mut s = [0.0_f64; LANES];
            for e in self.pred_off[ti] as usize..self.pred_off[ti + 1] as usize {
                let qb = LANES * self.pred_task[e] as usize;
                let comm = self.pred_comm[e];
                // Fixed-size lane blocks: one bounds check per block, and
                // the per-lane loop vectorizes to LANES/vector-width max
                // instructions.
                let fq: &[f64; LANES] =
                    finish[qb..qb + LANES].try_into().expect("lane block");
                for l in 0..LANES {
                    let ready = fq[l] + comm;
                    if ready > s[l] {
                        s[l] = ready;
                    }
                }
            }
            let tb = LANES * ti;
            let d: &[f64; LANES] = durations[tb..tb + LANES].try_into().expect("lane block");
            for l in 0..LANES {
                let f = s[l] + d[l];
                s[l] = f;
                if f > out[l] {
                    out[l] = f;
                }
            }
            finish[tb..tb + LANES].copy_from_slice(&s);
        }
    }

    /// Suffix-only batched makespan for delta evaluation. `finish` already
    /// holds valid per-lane finish times for every task in `prefix`
    /// (copied from the parent evaluation); only the tasks in `suffix` are
    /// re-walked, in the given order, and `out[lane]` receives the max
    /// finish over *all* tasks.
    ///
    /// Contract (callers guarantee, [`EvalScratch::evaluate_delta`] spells
    /// out why it holds): `prefix ++ suffix` is a valid topological order
    /// of this CSR, and every predecessor of a suffix task is either a
    /// prefix task or an earlier suffix task. Finish times are then
    /// bit-identical to a full [`DisjunctiveCsr::makespan_batch`] walk:
    /// each task's finish depends only on its (fixed-order) predecessor
    /// list and their final values, never on the walk order.
    pub fn makespan_batch_delta(
        &self,
        durations: &[f64],
        finish: &mut [f64],
        prefix: &[TaskId],
        suffix: &[TaskId],
        out: &mut [f64; LANES],
    ) {
        let n = self.tasks as usize;
        debug_assert_eq!(durations.len(), LANES * n);
        debug_assert_eq!(finish.len(), LANES * n);
        debug_assert_eq!(prefix.len() + suffix.len(), n);
        *out = [0.0; LANES];
        for &t in prefix {
            let tb = LANES * t.index();
            let f: &[f64; LANES] = finish[tb..tb + LANES].try_into().expect("lane block");
            for l in 0..LANES {
                if f[l] > out[l] {
                    out[l] = f[l];
                }
            }
        }
        for &t in suffix {
            let ti = t.index();
            let mut s = [0.0_f64; LANES];
            for e in self.pred_off[ti] as usize..self.pred_off[ti + 1] as usize {
                let qb = LANES * self.pred_task[e] as usize;
                let comm = self.pred_comm[e];
                let fq: &[f64; LANES] =
                    finish[qb..qb + LANES].try_into().expect("lane block");
                for l in 0..LANES {
                    let ready = fq[l] + comm;
                    if ready > s[l] {
                        s[l] = ready;
                    }
                }
            }
            let tb = LANES * ti;
            let d: &[f64; LANES] = durations[tb..tb + LANES].try_into().expect("lane block");
            for l in 0..LANES {
                let f = s[l] + d[l];
                s[l] = f;
                if f > out[l] {
                    out[l] = f;
                }
            }
            finish[tb..tb + LANES].copy_from_slice(&s);
        }
    }
}

/// Caller-owned arena bundling a [`DisjunctiveCsr`] with the slack and
/// duration buffers: one full chromosome evaluation with zero heap
/// allocations after warm-up. Keep one per thread (rayon `map_init`).
#[derive(Debug, Default, Clone)]
pub struct EvalScratch {
    csr: DisjunctiveCsr,
    slack: SlackScratch,
    durations: Vec<f64>,
}

impl EvalScratch {
    /// A fresh arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Expected-duration slack evaluation of an `(order, assignment)` pair —
    /// the GA hot path. Bit-identical to building a [`DisjunctiveGraph`]
    /// and calling [`crate::slack::analyze`] with expected durations.
    ///
    /// # Errors
    /// Returns [`CycleError`] when the order contradicts the precedence
    /// constraints.
    pub fn evaluate(
        &mut self,
        inst: &Instance,
        order: &[TaskId],
        assignment: &[ProcId],
    ) -> Result<SlackSummary, CycleError> {
        self.csr
            .build_from_parts(&inst.graph, order, assignment, &inst.platform)?;
        self.durations.clear();
        for (t, &p) in assignment.iter().enumerate() {
            self.durations.push(inst.timing.expected(t, p));
        }
        Ok(analyze_into(&self.csr, &self.durations, &mut self.slack))
    }

    /// Delta (suffix) evaluation: re-evaluates an `(order, assignment)`
    /// pair that agrees with `prev`'s last evaluation on every order
    /// position before `first_changed` — same task at each prefix position
    /// *and* the same processor for each of those tasks. Only the suffix's
    /// top levels are recomputed; the prefix reuses `prev`'s, which is
    /// sound because a prefix task's predecessors (conjunctive *and*
    /// disjunctive — the previous task on its processor among the
    /// unchanged prefix) all sit at earlier prefix positions with
    /// unchanged assignments, so the prefix sub-graph of `G_s`, its
    /// communication times, and hence the forward pass over it are
    /// bitwise identical. The backward pass cannot be prefix-reused
    /// (bottom levels depend on downstream changes) and runs in full.
    ///
    /// Bit-identical to [`EvalScratch::evaluate`] — asserted by the delta
    /// parity proptests. Falls back to the full pass internally when
    /// `first_changed == 0` or `prev` holds no matching-shape evaluation;
    /// *callers* are responsible for falling back whenever the prefix
    /// contract above does not hold.
    ///
    /// # Errors
    /// Returns [`CycleError`] when the order contradicts the precedence
    /// constraints.
    pub fn evaluate_delta(
        &mut self,
        inst: &Instance,
        order: &[TaskId],
        assignment: &[ProcId],
        prev: &EvalScratch,
        first_changed: usize,
    ) -> Result<SlackSummary, CycleError> {
        let n = inst.graph.task_count();
        let fc = first_changed.min(n);
        if fc == 0 || prev.durations.len() != n || prev.slack.top_level.len() != n {
            return self.evaluate(inst, order, assignment);
        }
        self.csr
            .build_from_parts(&inst.graph, order, assignment, &inst.platform)?;
        // Prefix tasks keep their expected durations (same processor) and
        // their top levels; suffix tasks get both refreshed.
        self.durations.clear();
        self.durations.extend_from_slice(&prev.durations);
        self.slack.top_level.clear();
        self.slack.top_level.extend_from_slice(&prev.slack.top_level);
        for &t in &order[fc..] {
            let ti = t.index();
            self.durations[ti] = inst.timing.expected(ti, assignment[ti]);
        }
        Ok(analyze_suffix_into(
            &self.csr,
            &self.durations,
            &order[fc..],
            &mut self.slack,
        ))
    }

    /// Copies the delta-relevant state of `src`'s last evaluation — the
    /// expected durations and top levels — into this arena, reusing its
    /// buffers. Afterwards `self` can stand in for `src` as the `prev` of
    /// [`EvalScratch::evaluate_delta`] (used when a GA slot inherits a
    /// parent's state without re-running the kernel: elites and unmutated
    /// tournament clones). The CSR itself is *not* copied — delta
    /// evaluation always rebuilds it.
    pub fn adopt_eval_state(&mut self, src: &EvalScratch) {
        self.durations.clear();
        self.durations.extend_from_slice(&src.durations);
        self.slack.top_level.clear();
        self.slack
            .top_level
            .extend_from_slice(&src.slack.top_level);
    }

    /// Same as [`EvalScratch::evaluate`] but starting from a decoded
    /// [`Schedule`].
    ///
    /// # Errors
    /// Returns [`CycleError`] when the schedule contradicts the precedence
    /// constraints.
    pub fn evaluate_schedule(
        &mut self,
        inst: &Instance,
        schedule: &Schedule,
    ) -> Result<SlackSummary, CycleError> {
        self.csr
            .build_from_schedule(&inst.graph, schedule, &inst.platform)?;
        self.durations.clear();
        for (t, &p) in schedule.assignment().iter().enumerate() {
            self.durations.push(inst.timing.expected(t, p));
        }
        Ok(analyze_into(&self.csr, &self.durations, &mut self.slack))
    }

    /// The CSR built by the last evaluation.
    #[inline]
    pub fn csr(&self) -> &DisjunctiveCsr {
        &self.csr
    }

    /// Per-task top-level / bottom-level / slack buffers of the last
    /// evaluation.
    #[inline]
    pub fn slack(&self) -> &SlackScratch {
        &self.slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slack;
    use crate::timing::{expected_durations, makespan_with_durations};
    use rds_graph::TaskGraphBuilder;

    fn ids(xs: &[u32]) -> Vec<TaskId> {
        xs.iter().map(|&x| TaskId(x)).collect()
    }

    /// Same fixture as `timing::tests::fixture`.
    fn fixture() -> (TaskGraph, Platform, Schedule, Vec<f64>) {
        let mut b = TaskGraphBuilder::with_tasks(4);
        b.add_edge(TaskId(0), TaskId(1), 4.0)
            .add_edge(TaskId(0), TaskId(2), 8.0)
            .add_edge(TaskId(1), TaskId(3), 2.0)
            .add_edge(TaskId(2), TaskId(3), 2.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(2, 2.0).unwrap();
        let s = Schedule::from_proc_lists(4, vec![ids(&[0, 1]), ids(&[2, 3])]).unwrap();
        (g, p, s, vec![2.0, 3.0, 4.0, 1.0])
    }

    #[test]
    fn csr_matches_nested_graph_structure() {
        let (g, p, s, _) = fixture();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let mut csr = DisjunctiveCsr::new();
        csr.build_from_schedule(&g, &s, &p).unwrap();
        assert_eq!(csr.task_count(), ds.task_count());
        assert_eq!(csr.disjunctive_edge_count(), ds.disjunctive_edge_count());
        let topo: Vec<u32> = ds.topo_order().iter().map(|t| t.0).collect();
        assert_eq!(csr.topo(), &topo[..]);
        for t in 0..ds.task_count() {
            let (pt, pc) = csr.preds(t);
            let nested: Vec<(u32, f64)> = ds
                .predecessors(TaskId(t as u32))
                .iter()
                .map(|e| {
                    (
                        e.task.0,
                        p.comm_time(e.data, s.proc_of(e.task), s.proc_of(TaskId(t as u32))),
                    )
                })
                .collect();
            let flat: Vec<(u32, f64)> = pt.iter().copied().zip(pc.iter().copied()).collect();
            assert_eq!(flat, nested);
            let (st, _) = csr.succs(t);
            let nested_succ: Vec<u32> = ds
                .successors(TaskId(t as u32))
                .iter()
                .map(|e| e.task.0)
                .collect();
            assert_eq!(st, &nested_succ[..]);
        }
    }

    #[test]
    fn from_parts_equals_from_schedule() {
        let (g, p, s, _) = fixture();
        // Global order consistent with p0 = [0, 1], p1 = [2, 3].
        let order = ids(&[0, 2, 1, 3]);
        let mut a = DisjunctiveCsr::new();
        a.build_from_schedule(&g, &s, &p).unwrap();
        let mut b = DisjunctiveCsr::new();
        b.build_from_parts(&g, &order, s.assignment(), &p).unwrap();
        assert_eq!(a.topo(), b.topo());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.disjunctive_edge_count(), b.disjunctive_edge_count());
        for t in 0..a.task_count() {
            assert_eq!(a.preds(t), b.preds(t));
            assert_eq!(a.succs(t), b.succs(t));
        }
    }

    #[test]
    fn makespan_matches_reference_bitwise() {
        let (g, p, s, dur) = fixture();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let csr = DisjunctiveCsr::from_disjunctive(&ds, &s, &p);
        let mut fin = Vec::new();
        let mut reference = Vec::new();
        let m = csr.makespan(&dur, &mut fin);
        let r = makespan_with_durations(&ds, &s, &p, &dur, &mut reference);
        assert_eq!(m.to_bits(), r.to_bits());
        assert_eq!(m, 11.0);
    }

    #[test]
    fn scratch_evaluate_matches_analyze_bitwise() {
        let (g, p, s, _) = fixture();
        let bcet = rds_stats::matrix::Matrix::from_rows(&[
            &[2.0, 2.0],
            &[3.0, 3.0],
            &[4.0, 4.0],
            &[1.0, 1.0],
        ]);
        let ul = rds_stats::matrix::Matrix::filled(4, 2, 1.5);
        let timing = rds_platform::TimingModel::new(bcet, ul).unwrap();
        let inst = Instance::new(g, p, timing).unwrap();
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let reference = slack::analyze(&ds, &s, &inst.platform, &durations);
        let mut scratch = EvalScratch::new();
        for _ in 0..3 {
            // Repeats reuse all buffers and must not drift.
            let got = scratch.evaluate_schedule(&inst, &s).unwrap();
            assert_eq!(got.makespan.to_bits(), reference.makespan.to_bits());
            assert_eq!(
                got.average_slack.to_bits(),
                reference.average_slack.to_bits()
            );
            assert_eq!(scratch.slack().top_level, reference.top_level);
            assert_eq!(scratch.slack().bottom_level, reference.bottom_level);
            assert_eq!(scratch.slack().slack, reference.slack);
        }
    }

    #[test]
    fn cyclic_order_rejected() {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(1), TaskId(2), 1.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(1, 1.0).unwrap();
        let order = ids(&[2, 0, 1]);
        let assignment = vec![ProcId(0); 3];
        let mut csr = DisjunctiveCsr::new();
        assert!(csr.build_from_parts(&g, &order, &assignment, &p).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        let p = Platform::uniform(1, 1.0).unwrap();
        let mut csr = DisjunctiveCsr::new();
        csr.build_from_parts(&g, &[], &[], &p).unwrap();
        assert_eq!(csr.task_count(), 0);
        assert!(csr.topo().is_empty());
        let mut fin = Vec::new();
        assert_eq!(csr.makespan(&[], &mut fin), 0.0);
    }
}

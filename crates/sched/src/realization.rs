//! The Monte Carlo realization engine — the stand-in for the paper's "real
//! resource environment".
//!
//! §5: each experiment performs 1000 *realizations* of the expected task
//! execution times; a realization draws every task's actual duration from
//! `U(b_ij, (2·UL_ij − 1)·b_ij)` and re-times the schedule (the task order
//! and placement stay fixed — Claim 3.2 — only start times shift).
//!
//! Realizations are embarrassingly parallel; with `parallel = true` they
//! fan out over rayon. Each realization `i` draws from an RNG derived from
//! `(seed, i)`, so results are bit-identical regardless of thread count or
//! scheduling.

use rayon::prelude::*;

use rds_platform::ProcId;
use rds_stats::matrix::Matrix;
use rds_stats::rng::SeedStream;

use crate::csr::{ensure_scratch_len, LANES};
use crate::disjunctive::{CycleError, DisjunctiveGraph};
use crate::faults::{FaultConfig, FaultScenario, ReplicaDraws};
use crate::instance::Instance;
use crate::metrics::{FaultRobustnessReport, RobustnessReport};
use crate::recovery::{
    execute_replicated, execute_with_faults, CheckpointConfig, RecoveryConfig, RecoveryStats,
};
use crate::replication::ReplicaPlan;
use crate::schedule::Schedule;
use crate::slack;
use crate::timing;

/// Configuration of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealizationConfig {
    /// Number of realizations `N` (paper: 1000).
    pub realizations: usize,
    /// Seed for the realization streams.
    pub seed: u64,
    /// Fan out over rayon. Deterministic either way.
    pub parallel: bool,
}

impl Default for RealizationConfig {
    fn default() -> Self {
        Self {
            realizations: 1000,
            seed: 0,
            parallel: true,
        }
    }
}

impl RealizationConfig {
    /// A config with the given realization count (seed 0, parallel).
    #[must_use]
    pub fn with_realizations(realizations: usize) -> Self {
        Self {
            realizations,
            ..Self::default()
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables rayon fan-out (used by the parallel-vs-serial ablation
    /// bench).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// Draws `cfg.realizations` realized makespans for `schedule`.
///
/// # Errors
/// Returns [`CycleError`] when the schedule is incompatible with the
/// instance's graph.
pub fn realized_makespans(
    inst: &Instance,
    schedule: &Schedule,
    cfg: &RealizationConfig,
) -> Result<Vec<f64>, CycleError> {
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    Ok(realized_makespans_with(inst, schedule, &ds, cfg))
}

/// Same as [`realized_makespans`] but reuses a prebuilt disjunctive graph
/// (hot path for experiment sweeps that evaluate one schedule many times).
pub fn realized_makespans_with(
    inst: &Instance,
    schedule: &Schedule,
    ds: &DisjunctiveGraph,
    cfg: &RealizationConfig,
) -> Vec<f64> {
    let seeds = SeedStream::new(cfg.seed);
    let assignment = schedule.assignment();
    let n = assignment.len();
    // Flatten `G_s` once: transfer times are fixed by the schedule, so
    // every realization only re-samples durations and re-walks the flat
    // arrays, reusing per-thread duration/finish buffers — zero
    // allocations per realization. Realizations are processed in chunks
    // of `LANES`: each lane samples from its own realization's RNG stream
    // in the original order (per task, ascending), then one batched SoA
    // walk times all lanes at once. Per-lane results are bit-identical to
    // the scalar path; tail lanes of a ragged final chunk carry padding
    // durations and are discarded.
    let csr = crate::csr::DisjunctiveCsr::from_disjunctive(ds, schedule, &inst.platform);
    let chunks = cfg.realizations.div_ceil(LANES);
    let one = |bufs: &mut (Vec<f64>, Vec<f64>), c: usize| -> ([f64; LANES], usize) {
        let (durations, finish) = bufs;
        ensure_scratch_len(durations, LANES * n);
        ensure_scratch_len(finish, LANES * n);
        let lanes = LANES.min(cfg.realizations - c * LANES);
        for l in 0..lanes {
            let mut rng = seeds.nth_rng((c * LANES + l) as u64);
            for (t, &p) in assignment.iter().enumerate() {
                durations[LANES * t + l] = inst.timing.sample(t, p, &mut rng);
            }
        }
        let mut out = [0.0; LANES];
        csr.makespan_batch(durations, finish, &mut out);
        (out, lanes)
    };
    let chunked: Vec<([f64; LANES], usize)> = if cfg.parallel {
        (0..chunks)
            .into_par_iter()
            .map_init(|| (Vec::new(), Vec::new()), |bufs, c| one(bufs, c))
            .collect()
    } else {
        let mut bufs = (Vec::new(), Vec::new());
        (0..chunks).map(|c| one(&mut bufs, c)).collect()
    };
    let mut makespans = Vec::with_capacity(cfg.realizations);
    for (out, lanes) in chunked {
        makespans.extend_from_slice(&out[..lanes]);
    }
    makespans
}

/// Full Monte Carlo evaluation: expected makespan, slack, realized
/// makespans, and the robustness metrics of Definitions 3.6/3.7.
///
/// ```
/// use rds_sched::{monte_carlo, InstanceSpec, RealizationConfig};
///
/// let inst = InstanceSpec::new(20, 3).seed(1).uncertainty_level(4.0).build()?;
/// // Any valid schedule works; derive one from a topological order.
/// let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
/// let assignment: Vec<_> = (0..20).map(|i| rds_platform::ProcId((i % 3) as u32)).collect();
/// let schedule = rds_sched::Schedule::from_order_and_assignment(&order, &assignment, 3)?;
///
/// let report = monte_carlo(&inst, &schedule, &RealizationConfig::with_realizations(200))?;
/// assert!(report.expected_makespan > 0.0);
/// assert!(report.r1 > 0.0);               // 1 / E[tardiness]
/// assert!(report.miss_rate <= 1.0);       // fraction of overruns
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
/// Returns [`CycleError`] when the schedule is incompatible with the
/// instance's graph.
///
/// # Panics
/// Panics when `cfg.realizations == 0`.
pub fn monte_carlo(
    inst: &Instance,
    schedule: &Schedule,
    cfg: &RealizationConfig,
) -> Result<RobustnessReport, CycleError> {
    assert!(cfg.realizations > 0, "need at least one realization");
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    let durations = timing::expected_durations(&inst.timing, schedule);
    let analysis = slack::analyze(&ds, schedule, &inst.platform, &durations);
    let makespans = realized_makespans_with(inst, schedule, &ds, cfg);
    Ok(RobustnessReport::from_makespans(
        analysis.makespan,
        analysis.average_slack,
        makespans,
    ))
}

/// Samples one realization's full `n × m` duration matrix (every task on
/// every processor) from the instance's realization law.
///
/// Streams are per-task (`nth_rng(task)`), the exact discipline
/// `dynamic.rs` uses, so a task's draws do not depend on how many
/// processors other tasks were sampled for — and the dynamic dispatcher
/// and the faulty executor see identical draws for the same
/// `realization_seed`.
#[must_use]
pub fn sample_realized_matrix(
    timing: &rds_platform::TimingModel,
    tasks: usize,
    procs: usize,
    realization_seed: u64,
) -> Matrix {
    let seeds = SeedStream::new(realization_seed);
    let mut mx = Matrix::zeros(tasks, procs);
    for t in 0..tasks {
        let mut rng = seeds.nth_rng(t as u64);
        for p in 0..procs {
            mx.set(t, p, timing.sample(t, ProcId(p as u32), &mut rng));
        }
    }
    mx
}

/// Pessimistic restart-from-scratch makespan bound: twice the serial sum of
/// per-task worst-processor expected durations. Used as the failure penalty
/// in [`FaultRobustnessReport::effective_mean`] comparisons — any completed
/// recovery (even single-survivor serial execution, where realized
/// durations stay below `2·UL·b`) beats abandoning the realization.
#[must_use]
pub fn failure_penalty(inst: &Instance) -> f64 {
    let serial_worst: f64 = (0..inst.task_count())
        .map(|t| {
            (0..inst.proc_count())
                .map(|p| inst.timing.expected(t, ProcId(p as u32)))
                .fold(0.0f64, f64::max)
        })
        .sum();
    2.0 * serial_worst
}

/// Monte Carlo evaluation under injected faults: every realization draws a
/// duration matrix *and* a [`FaultScenario`], executes the schedule through
/// [`execute_with_faults`] with the given recovery policy, and the
/// outcomes aggregate into a [`FaultRobustnessReport`].
///
/// Determinism contract `(seed, realization, fault-kind)`: realization `i`
/// derives its duration stream from `branch("fault-durations")` and its
/// scenario from `branch("fault-scenario")` of `cfg.seed`, each indexed by
/// `nth_seed(i)` — results are bit-identical regardless of `cfg.parallel`
/// or thread count, and match `dynamic_makespans_faulty` realization for
/// realization when seeds agree.
///
/// When `faults.horizon <= 0` the schedule's expected makespan `M₀` is
/// substituted, so failure/slowdown onsets land inside the execution
/// window.
///
/// # Errors
/// Returns [`CycleError`] when the schedule is incompatible with the
/// instance's graph.
///
/// # Panics
/// Panics when `cfg.realizations == 0` or the fault config is invalid.
pub fn monte_carlo_faulty(
    inst: &Instance,
    schedule: &Schedule,
    cfg: &RealizationConfig,
    faults: &FaultConfig,
    recovery: &RecoveryConfig,
) -> Result<FaultRobustnessReport, CycleError> {
    monte_carlo_faulty_inner(inst, schedule, cfg, faults, recovery, None)
}

/// [`monte_carlo_faulty`] with proactive replication: every realization
/// additionally draws per-replica durations and crash gates from the
/// dedicated `branch("replica-draws")` substream (so primary-task draws are
/// untouched by the presence of replicas) and executes through
/// [`execute_replicated`] with first-finisher-wins semantics.
///
/// With an empty plan this is bit-identical to [`monte_carlo_faulty`].
///
/// # Errors
/// Returns [`CycleError`] when the schedule is incompatible with the
/// instance's graph.
///
/// # Panics
/// Panics when `cfg.realizations == 0`, the fault config is invalid, or
/// `recovery.checkpoint` is malformed.
pub fn monte_carlo_replicated(
    inst: &Instance,
    schedule: &Schedule,
    plan: &ReplicaPlan,
    cfg: &RealizationConfig,
    faults: &FaultConfig,
    recovery: &RecoveryConfig,
) -> Result<FaultRobustnessReport, CycleError> {
    monte_carlo_faulty_inner(inst, schedule, cfg, faults, recovery, Some(plan))
}

/// [`monte_carlo_replicated`] with the sentinel attached: every realization
/// executes through [`crate::sentinel::execute_adaptive`], so overruns that
/// burn through a task's slack account trigger the escalation ladder
/// (bounded replans, speculation, graceful degradation) on top of the
/// reactive recovery policy.
///
/// The slack analysis feeding the sentinel's accounts is computed once from
/// the expected-duration timing of `schedule` and shared across
/// realizations. The report carries the ε-deadline
/// `sentinel.epsilon · M₀` and its miss rate (failed realizations count as
/// misses); degraded completions count as *completions* at their realized
/// makespan — the degradation level is visible through
/// `mean_dropped_tasks` / `mean_dropped_weight` instead.
///
/// Determinism contract is identical to [`monte_carlo_replicated`]: same
/// three seed branches, bit-identical results regardless of `cfg.parallel`.
///
/// # Errors
/// Returns [`CycleError`] when the schedule is incompatible with the
/// instance's graph.
///
/// # Panics
/// Panics when `cfg.realizations == 0`, the fault config is invalid,
/// `recovery.checkpoint` is malformed, or the sentinel config is invalid.
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_adaptive(
    inst: &Instance,
    schedule: &Schedule,
    plan: &ReplicaPlan,
    cfg: &RealizationConfig,
    faults: &FaultConfig,
    recovery: &RecoveryConfig,
    sentinel: &crate::sentinel::SentinelConfig,
) -> Result<FaultRobustnessReport, CycleError> {
    assert!(cfg.realizations > 0, "need at least one realization");
    if let Some(c) = &recovery.checkpoint {
        CheckpointConfig::new(c.interval, c.overhead).expect("invalid checkpoint config");
    }
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    let durations = timing::expected_durations(&inst.timing, schedule);
    let analysis = slack::analyze(&ds, schedule, &inst.platform, &durations);
    let fcfg = if faults.horizon > 0.0 {
        *faults
    } else {
        faults.with_horizon(analysis.makespan)
    };

    let n = inst.task_count();
    let m = inst.proc_count();
    let dur_seeds = SeedStream::new(cfg.seed).branch("fault-durations");
    let scen_seeds = SeedStream::new(cfg.seed).branch("fault-scenario");
    let replica_seeds = SeedStream::new(cfg.seed).branch("replica-draws");
    let one = |i: usize| -> (Option<f64>, RecoveryStats) {
        let mx = sample_realized_matrix(&inst.timing, n, m, dur_seeds.nth_seed(i as u64));
        let scenario = FaultScenario::generate(&fcfg, n, m, scen_seeds.nth_seed(i as u64));
        let draws = ReplicaDraws::generate(
            plan,
            &inst.timing,
            fcfg.crash_rate,
            replica_seeds.nth_seed(i as u64),
        );
        match crate::sentinel::execute_adaptive(
            inst, schedule, &mx, &scenario, recovery, plan, &draws, &analysis, sentinel,
        ) {
            Ok(run) => (run.outcome.makespan(), run.stats),
            Err(_) => (None, RecoveryStats::default()),
        }
    };
    let outcomes: Vec<(Option<f64>, RecoveryStats)> = if cfg.parallel {
        (0..cfg.realizations).into_par_iter().map(one).collect()
    } else {
        (0..cfg.realizations).map(one).collect()
    };

    let mut completed = Vec::with_capacity(outcomes.len());
    let mut failed = 0usize;
    let mut totals = RecoveryStats::default();
    for (makespan, stats) in &outcomes {
        match makespan {
            Some(ms) => completed.push(*ms),
            None => failed += 1,
        }
        totals.absorb(stats);
    }
    Ok(FaultRobustnessReport::from_outcomes(
        analysis.makespan,
        analysis.average_slack,
        completed,
        failed,
        &totals,
    )
    .with_deadline(sentinel.epsilon * analysis.makespan))
}

fn monte_carlo_faulty_inner(
    inst: &Instance,
    schedule: &Schedule,
    cfg: &RealizationConfig,
    faults: &FaultConfig,
    recovery: &RecoveryConfig,
    replicas: Option<&ReplicaPlan>,
) -> Result<FaultRobustnessReport, CycleError> {
    assert!(cfg.realizations > 0, "need at least one realization");
    if let Some(c) = &recovery.checkpoint {
        // Surface bad knobs once, up front, instead of per realization.
        CheckpointConfig::new(c.interval, c.overhead).expect("invalid checkpoint config");
    }
    let ds = DisjunctiveGraph::build(&inst.graph, schedule)?;
    let durations = timing::expected_durations(&inst.timing, schedule);
    let analysis = slack::analyze(&ds, schedule, &inst.platform, &durations);
    let fcfg = if faults.horizon > 0.0 {
        *faults
    } else {
        faults.with_horizon(analysis.makespan)
    };

    let n = inst.task_count();
    let m = inst.proc_count();
    let dur_seeds = SeedStream::new(cfg.seed).branch("fault-durations");
    let scen_seeds = SeedStream::new(cfg.seed).branch("fault-scenario");
    let replica_seeds = SeedStream::new(cfg.seed).branch("replica-draws");
    let one = |i: usize| -> (Option<f64>, RecoveryStats) {
        let mx = sample_realized_matrix(&inst.timing, n, m, dur_seeds.nth_seed(i as u64));
        let scenario = FaultScenario::generate(&fcfg, n, m, scen_seeds.nth_seed(i as u64));
        let run = match replicas {
            Some(plan) => {
                let draws = ReplicaDraws::generate(
                    plan,
                    &inst.timing,
                    fcfg.crash_rate,
                    replica_seeds.nth_seed(i as u64),
                );
                execute_replicated(inst, schedule, &mx, &scenario, recovery, plan, &draws)
            }
            None => execute_with_faults(inst, schedule, &mx, &scenario, recovery),
        };
        match run {
            Ok(run) => (run.outcome.makespan(), run.stats),
            // Shapes are correct by construction here, so only an internal
            // invariant breach can land in this arm; score the realization
            // as failed rather than panicking the whole sweep.
            Err(_) => (None, RecoveryStats::default()),
        }
    };
    let outcomes: Vec<(Option<f64>, RecoveryStats)> = if cfg.parallel {
        (0..cfg.realizations).into_par_iter().map(one).collect()
    } else {
        (0..cfg.realizations).map(one).collect()
    };

    let mut completed = Vec::with_capacity(outcomes.len());
    let mut failed = 0usize;
    let mut totals = RecoveryStats::default();
    for (makespan, stats) in &outcomes {
        match makespan {
            Some(ms) => completed.push(*ms),
            None => failed += 1,
        }
        totals.absorb(stats);
    }
    Ok(FaultRobustnessReport::from_outcomes(
        analysis.makespan,
        analysis.average_slack,
        completed,
        failed,
        &totals,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;
    use rds_graph::TaskId;
    use rds_platform::ProcId;

    /// A simple round-robin schedule used as a test subject.
    fn round_robin(inst: &Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let m = inst.proc_count();
        let assignment: Vec<ProcId> = (0..inst.task_count())
            .map(|i| ProcId((i % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    #[test]
    fn deterministic_across_parallel_and_serial() {
        let inst = InstanceSpec::new(30, 3).seed(11).build().unwrap();
        let s = round_robin(&inst);
        let par = realized_makespans(&inst, &s, &RealizationConfig::with_realizations(64).seed(5))
            .unwrap();
        let ser = realized_makespans(
            &inst,
            &s,
            &RealizationConfig::with_realizations(64).seed(5).serial(),
        )
        .unwrap();
        assert_eq!(par, ser);
    }

    #[test]
    fn different_seeds_differ() {
        let inst = InstanceSpec::new(20, 2).seed(3).build().unwrap();
        let s = round_robin(&inst);
        let a = realized_makespans(&inst, &s, &RealizationConfig::with_realizations(16).seed(1))
            .unwrap();
        let b = realized_makespans(&inst, &s, &RealizationConfig::with_realizations(16).seed(2))
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn realized_makespans_bounded_below_by_bcet_makespan() {
        // Every realized duration >= BCET, so every realized makespan is at
        // least the all-BCET makespan.
        let inst = InstanceSpec::new(25, 3)
            .seed(7)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let bcet_durs: Vec<f64> = (0..inst.task_count())
            .map(|i| inst.timing.best_case(i, s.proc_of(TaskId(i as u32))))
            .collect();
        let mut scratch = Vec::new();
        let floor =
            timing::makespan_with_durations(&ds, &s, &inst.platform, &bcet_durs, &mut scratch);
        let ms = realized_makespans(&inst, &s, &RealizationConfig::with_realizations(50).seed(9))
            .unwrap();
        for m in ms {
            assert!(m >= floor - 1e-9, "{m} < floor {floor}");
        }
    }

    #[test]
    fn monte_carlo_report_is_consistent() {
        let inst = InstanceSpec::new(30, 3)
            .seed(13)
            .uncertainty_level(2.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let rep = monte_carlo(
            &inst,
            &s,
            &RealizationConfig::with_realizations(200).seed(1),
        )
        .unwrap();
        assert_eq!(rep.realizations, 200);
        assert!(rep.expected_makespan > 0.0);
        assert!(rep.mean_makespan > 0.0);
        assert!(rep.miss_rate >= 0.0 && rep.miss_rate <= 1.0);
        assert!(rep.r1 > 0.0);
        assert!(rep.r2 >= 1.0); // 1/α ≥ 1
        assert!(rep.average_slack >= 0.0);
        // With UL >= 1 the mean realized makespan is at least near M0's
        // BCET floor; sanity: mean within (0, 3×M0].
        assert!(rep.mean_makespan <= 3.0 * rep.expected_makespan);
    }

    #[test]
    fn higher_uncertainty_increases_tardiness() {
        let lo = InstanceSpec::new(40, 4)
            .seed(21)
            .uncertainty_level(2.0)
            .build()
            .unwrap();
        let hi = InstanceSpec::new(40, 4)
            .seed(21)
            .uncertainty_level(8.0)
            .build()
            .unwrap();
        let s_lo = round_robin(&lo);
        let s_hi = round_robin(&hi);
        let cfg = RealizationConfig::with_realizations(300).seed(2);
        let rep_lo = monte_carlo(&lo, &s_lo, &cfg).unwrap();
        let rep_hi = monte_carlo(&hi, &s_hi, &cfg).unwrap();
        // More uncertainty -> relatively larger spread of realized
        // makespans around M0. Compare coefficient-style ratios.
        let spread_lo = rep_lo.makespans.std_dev() / rep_lo.expected_makespan;
        let spread_hi = rep_hi.makespans.std_dev() / rep_hi.expected_makespan;
        assert!(
            spread_hi > spread_lo,
            "spread_hi {spread_hi} <= spread_lo {spread_lo}"
        );
    }

    #[test]
    fn deterministic_instance_never_misses() {
        // UL exactly 1 everywhere: realized == expected == BCET.
        let base = InstanceSpec::new(15, 2).seed(4).build().unwrap();
        let timing =
            rds_platform::TimingModel::deterministic(base.timing.bcet_matrix().clone()).unwrap();
        let inst = Instance::new(base.graph, base.platform, timing).unwrap();
        let s = round_robin(&inst);
        let rep =
            monte_carlo(&inst, &s, &RealizationConfig::with_realizations(32).seed(8)).unwrap();
        assert_eq!(rep.miss_rate, 0.0);
        assert_eq!(rep.r1, f64::INFINITY);
        assert_eq!(rep.r2, f64::INFINITY);
        assert!((rep.mean_makespan - rep.expected_makespan).abs() < 1e-9);
    }

    #[test]
    fn sampled_matrix_is_deterministic_and_in_law_bounds() {
        let inst = InstanceSpec::new(20, 3)
            .seed(6)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let a = sample_realized_matrix(&inst.timing, 20, 3, 42);
        let b = sample_realized_matrix(&inst.timing, 20, 3, 42);
        assert_eq!(a.as_slice(), b.as_slice());
        for (t, p, d) in a.iter() {
            let bcet = inst.timing.best_case(t, ProcId(p as u32));
            assert!(d >= bcet - 1e-12, "draw below BCET at ({t},{p})");
        }
    }

    #[test]
    fn monte_carlo_faulty_deterministic_across_parallel_and_serial() {
        use crate::faults::FaultConfig;
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};
        let inst = InstanceSpec::new(30, 4)
            .seed(9)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let faults = FaultConfig::default();
        let rec = RecoveryConfig::new(RecoveryPolicy::MigrateReplan);
        let par = monte_carlo_faulty(
            &inst,
            &s,
            &RealizationConfig::with_realizations(48).seed(3),
            &faults,
            &rec,
        )
        .unwrap();
        let ser = monte_carlo_faulty(
            &inst,
            &s,
            &RealizationConfig::with_realizations(48).seed(3).serial(),
            &faults,
            &rec,
        )
        .unwrap();
        // Bit-identical aggregation regardless of thread fan-out.
        assert_eq!(par.completed, ser.completed);
        assert_eq!(par.mean_makespan.to_bits(), ser.mean_makespan.to_bits());
        assert_eq!(par.mean_tardiness.to_bits(), ser.mean_tardiness.to_bits());
        assert_eq!(par.mean_lost_work.to_bits(), ser.mean_lost_work.to_bits());
        assert_eq!(par.mean_replans, ser.mean_replans);
    }

    #[test]
    fn monte_carlo_faulty_quiet_faults_match_plain_monte_carlo_shape() {
        use crate::faults::FaultConfig;
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};
        let inst = InstanceSpec::new(25, 3)
            .seed(12)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let rep = monte_carlo_faulty(
            &inst,
            &s,
            &RealizationConfig::with_realizations(64).seed(7),
            &FaultConfig::quiet(),
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        // No faults: nothing fails, no recovery effort, finite stats.
        assert_eq!(rep.failed_rate, 0.0);
        assert_eq!(rep.completed, 64);
        assert_eq!(rep.mean_replans, 0.0);
        assert_eq!(rep.mean_retries, 0.0);
        assert_eq!(rep.mean_lost_work, 0.0);
        assert!(rep.mean_makespan.is_finite() && rep.mean_makespan > 0.0);
        // And it agrees with the fault-free engine's expected makespan.
        let plain =
            monte_carlo(&inst, &s, &RealizationConfig::with_realizations(64).seed(7)).unwrap();
        assert!((rep.expected_makespan - plain.expected_makespan).abs() < 1e-12);
    }

    #[test]
    fn migrate_replan_beats_fail_stop_under_permanent_failures() {
        use crate::faults::FaultConfig;
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};
        let inst = InstanceSpec::new(30, 4)
            .seed(17)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let faults = FaultConfig {
            failure_rate: 0.3,
            ..FaultConfig::quiet()
        };
        let cfg = RealizationConfig::with_realizations(100).seed(5);
        let stop = monte_carlo_faulty(
            &inst,
            &s,
            &cfg,
            &faults,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        let migrate = monte_carlo_faulty(
            &inst,
            &s,
            &cfg,
            &faults,
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
        )
        .unwrap();
        assert!(stop.failed_rate > 0.0, "failures must bite at rate 0.3");
        assert_eq!(migrate.failed_rate, 0.0, "migrate-replan never gives up");
        let penalty = failure_penalty(&inst);
        assert!(
            migrate.effective_mean(penalty) < stop.effective_mean(penalty),
            "migrate {} !< fail-stop {}",
            migrate.effective_mean(penalty),
            stop.effective_mean(penalty)
        );
    }

    #[test]
    fn replicated_with_empty_plan_matches_unreplicated_bitwise() {
        use crate::faults::FaultConfig;
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};
        use crate::replication::ReplicaPlan;
        let inst = InstanceSpec::new(25, 3)
            .seed(19)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let faults = FaultConfig::default();
        let rec = RecoveryConfig::new(RecoveryPolicy::MigrateReplan);
        let cfg = RealizationConfig::with_realizations(48).seed(3);
        let plain = monte_carlo_faulty(&inst, &s, &cfg, &faults, &rec).unwrap();
        let empty = ReplicaPlan::empty(inst.task_count());
        let repl = monte_carlo_replicated(&inst, &s, &empty, &cfg, &faults, &rec).unwrap();
        assert_eq!(plain.completed, repl.completed);
        assert_eq!(plain.mean_makespan.to_bits(), repl.mean_makespan.to_bits());
        assert_eq!(
            plain.mean_lost_work.to_bits(),
            repl.mean_lost_work.to_bits()
        );
        assert_eq!(repl.mean_replica_wins, 0.0);
        assert_eq!(repl.mean_duplicate_work, 0.0);
    }

    #[test]
    fn adaptive_is_deterministic_and_reports_deadline_metrics() {
        use crate::faults::FaultConfig;
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};
        use crate::replication::ReplicaPlan;
        use crate::sentinel::SentinelConfig;
        let inst = InstanceSpec::new(30, 4)
            .seed(29)
            .uncertainty_level(3.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let faults = FaultConfig::default();
        let rec = RecoveryConfig::new(RecoveryPolicy::MigrateReplan);
        let plan = ReplicaPlan::empty(inst.task_count());
        let scfg = SentinelConfig::default();
        let cfg = RealizationConfig::with_realizations(48).seed(11);
        let par = monte_carlo_adaptive(&inst, &s, &plan, &cfg, &faults, &rec, &scfg).unwrap();
        let ser =
            monte_carlo_adaptive(&inst, &s, &plan, &cfg.serial(), &faults, &rec, &scfg).unwrap();
        assert_eq!(par.completed, ser.completed);
        assert_eq!(par.mean_makespan.to_bits(), ser.mean_makespan.to_bits());
        assert_eq!(par.mean_sentinel_fires, ser.mean_sentinel_fires);
        let deadline = par.deadline.expect("adaptive runs carry the ε-deadline");
        assert!((deadline - scfg.epsilon * par.expected_makespan).abs() < 1e-12);
        let miss = par.deadline_miss_rate.unwrap();
        assert!((0.0..=1.0).contains(&miss));
    }

    #[test]
    fn adaptive_with_deterministic_timing_matches_replicated_bitwise() {
        use crate::faults::FaultConfig;
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};
        use crate::replication::ReplicaPlan;
        use crate::sentinel::SentinelConfig;
        // UL exactly 1: realized == expected, so no task ever overruns its
        // account and the sentinel stays silent — the adaptive engine must
        // be bit-identical to the non-sentinel path.
        let base = InstanceSpec::new(20, 3).seed(31).build().unwrap();
        let timing =
            rds_platform::TimingModel::deterministic(base.timing.bcet_matrix().clone()).unwrap();
        let inst = Instance::new(base.graph, base.platform, timing).unwrap();
        let s = round_robin(&inst);
        let faults = FaultConfig::quiet();
        let rec = RecoveryConfig::new(RecoveryPolicy::MigrateReplan);
        let plan = ReplicaPlan::empty(inst.task_count());
        let cfg = RealizationConfig::with_realizations(32).seed(13);
        let adaptive = monte_carlo_adaptive(
            &inst,
            &s,
            &plan,
            &cfg,
            &faults,
            &rec,
            &SentinelConfig::default(),
        )
        .unwrap();
        let plain = monte_carlo_replicated(&inst, &s, &plan, &cfg, &faults, &rec).unwrap();
        assert_eq!(adaptive.completed, plain.completed);
        assert_eq!(
            adaptive.mean_makespan.to_bits(),
            plain.mean_makespan.to_bits()
        );
        assert_eq!(adaptive.mean_sentinel_fires, 0.0);
        assert_eq!(adaptive.mean_dropped_tasks, 0.0);
        assert_eq!(adaptive.deadline_miss_rate, Some(0.0));
    }

    #[test]
    fn replication_raises_completion_probability_under_failures() {
        use crate::faults::FaultConfig;
        use crate::recovery::{RecoveryConfig, RecoveryPolicy};
        use crate::replication::{plan_replicas, ReplicationConfig};
        let inst = InstanceSpec::new(30, 4)
            .seed(23)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let s = round_robin(&inst);
        let faults = FaultConfig {
            failure_rate: 0.5,
            ..FaultConfig::quiet()
        };
        let rec = RecoveryConfig::new(RecoveryPolicy::RetrySameProc);
        let cfg = RealizationConfig::with_realizations(100).seed(5);
        let base = monte_carlo_faulty(&inst, &s, &cfg, &faults, &rec).unwrap();
        assert!(
            base.failed_rate > 0.0,
            "failures must bite without replicas"
        );
        let plan = plan_replicas(&inst, &s, &ReplicationConfig::with_budget(1.0)).unwrap();
        let repl = monte_carlo_replicated(&inst, &s, &plan, &cfg, &faults, &rec).unwrap();
        assert!(
            repl.completion_probability > base.completion_probability,
            "replication {} !> baseline {}",
            repl.completion_probability,
            base.completion_probability
        );
        assert!(repl.mean_replica_wins > 0.0);
        assert!(repl.replication_overhead() >= 0.0);
        // Determinism across thread fan-out, replica draws included.
        let serial =
            monte_carlo_replicated(&inst, &s, &plan, &cfg.serial(), &faults, &rec).unwrap();
        assert_eq!(repl.completed, serial.completed);
        assert_eq!(repl.mean_makespan.to_bits(), serial.mean_makespan.to_bits());
    }
}

//! Plain-text serialization of instances and schedules.
//!
//! A small, line-oriented, whitespace-separated format so instances can be
//! archived, diffed and shared between runs without pulling a JSON stack
//! into the workspace:
//!
//! ```text
//! rds-instance v1
//! tasks 4
//! procs 2
//! edges 3
//! edge 0 1 12.5
//! edge 0 2 8
//! edge 1 3 4
//! bcet
//! 1.0 2.0
//! ...
//! ul
//! 1.5 2.0
//! ...
//! rates
//! 0 1.0
//! 1.0 0
//! ```
//!
//! Schedules serialize as per-processor task id lists. Both formats
//! round-trip exactly (floats are written with `{:?}`, which is lossless
//! for `f64`).

use std::fmt::Write as _;

use rds_graph::{TaskGraphBuilder, TaskId};
use rds_platform::{Platform, TimingModel};
use rds_stats::matrix::Matrix;

use crate::instance::Instance;
use crate::schedule::Schedule;

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 = preamble/EOF issues).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serializes an instance to the text format.
#[must_use]
pub fn write_instance(inst: &Instance) -> String {
    let n = inst.task_count();
    let m = inst.proc_count();
    let mut out = String::new();
    let _ = writeln!(out, "rds-instance v1");
    let _ = writeln!(out, "tasks {n}");
    let _ = writeln!(out, "procs {m}");
    let edges: Vec<_> = inst.graph.edges().collect();
    let _ = writeln!(out, "edges {}", edges.len());
    for (from, to, data) in edges {
        let _ = writeln!(out, "edge {} {} {:?}", from.index(), to.index(), data);
    }
    let write_matrix = |out: &mut String,
                        name: &str,
                        rows: usize,
                        get: &dyn Fn(usize, usize) -> f64,
                        cols: usize| {
        let _ = writeln!(out, "{name}");
        for r in 0..rows {
            let row: Vec<String> = (0..cols).map(|c| format!("{:?}", get(r, c))).collect();
            let _ = writeln!(out, "{}", row.join(" "));
        }
    };
    write_matrix(
        &mut out,
        "bcet",
        n,
        &|r, c| inst.timing.bcet_matrix()[(r, c)],
        m,
    );
    write_matrix(
        &mut out,
        "ul",
        n,
        &|r, c| inst.timing.ul_matrix()[(r, c)],
        m,
    );
    write_matrix(
        &mut out,
        "rates",
        m,
        &|r, c| {
            if r == c {
                0.0
            } else {
                inst.platform.rate(
                    rds_platform::ProcId(r as u32),
                    rds_platform::ProcId(c as u32),
                )
            }
        },
        m,
    );
    out
}

/// Parses an instance from the text format.
///
/// # Errors
/// Returns [`ParseError`] with the offending line on any malformation.
pub fn read_instance(text: &str) -> Result<Instance, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let mut next_content = move || -> Option<(usize, &str)> {
        lines
            .by_ref()
            .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
    };

    let (ln, header) = next_content().ok_or_else(|| err(0, "empty input"))?;
    if header != "rds-instance v1" {
        return Err(err(
            ln,
            format!("expected 'rds-instance v1', got '{header}'"),
        ));
    }
    let parse_kv =
        |expected: &str, got: Option<(usize, &str)>| -> Result<(usize, usize), ParseError> {
            let (ln, l) = got.ok_or_else(|| err(0, format!("missing '{expected}' line")))?;
            let mut it = l.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(k), Some(v), None) if k == expected => v
                    .parse::<usize>()
                    .map(|v| (ln, v))
                    .map_err(|e| err(ln, format!("bad {expected} count: {e}"))),
                _ => Err(err(ln, format!("expected '{expected} <count>', got '{l}'"))),
            }
        };
    let (_, n) = parse_kv("tasks", next_content())?;
    let (_, m) = parse_kv("procs", next_content())?;
    let (_, ne) = parse_kv("edges", next_content())?;

    let mut builder = TaskGraphBuilder::with_tasks(n);
    for _ in 0..ne {
        let (ln, l) = next_content().ok_or_else(|| err(0, "unexpected EOF in edges"))?;
        let parts: Vec<&str> = l.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "edge" {
            return Err(err(
                ln,
                format!("expected 'edge <from> <to> <data>', got '{l}'"),
            ));
        }
        let from: u32 = parts[1]
            .parse()
            .map_err(|e| err(ln, format!("bad from: {e}")))?;
        let to: u32 = parts[2]
            .parse()
            .map_err(|e| err(ln, format!("bad to: {e}")))?;
        let data: f64 = parts[3]
            .parse()
            .map_err(|e| err(ln, format!("bad data: {e}")))?;
        builder.add_edge(TaskId(from), TaskId(to), data);
    }
    let graph = builder
        .build()
        .map_err(|e| err(0, format!("invalid graph: {e}")))?;

    let mut read_matrix = |name: &str, rows: usize, cols: usize| -> Result<Matrix, ParseError> {
        let (ln, l) = next_content().ok_or_else(|| err(0, format!("missing '{name}' section")))?;
        if l != name {
            return Err(err(ln, format!("expected section '{name}', got '{l}'")));
        }
        let mut mat = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let (ln, l) =
                next_content().ok_or_else(|| err(0, format!("unexpected EOF in {name}")))?;
            let vals: Vec<&str> = l.split_whitespace().collect();
            if vals.len() != cols {
                return Err(err(
                    ln,
                    format!("{name} row {r}: expected {cols} values, got {}", vals.len()),
                ));
            }
            for (c, v) in vals.iter().enumerate() {
                mat[(r, c)] = v
                    .parse()
                    .map_err(|e| err(ln, format!("{name}[{r}][{c}]: {e}")))?;
            }
        }
        Ok(mat)
    };
    let bcet = read_matrix("bcet", n, m)?;
    let ul = read_matrix("ul", n, m)?;
    let mut rates = read_matrix("rates", m, m)?;
    // The writer stores 0 on the diagonal; Platform ignores the diagonal
    // but requires positives elsewhere. Restore a harmless diagonal.
    for d in 0..m {
        rates[(d, d)] = 1.0;
    }

    let platform =
        Platform::from_rates(m, rates).map_err(|e| err(0, format!("invalid rates: {e}")))?;
    let timing = TimingModel::new(bcet, ul).map_err(|e| err(0, format!("invalid timing: {e}")))?;
    Instance::new(graph, platform, timing).map_err(|e| err(0, e))
}

/// Serializes a schedule.
#[must_use]
pub fn write_schedule(s: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rds-schedule v1");
    let _ = writeln!(out, "tasks {}", s.task_count());
    let _ = writeln!(out, "procs {}", s.proc_count());
    for p in 0..s.proc_count() {
        let ids: Vec<String> = s
            .tasks_on(rds_platform::ProcId(p as u32))
            .iter()
            .map(|t| t.index().to_string())
            .collect();
        let _ = writeln!(out, "proc {p}: {}", ids.join(" "));
    }
    out
}

/// Parses a schedule.
///
/// # Errors
/// Returns [`ParseError`] on malformation (including task-coverage
/// violations detected by the schedule constructor).
pub fn read_schedule(text: &str) -> Result<Schedule, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let mut next_content = move || -> Option<(usize, &str)> {
        lines
            .by_ref()
            .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
    };
    let (ln, header) = next_content().ok_or_else(|| err(0, "empty input"))?;
    if header != "rds-schedule v1" {
        return Err(err(
            ln,
            format!("expected 'rds-schedule v1', got '{header}'"),
        ));
    }
    let parse_kv = |expected: &str, got: Option<(usize, &str)>| -> Result<usize, ParseError> {
        let (ln, l) = got.ok_or_else(|| err(0, format!("missing '{expected}' line")))?;
        let mut it = l.split_whitespace();
        match (it.next(), it.next(), it.next()) {
            (Some(k), Some(v), None) if k == expected => v
                .parse::<usize>()
                .map_err(|e| err(ln, format!("bad {expected}: {e}"))),
            _ => Err(err(ln, format!("expected '{expected} <count>', got '{l}'"))),
        }
    };
    let n = parse_kv("tasks", next_content())?;
    let m = parse_kv("procs", next_content())?;
    let mut proc_tasks: Vec<Vec<TaskId>> = Vec::with_capacity(m);
    for p in 0..m {
        let (ln, l) = next_content().ok_or_else(|| err(0, "unexpected EOF in proc lists"))?;
        let prefix = format!("proc {p}:");
        let rest = l
            .strip_prefix(&prefix)
            .ok_or_else(|| err(ln, format!("expected '{prefix} ...', got '{l}'")))?;
        let ids: Result<Vec<TaskId>, ParseError> = rest
            .split_whitespace()
            .map(|v| {
                v.parse::<u32>()
                    .map(TaskId)
                    .map_err(|e| err(ln, format!("bad task id '{v}': {e}")))
            })
            .collect();
        proc_tasks.push(ids?);
    }
    Schedule::from_proc_lists(n, proc_tasks).map_err(|e| err(0, format!("invalid schedule: {e}")))
}

/// A scheduling request: an instance plus scheduler choice and knobs,
/// wrapped in a line-oriented envelope so a long-running service can read
/// jobs off a byte stream. The embedded instance reuses the
/// `rds-instance v1` format verbatim:
///
/// ```text
/// rds-job v1
/// id job-42
/// algo ga
/// epsilon 1.3
/// seed 7
/// generations 120      # optional
/// deadline-ms 5000     # optional
/// lane heavy           # optional (express|heavy|online); default from algo
/// arrival 0.0          # optional (online lane): simulated arrival time
/// deadline 250.0       # optional (online lane): absolute completion deadline
/// objective tri        # optional (epsilon|tri); default epsilon
/// rel-min 0.9          # optional (tri objective): reliability threshold
/// client tenant-a      # optional: rate-limiting principal
/// instance
/// rds-instance v1
/// ...
/// end rds-job
/// ```
#[derive(Debug, Clone)]
pub struct JobEnvelope {
    /// Client-chosen job identifier (no whitespace; echoed in the result).
    pub id: String,
    /// Scheduler name (`heft|cpop|laheft|sheft|ga|sa`); interpreted by the
    /// service layer, opaque here.
    pub algo: String,
    /// ε of the ε-constraint objective (Eq. 7). Default 1.3.
    pub epsilon: f64,
    /// Seed for seeded schedulers. Default 0.
    pub seed: u64,
    /// GA generation budget override.
    pub generations: Option<usize>,
    /// Wall-clock deadline budget in milliseconds; overrunning GA jobs are
    /// cancelled cooperatively and degrade to best-so-far / HEFT.
    pub deadline_ms: Option<u64>,
    /// Priority-lane override (`express`, `heavy` or `online`).
    pub lane: Option<String>,
    /// Simulated arrival time of an online-lane job (scheduling time
    /// units, not wall clock). Must be paired with `deadline`.
    pub arrival: Option<f64>,
    /// Absolute completion deadline of an online-lane job, in the same
    /// simulated clock as `arrival`.
    pub deadline: Option<f64>,
    /// Objective mode: `epsilon` (default, the ε-constraint GA) or `tri`
    /// (energy- and reliability-aware tri-objective NSGA-II).
    pub objective: Option<String>,
    /// Reliability threshold for the `tri` objective, in `(0, 1]`.
    pub rel_min: Option<f64>,
    /// Client principal for per-client rate limiting (single token, like
    /// `id`). Anonymous jobs share one bucket.
    pub client: Option<String>,
    /// The problem instance.
    pub instance: Instance,
}

/// Header line of a job envelope (networked framing dispatches on it).
pub const JOB_HEADER: &str = "rds-job v1";
/// Header line of a result envelope.
pub const RESULT_HEADER: &str = "rds-result v1";
/// Terminator line of a job envelope.
pub const JOB_END: &str = "end rds-job";
/// Terminator line of a result envelope.
pub const RESULT_END: &str = "end rds-result";

/// Serializes a job envelope.
#[must_use]
pub fn write_job(job: &JobEnvelope) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{JOB_HEADER}");
    let _ = writeln!(out, "id {}", job.id);
    let _ = writeln!(out, "algo {}", job.algo);
    let _ = writeln!(out, "epsilon {:?}", job.epsilon);
    let _ = writeln!(out, "seed {}", job.seed);
    if let Some(g) = job.generations {
        let _ = writeln!(out, "generations {g}");
    }
    if let Some(d) = job.deadline_ms {
        let _ = writeln!(out, "deadline-ms {d}");
    }
    if let Some(lane) = &job.lane {
        let _ = writeln!(out, "lane {lane}");
    }
    if let Some(a) = job.arrival {
        let _ = writeln!(out, "arrival {a:?}");
    }
    if let Some(d) = job.deadline {
        let _ = writeln!(out, "deadline {d:?}");
    }
    if let Some(o) = &job.objective {
        let _ = writeln!(out, "objective {o}");
    }
    if let Some(r) = job.rel_min {
        let _ = writeln!(out, "rel-min {r:?}");
    }
    if let Some(c) = &job.client {
        let _ = writeln!(out, "client {c}");
    }
    let _ = writeln!(out, "instance");
    out.push_str(&write_instance(&job.instance));
    let _ = writeln!(out, "{JOB_END}");
    out
}

/// Splits a `key value` header line; the value may be empty.
fn split_header(l: &str) -> (&str, &str) {
    match l.split_once(char::is_whitespace) {
        Some((k, v)) => (k, v.trim()),
        None => (l, ""),
    }
}

/// Parses a job envelope (everything up to and including [`JOB_END`]).
///
/// # Errors
/// Returns [`ParseError`] with the offending line on any malformation —
/// job input is untrusted, so every failure path is typed, never a panic.
pub fn read_job(text: &str) -> Result<JobEnvelope, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (ln, header) = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .ok_or_else(|| err(0, "empty input"))?;
    if header != JOB_HEADER {
        return Err(err(ln, format!("expected '{JOB_HEADER}', got '{header}'")));
    }
    let mut id = None;
    let mut algo = None;
    let mut epsilon = 1.3;
    let mut seed = 0u64;
    let mut generations = None;
    let mut deadline_ms = None;
    let mut lane = None;
    let mut arrival = None;
    let mut deadline = None;
    let mut objective = None;
    let mut rel_min = None;
    let mut client = None;
    let mut instance_text: Option<String> = None;
    while let Some((ln, l)) = lines.next() {
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let (key, value) = split_header(l);
        match key {
            "id" => {
                if value.is_empty() || value.split_whitespace().count() != 1 {
                    return Err(err(ln, "id must be a single non-empty token"));
                }
                id = Some(value.to_owned());
            }
            "algo" => algo = Some(value.to_owned()),
            "epsilon" => {
                epsilon = value
                    .parse()
                    .map_err(|e| err(ln, format!("bad epsilon: {e}")))?;
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|e| err(ln, format!("bad seed: {e}")))?;
            }
            "generations" => {
                generations = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad generations: {e}")))?,
                );
            }
            "deadline-ms" => {
                deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad deadline-ms: {e}")))?,
                );
            }
            "lane" => {
                if value != "express" && value != "heavy" && value != "online" {
                    return Err(err(
                        ln,
                        format!("lane must be express|heavy|online, got '{value}'"),
                    ));
                }
                lane = Some(value.to_owned());
            }
            "arrival" => {
                arrival = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad arrival: {e}")))?,
                );
            }
            "deadline" => {
                deadline = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad deadline: {e}")))?,
                );
            }
            "objective" => {
                if value != "epsilon" && value != "tri" {
                    return Err(err(
                        ln,
                        format!("objective must be epsilon|tri, got '{value}'"),
                    ));
                }
                objective = Some(value.to_owned());
            }
            "rel-min" => {
                let r: f64 = value
                    .parse()
                    .map_err(|e| err(ln, format!("bad rel-min: {e}")))?;
                if !(r > 0.0 && r <= 1.0) {
                    return Err(err(ln, format!("rel-min must be in (0, 1], got {r}")));
                }
                rel_min = Some(r);
            }
            "client" => {
                if value.is_empty() || value.split_whitespace().count() != 1 {
                    return Err(err(ln, "client must be a single non-empty token"));
                }
                client = Some(value.to_owned());
            }
            "instance" => {
                // Collect the embedded instance verbatim up to the
                // terminator, then stop: the envelope ends there.
                let mut body = String::new();
                let mut terminated = false;
                for (_, l) in lines.by_ref() {
                    if l == JOB_END {
                        terminated = true;
                        break;
                    }
                    body.push_str(l);
                    body.push('\n');
                }
                if !terminated {
                    return Err(err(0, format!("missing '{JOB_END}' terminator")));
                }
                instance_text = Some(body);
                break;
            }
            other => return Err(err(ln, format!("unknown job header '{other}'"))),
        }
    }
    let instance_text = instance_text.ok_or_else(|| err(0, "missing 'instance' section"))?;
    let instance = read_instance(&instance_text)?;
    Ok(JobEnvelope {
        id: id.ok_or_else(|| err(0, "missing 'id' header"))?,
        algo: algo.ok_or_else(|| err(0, "missing 'algo' header"))?,
        epsilon,
        seed,
        generations,
        deadline_ms,
        lane,
        arrival,
        deadline,
        objective,
        rel_min,
        client,
        instance,
    })
}

/// A scheduling response: status, accounting, and (on success) the
/// schedule in the `rds-schedule v1` format:
///
/// ```text
/// rds-result v1
/// id job-42
/// status ok
/// cache miss
/// degraded none
/// makespan 123.25
/// avg-slack 1.75
/// verdict hit          # online lane: realized deadline verdict
/// probability 0.875    # online lane: completion probability at admission
/// schedule
/// rds-schedule v1
/// ...
/// end rds-result
/// ```
///
/// Rejections and errors carry a `reason` line instead of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEnvelope {
    /// Echoed job id.
    pub id: String,
    /// `ok`, `rejected` (admission control) or `error`.
    pub status: String,
    /// `hit`/`miss` when the service consulted its schedule cache.
    pub cache: Option<String>,
    /// Degradation tag (`none`, `deadline-best-so-far`, `deadline-heft`).
    pub degraded: Option<String>,
    /// Expected makespan `M₀` of the returned schedule.
    pub makespan: Option<f64>,
    /// Average slack of the returned schedule.
    pub avg_slack: Option<f64>,
    /// Total energy of the returned schedule (tri-objective jobs).
    pub energy: Option<f64>,
    /// Schedule reliability of the returned schedule (tri-objective jobs).
    pub reliability: Option<f64>,
    /// Online-lane deadline verdict (`hit`, `miss`, `rejected`,
    /// `dropped`).
    pub verdict: Option<String>,
    /// Online-lane completion probability estimated at admission.
    pub probability: Option<f64>,
    /// Human-readable reason for `rejected`/`error` statuses.
    pub reason: Option<String>,
    /// Overload fast-rejections: how long the client should wait before
    /// retrying, in milliseconds.
    pub retry_after_ms: Option<u64>,
    /// The schedule, present when `status == "ok"`.
    pub schedule: Option<Schedule>,
}

/// Serializes a result envelope.
#[must_use]
pub fn write_result(res: &ResultEnvelope) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{RESULT_HEADER}");
    let _ = writeln!(out, "id {}", res.id);
    let _ = writeln!(out, "status {}", res.status);
    if let Some(c) = &res.cache {
        let _ = writeln!(out, "cache {c}");
    }
    if let Some(d) = &res.degraded {
        let _ = writeln!(out, "degraded {d}");
    }
    if let Some(m) = res.makespan {
        let _ = writeln!(out, "makespan {m:?}");
    }
    if let Some(s) = res.avg_slack {
        let _ = writeln!(out, "avg-slack {s:?}");
    }
    if let Some(e) = res.energy {
        let _ = writeln!(out, "energy {e:?}");
    }
    if let Some(r) = res.reliability {
        let _ = writeln!(out, "reliability {r:?}");
    }
    if let Some(v) = &res.verdict {
        let _ = writeln!(out, "verdict {v}");
    }
    if let Some(p) = res.probability {
        let _ = writeln!(out, "probability {p:?}");
    }
    if let Some(r) = &res.reason {
        // Reasons are free text: strip newlines so the envelope stays
        // line-framed even for adversarial error strings.
        let _ = writeln!(out, "reason {}", r.replace(['\n', '\r'], " "));
    }
    if let Some(ms) = res.retry_after_ms {
        let _ = writeln!(out, "retry-after-ms {ms}");
    }
    if let Some(schedule) = &res.schedule {
        let _ = writeln!(out, "schedule");
        out.push_str(&write_schedule(schedule));
    }
    let _ = writeln!(out, "{RESULT_END}");
    out
}

/// Parses a result envelope.
///
/// # Errors
/// Returns [`ParseError`] on malformation.
pub fn read_result(text: &str) -> Result<ResultEnvelope, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (ln, header) = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .ok_or_else(|| err(0, "empty input"))?;
    if header != RESULT_HEADER {
        return Err(err(
            ln,
            format!("expected '{RESULT_HEADER}', got '{header}'"),
        ));
    }
    let mut res = ResultEnvelope {
        id: String::new(),
        status: String::new(),
        cache: None,
        degraded: None,
        makespan: None,
        avg_slack: None,
        energy: None,
        reliability: None,
        verdict: None,
        probability: None,
        reason: None,
        retry_after_ms: None,
        schedule: None,
    };
    let mut saw_id = false;
    let mut saw_status = false;
    while let Some((ln, l)) = lines.next() {
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        if l == RESULT_END {
            break;
        }
        let (key, value) = split_header(l);
        match key {
            "id" => {
                res.id = value.to_owned();
                saw_id = true;
            }
            "status" => {
                res.status = value.to_owned();
                saw_status = true;
            }
            "cache" => res.cache = Some(value.to_owned()),
            "degraded" => res.degraded = Some(value.to_owned()),
            "makespan" => {
                res.makespan = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad makespan: {e}")))?,
                );
            }
            "avg-slack" => {
                res.avg_slack = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad avg-slack: {e}")))?,
                );
            }
            "energy" => {
                res.energy = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad energy: {e}")))?,
                );
            }
            "reliability" => {
                res.reliability = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad reliability: {e}")))?,
                );
            }
            "verdict" => res.verdict = Some(value.to_owned()),
            "probability" => {
                res.probability = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad probability: {e}")))?,
                );
            }
            "reason" => res.reason = Some(value.to_owned()),
            "retry-after-ms" => {
                res.retry_after_ms = Some(
                    value
                        .parse()
                        .map_err(|e| err(ln, format!("bad retry-after-ms: {e}")))?,
                );
            }
            "schedule" => {
                let mut body = String::new();
                let mut terminated = false;
                for (_, l) in lines.by_ref() {
                    if l == RESULT_END {
                        terminated = true;
                        break;
                    }
                    body.push_str(l);
                    body.push('\n');
                }
                if !terminated {
                    return Err(err(0, format!("missing '{RESULT_END}' terminator")));
                }
                res.schedule = Some(read_schedule(&body)?);
                break;
            }
            other => return Err(err(ln, format!("unknown result header '{other}'"))),
        }
    }
    if !saw_id {
        return Err(err(0, "missing 'id' header"));
    }
    if !saw_status {
        return Err(err(0, "missing 'status' header"));
    }
    Ok(res)
}

/// Header line of a journal file.
pub const JOURNAL_HEADER: &str = "rds-journal v1";

/// Lifecycle state recorded for a job in the durable journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JournalKind {
    /// The job passed admission and is owed a result. The record's
    /// payload carries the full job envelope so a restarted service can
    /// reconstruct and replay the job.
    Accepted,
    /// A worker began executing the job (attempt counter in the payload).
    Started,
    /// The job produced a result envelope (schedule or typed failure
    /// already delivered); it must never be replayed.
    Completed,
    /// The job was rejected after acceptance (e.g. shed under brownout);
    /// terminal, never replayed.
    Rejected,
    /// The job failed terminally (attempt cap exceeded); never replayed.
    Failed,
}

impl JournalKind {
    /// Canonical tag as written in a record header.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JournalKind::Accepted => "accepted",
            JournalKind::Started => "started",
            JournalKind::Completed => "completed",
            JournalKind::Rejected => "rejected",
            JournalKind::Failed => "failed",
        }
    }

    /// Parses a record tag.
    ///
    /// # Errors
    /// Returns the unknown tag.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "accepted" => JournalKind::Accepted,
            "started" => JournalKind::Started,
            "completed" => JournalKind::Completed,
            "rejected" => JournalKind::Rejected,
            "failed" => JournalKind::Failed,
            other => return Err(format!("unknown journal record kind '{other}'")),
        })
    }

    /// `true` for states after which the job is owed nothing.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JournalKind::Completed | JournalKind::Rejected | JournalKind::Failed
        )
    }
}

/// One record of the durable job journal. The on-disk frame is
///
/// ```text
/// jrec <seq> <kind> <id> <payload-bytes> <fnv1a-hex>\n
/// <payload (exactly payload-bytes bytes)>
/// ```
///
/// The checksum covers the header fields and the payload, so a torn
/// write (partial header, partial payload) or a garbage suffix is
/// detected and the valid prefix recovered — see [`scan_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotonic sequence number within the file.
    pub seq: u64,
    /// Lifecycle state.
    pub kind: JournalKind,
    /// The job id (single token, as in the job envelope).
    pub id: String,
    /// Record payload: the full job envelope for [`JournalKind::Accepted`],
    /// free-form context (attempt counter, failure reason) otherwise.
    /// May be empty.
    pub payload: String,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn record_checksum(seq: u64, kind: JournalKind, id: &str, payload: &[u8]) -> u64 {
    let mut h = fnv1a(format!("{seq} {} {id} {}", kind.name(), payload.len()).as_bytes());
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes one journal record (header line + payload bytes).
#[must_use]
pub fn write_journal_record(rec: &JournalRecord) -> String {
    let payload = rec.payload.as_bytes();
    let crc = record_checksum(rec.seq, rec.kind, &rec.id, payload);
    let mut out = format!(
        "jrec {} {} {} {} {:016x}\n",
        rec.seq,
        rec.kind.name(),
        rec.id,
        payload.len(),
        crc
    );
    out.push_str(&rec.payload);
    out
}

/// Result of scanning a journal file: the valid record prefix plus where
/// (and why) the scan stopped, if it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Every intact record, in file order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header plus intact records). A
    /// recovering writer truncates the file here before appending.
    pub valid_len: usize,
    /// `Some((offset, reason))` when a torn tail or garbage suffix was
    /// found at `offset`; everything before it is intact.
    pub corrupt: Option<(usize, String)>,
}

/// Scans raw journal bytes, tolerating a torn tail or garbage suffix:
/// parsing stops at the first record whose header is malformed, whose
/// payload is truncated, or whose checksum mismatches, and everything
/// before that point is returned intact. An empty file is a valid empty
/// journal.
#[must_use]
pub fn scan_journal(bytes: &[u8]) -> JournalScan {
    let mut scan = JournalScan {
        records: Vec::new(),
        valid_len: 0,
        corrupt: None,
    };
    if bytes.is_empty() {
        return scan;
    }
    let corrupt = |scan: &mut JournalScan, offset: usize, reason: String| {
        scan.corrupt = Some((offset, reason));
    };
    // File header.
    let header_end = match bytes.iter().position(|&b| b == b'\n') {
        Some(nl) => nl + 1,
        None => {
            corrupt(&mut scan, 0, "torn journal header".into());
            return scan;
        }
    };
    if &bytes[..header_end - 1] != JOURNAL_HEADER.as_bytes() {
        corrupt(&mut scan, 0, format!("expected '{JOURNAL_HEADER}' header"));
        return scan;
    }
    scan.valid_len = header_end;
    let mut offset = header_end;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            corrupt(&mut scan, offset, "torn record header".into());
            return scan;
        };
        let Ok(line) = std::str::from_utf8(&bytes[offset..offset + nl]) else {
            corrupt(&mut scan, offset, "record header is not UTF-8".into());
            return scan;
        };
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 6 || parts[0] != "jrec" {
            corrupt(
                &mut scan,
                offset,
                format!("malformed record header '{line}'"),
            );
            return scan;
        }
        let (seq, kind, len, crc) = match (
            parts[1].parse::<u64>(),
            JournalKind::parse(parts[2]),
            parts[4].parse::<usize>(),
            u64::from_str_radix(parts[5], 16),
        ) {
            (Ok(s), Ok(k), Ok(l), Ok(c)) => (s, k, l, c),
            _ => {
                corrupt(
                    &mut scan,
                    offset,
                    format!("unparsable record header '{line}'"),
                );
                return scan;
            }
        };
        let id = parts[3].to_owned();
        let payload_start = offset + nl + 1;
        let payload_end = match payload_start.checked_add(len) {
            Some(end) if end <= bytes.len() => end,
            _ => {
                corrupt(&mut scan, offset, "torn record payload".into());
                return scan;
            }
        };
        let payload_bytes = &bytes[payload_start..payload_end];
        if record_checksum(seq, kind, &id, payload_bytes) != crc {
            corrupt(&mut scan, offset, "record checksum mismatch".into());
            return scan;
        }
        let Ok(payload) = std::str::from_utf8(payload_bytes) else {
            corrupt(&mut scan, offset, "record payload is not UTF-8".into());
            return scan;
        };
        scan.records.push(JournalRecord {
            seq,
            kind,
            id,
            payload: payload.to_owned(),
        });
        offset = payload_end;
        scan.valid_len = offset;
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;

    #[test]
    fn instance_roundtrip_exact() {
        let inst = InstanceSpec::new(20, 3)
            .seed(9)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        // Structure (not adjacency-list order) must round-trip.
        assert!(back.graph.same_structure(&inst.graph));
        assert_eq!(back.timing, inst.timing);
        assert_eq!(back.proc_count(), inst.proc_count());
        // Rates must agree off-diagonal.
        for a in inst.platform.procs() {
            for b in inst.platform.procs() {
                if a != b {
                    assert_eq!(back.platform.rate(a, b), inst.platform.rate(a, b));
                }
            }
        }
        // And the full text round-trips to itself.
        assert_eq!(write_instance(&back), text);
    }

    #[test]
    fn schedule_roundtrip_exact() {
        let inst = InstanceSpec::new(15, 4).seed(2).build().unwrap();
        let heft = rds_heft_like_schedule(&inst);
        let text = write_schedule(&heft);
        let back = read_schedule(&text).unwrap();
        assert_eq!(back, heft);
    }

    /// A deterministic round-robin stand-in (rds-heft depends on this
    /// crate, so tests here cannot call the real HEFT).
    fn rds_heft_like_schedule(inst: &crate::instance::Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let m = inst.proc_count();
        let assignment: Vec<rds_platform::ProcId> = (0..inst.task_count())
            .map(|i| rds_platform::ProcId((i % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    #[test]
    fn instance_parse_errors_carry_line_numbers() {
        assert_eq!(read_instance("").unwrap_err().line, 0);
        let bad_header = "not-an-instance\n";
        assert_eq!(read_instance(bad_header).unwrap_err().line, 1);
        let bad_edge = "rds-instance v1\ntasks 2\nprocs 1\nedges 1\nedge zero 1 5\n";
        let e = read_instance(bad_edge).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("bad from"));
    }

    #[test]
    fn instance_rejects_wrong_matrix_width() {
        let text = "rds-instance v1\ntasks 1\nprocs 2\nedges 0\nbcet\n1.0\n";
        let e = read_instance(text).unwrap_err();
        assert!(e.message.contains("expected 2 values"));
    }

    #[test]
    fn schedule_rejects_bad_coverage() {
        // Task 1 missing.
        let text = "rds-schedule v1\ntasks 2\nprocs 1\nproc 0: 0\n";
        let e = read_schedule(text).unwrap_err();
        assert!(e.message.contains("invalid schedule"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let inst = InstanceSpec::new(5, 2).seed(3).build().unwrap();
        let text = write_instance(&inst);
        let commented = format!("# archive\n\n{}", text.replace("bcet", "# section\nbcet"));
        let back = read_instance(&commented).unwrap();
        assert!(back.graph.same_structure(&inst.graph));
    }

    #[test]
    fn job_envelope_roundtrips() {
        let inst = InstanceSpec::new(12, 3).seed(11).build().unwrap();
        let job = JobEnvelope {
            id: "job-7".into(),
            algo: "ga".into(),
            epsilon: 1.25,
            seed: 42,
            generations: Some(80),
            deadline_ms: Some(1500),
            lane: Some("heavy".into()),
            arrival: Some(12.5),
            deadline: Some(250.75),
            objective: Some("tri".into()),
            rel_min: Some(0.925),
            client: Some("tenant-a".into()),
            instance: inst.clone(),
        };
        let text = write_job(&job);
        let back = read_job(&text).unwrap();
        assert_eq!(back.id, "job-7");
        assert_eq!(back.algo, "ga");
        assert_eq!(back.epsilon, 1.25);
        assert_eq!(back.seed, 42);
        assert_eq!(back.generations, Some(80));
        assert_eq!(back.deadline_ms, Some(1500));
        assert_eq!(back.lane.as_deref(), Some("heavy"));
        assert_eq!(back.arrival, Some(12.5));
        assert_eq!(back.deadline, Some(250.75));
        assert_eq!(back.objective.as_deref(), Some("tri"));
        assert_eq!(back.rel_min, Some(0.925));
        assert_eq!(back.client.as_deref(), Some("tenant-a"));
        assert!(back.instance.graph.same_structure(&inst.graph));
        assert_eq!(back.instance.fingerprint(), inst.fingerprint());
    }

    #[test]
    fn job_envelope_defaults_and_errors() {
        let inst = InstanceSpec::new(5, 2).seed(1).build().unwrap();
        let minimal = format!(
            "rds-job v1\nid j\nalgo heft\ninstance\n{}{JOB_END}\n",
            write_instance(&inst)
        );
        let job = read_job(&minimal).unwrap();
        assert_eq!(job.epsilon, 1.3);
        assert_eq!(job.seed, 0);
        assert_eq!(job.generations, None);
        assert_eq!(job.lane, None);
        assert_eq!(job.arrival, None);
        assert_eq!(job.deadline, None);
        assert_eq!(job.objective, None);
        assert_eq!(job.rel_min, None);
        assert_eq!(job.client, None);

        // Untrusted input: every malformation is a typed error, not a panic.
        assert!(read_job("").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo heft\n").is_err()); // no instance
        assert!(read_job("rds-job v2\n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo heft\nepsilon nope\n").is_err());
        assert!(read_job("rds-job v1\nid j\nwat 1\n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo heft\narrival soon\n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo heft\nlane bulk\n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo ga\nobjective quad\n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo ga\nrel-min 1.5\n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo ga\nrel-min 0.0\n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo ga\nclient \n").is_err());
        assert!(read_job("rds-job v1\nid j\nalgo ga\nclient two tokens\n").is_err());
        let unterminated = format!(
            "rds-job v1\nid j\nalgo heft\ninstance\n{}",
            write_instance(&inst)
        );
        assert!(read_job(&unterminated).is_err());
        // Truncated embedded instance.
        let truncated = format!("rds-job v1\nid j\nalgo heft\ninstance\ntasks 3\n{JOB_END}\n");
        assert!(read_job(&truncated).is_err());
    }

    #[test]
    fn result_envelope_roundtrips() {
        let inst = InstanceSpec::new(10, 2).seed(3).build().unwrap();
        let schedule = rds_heft_like_schedule(&inst);
        let res = ResultEnvelope {
            id: "job-7".into(),
            status: "ok".into(),
            cache: Some("miss".into()),
            degraded: Some("none".into()),
            makespan: Some(123.5),
            avg_slack: Some(4.25),
            energy: Some(17.125),
            reliability: Some(0.96875),
            verdict: Some("hit".into()),
            probability: Some(0.875),
            reason: None,
            retry_after_ms: None,
            schedule: Some(schedule.clone()),
        };
        let text = write_result(&res);
        let back = read_result(&text).unwrap();
        assert_eq!(back, res);

        let rejected = ResultEnvelope {
            id: "job-8".into(),
            status: "rejected".into(),
            cache: None,
            degraded: None,
            makespan: None,
            avg_slack: None,
            energy: None,
            reliability: None,
            verdict: None,
            probability: None,
            reason: Some("queue full: heavy lane at capacity 2\nretry later".into()),
            retry_after_ms: Some(250),
            schedule: None,
        };
        let text = write_result(&rejected);
        // Newlines in the reason must not break framing.
        let back = read_result(&text).unwrap();
        assert_eq!(back.status, "rejected");
        assert!(back.reason.unwrap().contains("retry later"));
        assert_eq!(back.retry_after_ms, Some(250));
        assert!(read_result("rds-result v1\nstatus ok\n").is_err()); // no id
    }

    fn jrec(seq: u64, kind: JournalKind, id: &str, payload: &str) -> JournalRecord {
        JournalRecord {
            seq,
            kind,
            id: id.into(),
            payload: payload.into(),
        }
    }

    #[test]
    fn journal_records_roundtrip_through_scan() {
        let inst = InstanceSpec::new(8, 2).seed(5).build().unwrap();
        let job = JobEnvelope {
            id: "j1".into(),
            algo: "heft".into(),
            epsilon: 1.3,
            seed: 0,
            generations: None,
            deadline_ms: None,
            lane: None,
            arrival: None,
            deadline: None,
            objective: None,
            rel_min: None,
            client: None,
            instance: inst,
        };
        let recs = vec![
            jrec(0, JournalKind::Accepted, "j1", &write_job(&job)),
            jrec(1, JournalKind::Started, "j1", "attempt 0"),
            jrec(2, JournalKind::Completed, "j1", ""),
        ];
        let mut file = format!("{JOURNAL_HEADER}\n");
        for r in &recs {
            file.push_str(&write_journal_record(r));
        }
        let scan = scan_journal(file.as_bytes());
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, file.len());
        assert!(scan.corrupt.is_none());
        // The accepted payload parses back into the same job.
        let back = read_job(&scan.records[0].payload).unwrap();
        assert_eq!(back.id, "j1");
    }

    #[test]
    fn journal_scan_tolerates_torn_tail_and_garbage() {
        let recs: Vec<JournalRecord> = (0..3)
            .map(|i| jrec(i, JournalKind::Started, "j", &format!("attempt {i}")))
            .collect();
        let mut file = format!("{JOURNAL_HEADER}\n");
        for r in &recs {
            file.push_str(&write_journal_record(r));
        }
        let full = file.clone();
        let full_scan = scan_journal(full.as_bytes());
        assert_eq!(full_scan.records.len(), 3);

        // Truncating at every byte offset never panics, never invents
        // records, and keeps a prefix of the intact ones.
        for cut in 0..full.len() {
            let scan = scan_journal(&full.as_bytes()[..cut]);
            assert!(scan.records.len() <= 3);
            assert!(scan.valid_len <= cut);
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r, &recs[i]);
            }
        }

        // A garbage suffix after intact records is cut off cleanly.
        file.push_str("jrec not a valid header\n");
        let scan = scan_journal(file.as_bytes());
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, full.len());
        assert!(scan.corrupt.is_some());

        // Binary garbage likewise.
        let mut binary = full.clone().into_bytes();
        binary.extend_from_slice(&[0xff, 0x00, 0xfe, b'\n']);
        let scan = scan_journal(&binary);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, full.len());
    }

    #[test]
    fn journal_scan_detects_corrupted_payload() {
        let rec = jrec(0, JournalKind::Accepted, "j", "payload body here\n");
        let mut file = format!("{JOURNAL_HEADER}\n{}", write_journal_record(&rec));
        // Flip one payload byte: the checksum must catch it.
        let flip = file.len() - 5;
        let mut bytes = std::mem::take(&mut file).into_bytes();
        bytes[flip] ^= 0x20;
        let scan = scan_journal(&bytes);
        assert!(scan.records.is_empty());
        assert!(scan.corrupt.is_some());

        // Empty file: valid empty journal.
        let empty = scan_journal(b"");
        assert!(empty.records.is_empty() && empty.corrupt.is_none());
        // Wrong header: corrupt at 0.
        let bad = scan_journal(b"not-a-journal\n");
        assert_eq!(bad.corrupt.as_ref().map(|c| c.0), Some(0));
    }

    #[test]
    fn journal_kind_roundtrips() {
        for kind in [
            JournalKind::Accepted,
            JournalKind::Started,
            JournalKind::Completed,
            JournalKind::Rejected,
            JournalKind::Failed,
        ] {
            assert_eq!(JournalKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(JournalKind::parse("resurrected").is_err());
        assert!(!JournalKind::Accepted.is_terminal());
        assert!(!JournalKind::Started.is_terminal());
        assert!(JournalKind::Completed.is_terminal());
        assert!(JournalKind::Rejected.is_terminal());
        assert!(JournalKind::Failed.is_terminal());
    }

    #[test]
    fn float_precision_survives_roundtrip() {
        let inst = InstanceSpec::new(8, 2).seed(4).build().unwrap();
        let back = read_instance(&write_instance(&inst)).unwrap();
        // Bit-exact equality of every timing entry.
        for (r, c, v) in inst.timing.bcet_matrix().iter() {
            assert_eq!(back.timing.bcet_matrix()[(r, c)].to_bits(), v.to_bits());
        }
    }
}

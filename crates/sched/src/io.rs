//! Plain-text serialization of instances and schedules.
//!
//! A small, line-oriented, whitespace-separated format so instances can be
//! archived, diffed and shared between runs without pulling a JSON stack
//! into the workspace:
//!
//! ```text
//! rds-instance v1
//! tasks 4
//! procs 2
//! edges 3
//! edge 0 1 12.5
//! edge 0 2 8
//! edge 1 3 4
//! bcet
//! 1.0 2.0
//! ...
//! ul
//! 1.5 2.0
//! ...
//! rates
//! 0 1.0
//! 1.0 0
//! ```
//!
//! Schedules serialize as per-processor task id lists. Both formats
//! round-trip exactly (floats are written with `{:?}`, which is lossless
//! for `f64`).

use std::fmt::Write as _;

use rds_graph::{TaskGraphBuilder, TaskId};
use rds_platform::{Platform, TimingModel};
use rds_stats::matrix::Matrix;

use crate::instance::Instance;
use crate::schedule::Schedule;

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 = preamble/EOF issues).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serializes an instance to the text format.
#[must_use]
pub fn write_instance(inst: &Instance) -> String {
    let n = inst.task_count();
    let m = inst.proc_count();
    let mut out = String::new();
    let _ = writeln!(out, "rds-instance v1");
    let _ = writeln!(out, "tasks {n}");
    let _ = writeln!(out, "procs {m}");
    let edges: Vec<_> = inst.graph.edges().collect();
    let _ = writeln!(out, "edges {}", edges.len());
    for (from, to, data) in edges {
        let _ = writeln!(out, "edge {} {} {:?}", from.index(), to.index(), data);
    }
    let write_matrix = |out: &mut String,
                        name: &str,
                        rows: usize,
                        get: &dyn Fn(usize, usize) -> f64,
                        cols: usize| {
        let _ = writeln!(out, "{name}");
        for r in 0..rows {
            let row: Vec<String> = (0..cols).map(|c| format!("{:?}", get(r, c))).collect();
            let _ = writeln!(out, "{}", row.join(" "));
        }
    };
    write_matrix(
        &mut out,
        "bcet",
        n,
        &|r, c| inst.timing.bcet_matrix()[(r, c)],
        m,
    );
    write_matrix(
        &mut out,
        "ul",
        n,
        &|r, c| inst.timing.ul_matrix()[(r, c)],
        m,
    );
    write_matrix(
        &mut out,
        "rates",
        m,
        &|r, c| {
            if r == c {
                0.0
            } else {
                inst.platform.rate(
                    rds_platform::ProcId(r as u32),
                    rds_platform::ProcId(c as u32),
                )
            }
        },
        m,
    );
    out
}

/// Parses an instance from the text format.
///
/// # Errors
/// Returns [`ParseError`] with the offending line on any malformation.
pub fn read_instance(text: &str) -> Result<Instance, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let mut next_content = move || -> Option<(usize, &str)> {
        lines
            .by_ref()
            .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
    };

    let (ln, header) = next_content().ok_or_else(|| err(0, "empty input"))?;
    if header != "rds-instance v1" {
        return Err(err(
            ln,
            format!("expected 'rds-instance v1', got '{header}'"),
        ));
    }
    let parse_kv =
        |expected: &str, got: Option<(usize, &str)>| -> Result<(usize, usize), ParseError> {
            let (ln, l) = got.ok_or_else(|| err(0, format!("missing '{expected}' line")))?;
            let mut it = l.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(k), Some(v), None) if k == expected => v
                    .parse::<usize>()
                    .map(|v| (ln, v))
                    .map_err(|e| err(ln, format!("bad {expected} count: {e}"))),
                _ => Err(err(ln, format!("expected '{expected} <count>', got '{l}'"))),
            }
        };
    let (_, n) = parse_kv("tasks", next_content())?;
    let (_, m) = parse_kv("procs", next_content())?;
    let (_, ne) = parse_kv("edges", next_content())?;

    let mut builder = TaskGraphBuilder::with_tasks(n);
    for _ in 0..ne {
        let (ln, l) = next_content().ok_or_else(|| err(0, "unexpected EOF in edges"))?;
        let parts: Vec<&str> = l.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "edge" {
            return Err(err(
                ln,
                format!("expected 'edge <from> <to> <data>', got '{l}'"),
            ));
        }
        let from: u32 = parts[1]
            .parse()
            .map_err(|e| err(ln, format!("bad from: {e}")))?;
        let to: u32 = parts[2]
            .parse()
            .map_err(|e| err(ln, format!("bad to: {e}")))?;
        let data: f64 = parts[3]
            .parse()
            .map_err(|e| err(ln, format!("bad data: {e}")))?;
        builder.add_edge(TaskId(from), TaskId(to), data);
    }
    let graph = builder
        .build()
        .map_err(|e| err(0, format!("invalid graph: {e}")))?;

    let mut read_matrix = |name: &str, rows: usize, cols: usize| -> Result<Matrix, ParseError> {
        let (ln, l) = next_content().ok_or_else(|| err(0, format!("missing '{name}' section")))?;
        if l != name {
            return Err(err(ln, format!("expected section '{name}', got '{l}'")));
        }
        let mut mat = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let (ln, l) =
                next_content().ok_or_else(|| err(0, format!("unexpected EOF in {name}")))?;
            let vals: Vec<&str> = l.split_whitespace().collect();
            if vals.len() != cols {
                return Err(err(
                    ln,
                    format!("{name} row {r}: expected {cols} values, got {}", vals.len()),
                ));
            }
            for (c, v) in vals.iter().enumerate() {
                mat[(r, c)] = v
                    .parse()
                    .map_err(|e| err(ln, format!("{name}[{r}][{c}]: {e}")))?;
            }
        }
        Ok(mat)
    };
    let bcet = read_matrix("bcet", n, m)?;
    let ul = read_matrix("ul", n, m)?;
    let mut rates = read_matrix("rates", m, m)?;
    // The writer stores 0 on the diagonal; Platform ignores the diagonal
    // but requires positives elsewhere. Restore a harmless diagonal.
    for d in 0..m {
        rates[(d, d)] = 1.0;
    }

    let platform =
        Platform::from_rates(m, rates).map_err(|e| err(0, format!("invalid rates: {e}")))?;
    let timing = TimingModel::new(bcet, ul).map_err(|e| err(0, format!("invalid timing: {e}")))?;
    Instance::new(graph, platform, timing).map_err(|e| err(0, e))
}

/// Serializes a schedule.
#[must_use]
pub fn write_schedule(s: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rds-schedule v1");
    let _ = writeln!(out, "tasks {}", s.task_count());
    let _ = writeln!(out, "procs {}", s.proc_count());
    for p in 0..s.proc_count() {
        let ids: Vec<String> = s
            .tasks_on(rds_platform::ProcId(p as u32))
            .iter()
            .map(|t| t.index().to_string())
            .collect();
        let _ = writeln!(out, "proc {p}: {}", ids.join(" "));
    }
    out
}

/// Parses a schedule.
///
/// # Errors
/// Returns [`ParseError`] on malformation (including task-coverage
/// violations detected by the schedule constructor).
pub fn read_schedule(text: &str) -> Result<Schedule, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let mut next_content = move || -> Option<(usize, &str)> {
        lines
            .by_ref()
            .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
    };
    let (ln, header) = next_content().ok_or_else(|| err(0, "empty input"))?;
    if header != "rds-schedule v1" {
        return Err(err(
            ln,
            format!("expected 'rds-schedule v1', got '{header}'"),
        ));
    }
    let parse_kv = |expected: &str, got: Option<(usize, &str)>| -> Result<usize, ParseError> {
        let (ln, l) = got.ok_or_else(|| err(0, format!("missing '{expected}' line")))?;
        let mut it = l.split_whitespace();
        match (it.next(), it.next(), it.next()) {
            (Some(k), Some(v), None) if k == expected => v
                .parse::<usize>()
                .map_err(|e| err(ln, format!("bad {expected}: {e}"))),
            _ => Err(err(ln, format!("expected '{expected} <count>', got '{l}'"))),
        }
    };
    let n = parse_kv("tasks", next_content())?;
    let m = parse_kv("procs", next_content())?;
    let mut proc_tasks: Vec<Vec<TaskId>> = Vec::with_capacity(m);
    for p in 0..m {
        let (ln, l) = next_content().ok_or_else(|| err(0, "unexpected EOF in proc lists"))?;
        let prefix = format!("proc {p}:");
        let rest = l
            .strip_prefix(&prefix)
            .ok_or_else(|| err(ln, format!("expected '{prefix} ...', got '{l}'")))?;
        let ids: Result<Vec<TaskId>, ParseError> = rest
            .split_whitespace()
            .map(|v| {
                v.parse::<u32>()
                    .map(TaskId)
                    .map_err(|e| err(ln, format!("bad task id '{v}': {e}")))
            })
            .collect();
        proc_tasks.push(ids?);
    }
    Schedule::from_proc_lists(n, proc_tasks).map_err(|e| err(0, format!("invalid schedule: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;

    #[test]
    fn instance_roundtrip_exact() {
        let inst = InstanceSpec::new(20, 3)
            .seed(9)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        // Structure (not adjacency-list order) must round-trip.
        assert!(back.graph.same_structure(&inst.graph));
        assert_eq!(back.timing, inst.timing);
        assert_eq!(back.proc_count(), inst.proc_count());
        // Rates must agree off-diagonal.
        for a in inst.platform.procs() {
            for b in inst.platform.procs() {
                if a != b {
                    assert_eq!(back.platform.rate(a, b), inst.platform.rate(a, b));
                }
            }
        }
        // And the full text round-trips to itself.
        assert_eq!(write_instance(&back), text);
    }

    #[test]
    fn schedule_roundtrip_exact() {
        let inst = InstanceSpec::new(15, 4).seed(2).build().unwrap();
        let heft = rds_heft_like_schedule(&inst);
        let text = write_schedule(&heft);
        let back = read_schedule(&text).unwrap();
        assert_eq!(back, heft);
    }

    /// A deterministic round-robin stand-in (rds-heft depends on this
    /// crate, so tests here cannot call the real HEFT).
    fn rds_heft_like_schedule(inst: &crate::instance::Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let m = inst.proc_count();
        let assignment: Vec<rds_platform::ProcId> = (0..inst.task_count())
            .map(|i| rds_platform::ProcId((i % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    #[test]
    fn instance_parse_errors_carry_line_numbers() {
        assert_eq!(read_instance("").unwrap_err().line, 0);
        let bad_header = "not-an-instance\n";
        assert_eq!(read_instance(bad_header).unwrap_err().line, 1);
        let bad_edge = "rds-instance v1\ntasks 2\nprocs 1\nedges 1\nedge zero 1 5\n";
        let e = read_instance(bad_edge).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("bad from"));
    }

    #[test]
    fn instance_rejects_wrong_matrix_width() {
        let text = "rds-instance v1\ntasks 1\nprocs 2\nedges 0\nbcet\n1.0\n";
        let e = read_instance(text).unwrap_err();
        assert!(e.message.contains("expected 2 values"));
    }

    #[test]
    fn schedule_rejects_bad_coverage() {
        // Task 1 missing.
        let text = "rds-schedule v1\ntasks 2\nprocs 1\nproc 0: 0\n";
        let e = read_schedule(text).unwrap_err();
        assert!(e.message.contains("invalid schedule"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let inst = InstanceSpec::new(5, 2).seed(3).build().unwrap();
        let text = write_instance(&inst);
        let commented = format!("# archive\n\n{}", text.replace("bcet", "# section\nbcet"));
        let back = read_instance(&commented).unwrap();
        assert!(back.graph.same_structure(&inst.graph));
    }

    #[test]
    fn float_precision_survives_roundtrip() {
        let inst = InstanceSpec::new(8, 2).seed(4).build().unwrap();
        let back = read_instance(&write_instance(&inst)).unwrap();
        // Bit-exact equality of every timing entry.
        for (r, c, v) in inst.timing.bcet_matrix().iter() {
            assert_eq!(back.timing.bcet_matrix()[(r, c)].to_bits(), v.to_bits());
        }
    }
}

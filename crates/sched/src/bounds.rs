//! Makespan lower bounds and schedule-efficiency metrics.
//!
//! Useful for judging how much of a schedule's makespan is workload-
//! intrinsic versus scheduler-inflicted:
//!
//! * **critical-path bound** — no schedule can beat the longest chain of
//!   (best-processor) expected durations, even with free communication;
//! * **work bound** — `m` processors cannot execute faster than the total
//!   (best-processor) expected work divided by `m`;
//! * **utilization / speedup / efficiency** — the classic parallel
//!   metrics, computed from a timed schedule.

use rds_graph::{paths, TaskId};

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::timing::TimedSchedule;

/// Lower bounds on the expected makespan of *any* schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakespanBounds {
    /// Longest chain of per-task best-processor expected durations
    /// (communication ignored — a valid relaxation).
    pub critical_path: f64,
    /// Total best-processor expected work divided by the processor count.
    pub work: f64,
}

impl MakespanBounds {
    /// The tighter (larger) of the two bounds.
    #[must_use]
    pub fn best(&self) -> f64 {
        self.critical_path.max(self.work)
    }
}

/// Computes both lower bounds for an instance.
#[must_use]
pub fn makespan_lower_bounds(inst: &Instance) -> MakespanBounds {
    let best_dur = |t: TaskId| -> f64 {
        inst.platform
            .procs()
            .map(|p| inst.expected(t, p))
            .fold(f64::INFINITY, f64::min)
    };
    let critical_path = paths::critical_path_length(&inst.graph, best_dur, |_, _, _| 0.0);
    let total: f64 = inst.graph.tasks().map(best_dur).sum();
    MakespanBounds {
        critical_path,
        work: total / inst.proc_count() as f64,
    }
}

/// Efficiency metrics of one timed schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleEfficiency {
    /// Fraction of the `m × makespan` area spent computing.
    pub utilization: f64,
    /// Serial time (sum of assigned durations) over the makespan.
    pub speedup: f64,
    /// `speedup / m`.
    pub efficiency: f64,
    /// Ratio of the makespan to the best lower bound (≥ 1; 1 = provably
    /// optimal).
    pub bound_ratio: f64,
}

/// Computes efficiency metrics for a schedule under its expected
/// durations.
///
/// # Panics
/// Panics when the timed schedule's makespan is zero with tasks present.
#[must_use]
pub fn efficiency(
    inst: &Instance,
    schedule: &Schedule,
    timed: &TimedSchedule,
) -> ScheduleEfficiency {
    let m = inst.proc_count() as f64;
    let busy: f64 = inst
        .graph
        .tasks()
        .map(|t| timed.finish_of(t) - timed.start_of(t))
        .sum();
    let makespan = timed.makespan;
    assert!(
        makespan > 0.0 || inst.task_count() == 0,
        "non-empty schedule must have positive makespan"
    );
    let bounds = makespan_lower_bounds(inst);
    // "Serial time" = executing every task on its assigned processor
    // back-to-back.
    let serial: f64 = busy;
    let _ = schedule;
    ScheduleEfficiency {
        utilization: if makespan > 0.0 {
            busy / (m * makespan)
        } else {
            0.0
        },
        speedup: if makespan > 0.0 {
            serial / makespan
        } else {
            0.0
        },
        efficiency: if makespan > 0.0 {
            serial / makespan / m
        } else {
            0.0
        },
        bound_ratio: if bounds.best() > 0.0 {
            makespan / bounds.best()
        } else {
            f64::NAN
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;
    use crate::timing::evaluate_expected;
    use rds_platform::ProcId;

    fn heft_like(inst: &Instance) -> Schedule {
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let m = inst.proc_count();
        let assignment: Vec<ProcId> = (0..inst.task_count())
            .map(|i| ProcId((i % m) as u32))
            .collect();
        Schedule::from_order_and_assignment(&order, &assignment, m).unwrap()
    }

    #[test]
    fn bounds_are_actual_lower_bounds() {
        for seed in 0..8 {
            let inst = InstanceSpec::new(40, 4).seed(seed).build().unwrap();
            let bounds = makespan_lower_bounds(&inst);
            assert!(bounds.critical_path > 0.0);
            assert!(bounds.work > 0.0);
            let s = heft_like(&inst);
            let t = evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &s).unwrap();
            assert!(
                t.makespan >= bounds.best() - 1e-9,
                "seed {seed}: makespan {} below bound {}",
                t.makespan,
                bounds.best()
            );
        }
    }

    #[test]
    fn chain_bound_is_the_chain_length() {
        use rds_graph::gen::workflows::chain;
        use rds_platform::{Platform, TimingModel};
        use rds_stats::matrix::Matrix;
        let g = chain(5, 0.0);
        let bcet = Matrix::filled(5, 2, 3.0);
        let inst = Instance::new(
            g,
            Platform::uniform(2, 1.0).unwrap(),
            TimingModel::deterministic(bcet).unwrap(),
        )
        .unwrap();
        let b = makespan_lower_bounds(&inst);
        assert_eq!(b.critical_path, 15.0);
        assert_eq!(b.work, 7.5);
        assert_eq!(b.best(), 15.0);
    }

    #[test]
    fn efficiency_metrics_are_consistent() {
        let inst = InstanceSpec::new(40, 4).seed(3).build().unwrap();
        let s = heft_like(&inst);
        let t = evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &s).unwrap();
        let e = efficiency(&inst, &s, &t);
        assert!(e.utilization > 0.0 && e.utilization <= 1.0 + 1e-9);
        assert!(e.speedup > 0.0);
        assert!((e.efficiency - e.speedup / 4.0).abs() < 1e-12);
        assert!(
            (e.utilization - e.efficiency).abs() < 1e-12,
            "equal by definition here"
        );
        assert!(e.bound_ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn single_proc_full_utilization() {
        let inst = InstanceSpec::new(10, 1).seed(1).ccr(0.0).build().unwrap();
        let s = heft_like(&inst);
        let t = evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &s).unwrap();
        let e = efficiency(&inst, &s, &t);
        // One processor, no comm: tasks run back to back.
        assert!((e.utilization - 1.0).abs() < 1e-9);
        assert!((e.speedup - 1.0).abs() < 1e-9);
    }
}

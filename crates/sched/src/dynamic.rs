//! Dynamic (on-line) list scheduling under realized durations.
//!
//! The paper's introduction positions static-robust scheduling against the
//! *dynamic* alternative: "dynamic scheduling algorithm assigns each ready
//! task according to the current status of the resource environment aiming
//! to avoid the inaccuracy of execution time estimation". This module
//! implements that alternative as an event-driven simulation so the two
//! philosophies can be compared on the same realizations:
//!
//! * the scheduler only *plans* with expected durations (`UL·B`), as any
//!   real system would;
//! * a task's **realized** duration is revealed only when it finishes;
//! * at every completion event, ready tasks are dispatched greedily to the
//!   processor minimizing their *estimated* finish time given the current
//!   (realized) state.
//!
//! The output is the realized makespan of one run plus the schedule that
//! emerged, so dynamic runs aggregate under the same Monte Carlo machinery
//! as static ones.

use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_stats::rng::SeedStream;

use crate::faults::{advance_through, FaultConfig, FaultScenario};
use crate::instance::Instance;
use crate::realization::sample_realized_matrix;
use crate::recovery::{RecoveryConfig, RecoveryPolicy};
use crate::schedule::Schedule;

/// Result of one dynamic execution.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// The schedule that emerged from the on-line decisions.
    pub schedule: Schedule,
    /// Realized start times.
    pub start: Vec<f64>,
    /// Realized finish times.
    pub finish: Vec<f64>,
    /// Realized makespan.
    pub makespan: f64,
}

/// Priority used to order simultaneously ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPriority {
    /// First-come-first-served by task id (arbitrary but deterministic).
    Fifo,
    /// Highest upward rank first (HEFT's prioritization, computed once
    /// from expected durations).
    UpwardRank,
}

/// Executes the instance dynamically against realized durations.
///
/// `durations[i]` is task `i`'s realized duration on **any** processor
/// scaled by the per-processor expected ratio — more precisely, the
/// simulation samples per-(task, proc) durations lazily through
/// `duration_of`, so heterogeneous realizations stay consistent with the
/// task's eventual placement.
pub fn run_dynamic(
    inst: &Instance,
    priority: DynamicPriority,
    realization_seed: u64,
) -> DynamicRun {
    let n = inst.task_count();
    let m = inst.proc_count();

    // Pre-sample one realized duration per (task, proc) pair from the
    // realization law, so whichever placement the dynamic scheduler picks
    // sees a consistent draw. Streams are per-task for determinism (the
    // shared helper keeps this bit-compatible with the faulty executor).
    let realized = sample_realized_matrix(&inst.timing, n, m, realization_seed);

    // Static priorities (expected-time upward ranks) when requested.
    let ranks = match priority {
        DynamicPriority::UpwardRank => rds_graph::paths::bottom_levels(
            &inst.graph,
            |t: TaskId| inst.timing.mean_expected(t.index()),
            |_, _, data| inst.platform.mean_comm_time(data),
        ),
        DynamicPriority::Fifo => vec![0.0; n],
    };

    let mut indeg: Vec<usize> = inst
        .graph
        .tasks()
        .map(|t| inst.graph.in_degree(t))
        .collect();
    let mut ready: Vec<TaskId> = inst
        .graph
        .tasks()
        .filter(|t| indeg[t.index()] == 0)
        .collect();

    let mut proc_free_at = vec![0.0_f64; m];
    let mut proc_lists: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut assigned: Vec<ProcId> = vec![ProcId(0); n];
    let mut start = vec![0.0_f64; n];
    let mut finish = vec![0.0_f64; n];
    let mut done = vec![false; n];
    let mut makespan = 0.0_f64;

    // Event-driven greedy dispatch: repeatedly pick the highest-priority
    // ready task and place it at its earliest *estimated* finish. The
    // estimate uses expected durations (the scheduler cannot see the
    // future); the commit uses the realized duration.
    let mut scheduled = 0usize;
    while scheduled < n {
        debug_assert!(!ready.is_empty(), "DAG is acyclic: some task is ready");
        // Highest priority first; ties by id for determinism.
        let (ri, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                ranks[a.index()]
                    .total_cmp(&ranks[b.index()])
                    .then_with(|| b.cmp(a))
            })
            .expect("ready set non-empty: the DAG is acyclic, so while unscheduled tasks remain at least one has all predecessors finished");
        let t = ready.swap_remove(ri);
        let ti = t.index();

        // Earliest estimated finish over processors, given realized
        // history (finished predecessors have *known* finish times).
        let mut best: Option<(f64, f64, ProcId)> = None;
        for p in inst.platform.procs() {
            let mut est = proc_free_at[p.index()];
            for e in inst.graph.predecessors(t) {
                debug_assert!(done[e.task.index()], "ready implies preds finished");
                let arrive = finish[e.task.index()]
                    + inst.platform.comm_time(e.data, assigned[e.task.index()], p);
                if arrive > est {
                    est = arrive;
                }
            }
            let eft = est + inst.timing.expected(ti, p);
            if best.is_none_or(|(beft, _, _)| eft < beft - 1e-12) {
                best = Some((eft, est, p));
            }
        }
        let (_, est, p) = best
            .expect("at least one processor: Platform construction rejects empty processor sets");

        // Commit with the realized duration.
        let real_dur = realized[(ti, p.index())];
        start[ti] = est;
        finish[ti] = est + real_dur;
        proc_free_at[p.index()] = finish[ti];
        proc_lists[p.index()].push(t);
        assigned[ti] = p;
        done[ti] = true;
        makespan = makespan.max(finish[ti]);
        scheduled += 1;

        for e in inst.graph.successors(t) {
            indeg[e.task.index()] -= 1;
            if indeg[e.task.index()] == 0 {
                ready.push(e.task);
            }
        }
    }

    let schedule = Schedule::from_proc_lists(n, proc_lists)
        .expect("dynamic dispatch schedules every task once");
    DynamicRun {
        schedule,
        start,
        finish,
        makespan,
    }
}

/// Mean realized makespan of `runs` dynamic executions (seeds derived from
/// `seed`), plus the individual makespans.
pub fn dynamic_makespans(
    inst: &Instance,
    priority: DynamicPriority,
    runs: usize,
    seed: u64,
) -> Vec<f64> {
    let seeds = SeedStream::new(seed);
    (0..runs)
        .map(|i| run_dynamic(inst, priority, seeds.nth_seed(i as u64)).makespan)
        .collect()
}

/// Dynamic dispatch through a fault scenario.
///
/// The on-line scheduler is inherently adaptive: a processor observed dead
/// at dispatch time is simply never a placement candidate, so permanent
/// failures migrate work implicitly — no replanning pass is needed. Faults
/// interact with the dispatcher as follows:
///
/// * a task running on a processor at its failure instant is aborted; its
///   work is lost and it re-enters the ready set, restartable no earlier
///   than the failure time;
/// * transient crashes follow `recovery`: retried in place after backoff,
///   unless the policy is [`RecoveryPolicy::FailStop`] (or retries are
///   exhausted), which fails the realization;
/// * slowdown windows stretch committed intervals via the same piecewise
///   integration as the static executor; stragglers inflate durations.
///
/// Returns `None` when the realization fails (fail-stop crash policy, or
/// every processor died before completion).
pub fn run_dynamic_faulty(
    inst: &Instance,
    priority: DynamicPriority,
    realization_seed: u64,
    scenario: &FaultScenario,
    recovery: &RecoveryConfig,
) -> Option<DynamicRun> {
    let n = inst.task_count();
    let m = inst.proc_count();

    let realized = sample_realized_matrix(&inst.timing, n, m, realization_seed);
    let windows = scenario.windows_by_proc(m);
    let fail_at: Vec<f64> = (0..m)
        .map(|p| {
            scenario
                .failure_of(ProcId(p as u32))
                .unwrap_or(f64::INFINITY)
        })
        .collect();

    let ranks = match priority {
        DynamicPriority::UpwardRank => rds_graph::paths::bottom_levels(
            &inst.graph,
            |t: TaskId| inst.timing.mean_expected(t.index()),
            |_, _, data| inst.platform.mean_comm_time(data),
        ),
        DynamicPriority::Fifo => vec![0.0; n],
    };

    let mut indeg: Vec<usize> = inst
        .graph
        .tasks()
        .map(|t| inst.graph.in_degree(t))
        .collect();
    let mut ready: Vec<TaskId> = inst
        .graph
        .tasks()
        .filter(|t| indeg[t.index()] == 0)
        .collect();

    let mut proc_free_at = vec![0.0_f64; m];
    let mut proc_lists: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut assigned: Vec<ProcId> = vec![ProcId(0); n];
    let mut start = vec![0.0_f64; n];
    let mut finish = vec![0.0_f64; n];
    let mut done = vec![false; n];
    // Earliest time a task may (re)start — raised to the failure instant
    // when an attempt is aborted, since the scheduler only learns of the
    // loss when it happens.
    let mut min_start = vec![0.0_f64; n];
    let mut retried = vec![false; n];
    let mut makespan = 0.0_f64;

    let mut scheduled = 0usize;
    while scheduled < n {
        debug_assert!(!ready.is_empty(), "DAG is acyclic: some task is ready");
        let (ri, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                ranks[a.index()]
                    .total_cmp(&ranks[b.index()])
                    .then_with(|| b.cmp(a))
            })
            .expect("ready set non-empty: the DAG is acyclic, so while unscheduled tasks remain at least one has all predecessors finished");
        let t = ready[ri];
        let ti = t.index();

        // Earliest estimated finish over processors *alive at the
        // candidate start time* (the online scheduler knows a processor is
        // gone once its failure instant has passed).
        let mut best: Option<(f64, f64, ProcId)> = None;
        for p in inst.platform.procs() {
            let mut est = proc_free_at[p.index()].max(min_start[ti]);
            for e in inst.graph.predecessors(t) {
                debug_assert!(done[e.task.index()], "ready implies preds finished");
                let arrive = finish[e.task.index()]
                    + inst.platform.comm_time(e.data, assigned[e.task.index()], p);
                if arrive > est {
                    est = arrive;
                }
            }
            if est >= fail_at[p.index()] {
                continue; // processor already dead at dispatch time
            }
            let eft = est + inst.timing.expected(ti, p);
            if best.is_none_or(|(beft, _, _)| eft < beft - 1e-12) {
                best = Some((eft, est, p));
            }
        }
        // Every processor dead (or dead by the time this task could start):
        // the realization cannot complete.
        let (_, est, p) = best?;
        ready.swap_remove(ri);
        let pi = p.index();

        // Commit with the realized duration, stretched by slowdown windows
        // and straggler inflation; then let faults interrupt the interval.
        let base = realized[(ti, pi)] * scenario.straggler_factor(t);
        let fin;
        if !retried[ti] && scenario.crash_of(t).is_some() {
            let fraction = scenario.crash_of(t).expect("checked above");
            let crash_at = advance_through(&windows[pi], est, fraction * base);
            if crash_at >= fail_at[pi] {
                // The processor died before the crash materialized: abort.
                min_start[ti] = fail_at[pi];
                proc_free_at[pi] = f64::INFINITY;
                ready.push(t);
                continue;
            }
            if recovery.policy == RecoveryPolicy::FailStop || recovery.max_retries == 0 {
                return None;
            }
            retried[ti] = true;
            let backoff = recovery.backoff * inst.timing.expected(ti, p);
            fin = advance_through(&windows[pi], crash_at + backoff, base);
        } else {
            fin = advance_through(&windows[pi], est, base);
        }
        if fin > fail_at[pi] {
            // The processor dies mid-execution: work lost, task back to the
            // ready set, processor unusable from here on. (Finishing
            // exactly at the failure instant counts as finished.)
            min_start[ti] = fail_at[pi];
            proc_free_at[pi] = f64::INFINITY;
            ready.push(t);
            continue;
        }

        start[ti] = est;
        finish[ti] = fin;
        proc_free_at[pi] = fin;
        proc_lists[pi].push(t);
        assigned[ti] = p;
        done[ti] = true;
        makespan = makespan.max(fin);
        scheduled += 1;

        for e in inst.graph.successors(t) {
            indeg[e.task.index()] -= 1;
            if indeg[e.task.index()] == 0 {
                ready.push(e.task);
            }
        }
    }

    let schedule = Schedule::from_proc_lists(n, proc_lists)
        .expect("dynamic dispatch schedules every task once");
    Some(DynamicRun {
        schedule,
        start,
        finish,
        makespan,
    })
}

/// Realized makespans of `runs` faulty dynamic executions (`None` for
/// failed realizations).
///
/// Seeds mirror [`crate::realization::monte_carlo_faulty`]'s contract —
/// realization `i` draws durations from `branch("fault-durations")` and its
/// scenario from `branch("fault-scenario")` of `seed` — so dynamic and
/// static policies face the *same* realizations when seeds agree, enabling
/// paired comparison.
///
/// # Panics
/// Panics when `faults.horizon <= 0` (callers must resolve the horizon —
/// typically to a static plan's `M₀` — before sweeping).
pub fn dynamic_makespans_faulty(
    inst: &Instance,
    priority: DynamicPriority,
    runs: usize,
    seed: u64,
    faults: &FaultConfig,
    recovery: &RecoveryConfig,
) -> Vec<Option<f64>> {
    let n = inst.task_count();
    let m = inst.proc_count();
    let dur_seeds = SeedStream::new(seed).branch("fault-durations");
    let scen_seeds = SeedStream::new(seed).branch("fault-scenario");
    (0..runs)
        .map(|i| {
            let scenario = FaultScenario::generate(faults, n, m, scen_seeds.nth_seed(i as u64));
            run_dynamic_faulty(
                inst,
                priority,
                dur_seeds.nth_seed(i as u64),
                &scenario,
                recovery,
            )
            .map(|r| r.makespan)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;

    fn inst(seed: u64, ul: f64) -> Instance {
        InstanceSpec::new(30, 4)
            .seed(seed)
            .uncertainty_level(ul)
            .build()
            .unwrap()
    }

    #[test]
    fn dynamic_run_is_deterministic_per_seed() {
        let i = inst(1, 4.0);
        let a = run_dynamic(&i, DynamicPriority::UpwardRank, 7);
        let b = run_dynamic(&i, DynamicPriority::UpwardRank, 7);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.makespan, b.makespan);
        let c = run_dynamic(&i, DynamicPriority::UpwardRank, 8);
        assert!(a.makespan != c.makespan || a.schedule != c.schedule);
    }

    #[test]
    fn emerged_schedule_is_valid() {
        let i = inst(2, 6.0);
        let r = run_dynamic(&i, DynamicPriority::UpwardRank, 3);
        assert!(r.schedule.validate_against(&i.graph).is_ok());
        assert_eq!(r.schedule.task_count(), 30);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn starts_respect_precedence_and_processor_exclusivity() {
        let i = inst(3, 4.0);
        let r = run_dynamic(&i, DynamicPriority::Fifo, 5);
        // Precedence: every task starts after its predecessors' finishes
        // (plus communication, which is >= 0).
        for t in i.graph.tasks() {
            for e in i.graph.predecessors(t) {
                assert!(
                    r.start[t.index()] >= r.finish[e.task.index()] - 1e-9,
                    "{t} started before its predecessor finished"
                );
            }
        }
        // Exclusivity: consecutive tasks on one processor do not overlap.
        for p in 0..i.proc_count() {
            let tasks = r.schedule.tasks_on(ProcId(p as u32));
            for w in tasks.windows(2) {
                assert!(r.start[w[1].index()] >= r.finish[w[0].index()] - 1e-9);
            }
        }
    }

    #[test]
    fn upward_rank_priority_beats_fifo_on_average() {
        let mut rank_wins = 0;
        let total = 10;
        for seed in 0..total {
            let i = inst(seed, 4.0);
            let rank = run_dynamic(&i, DynamicPriority::UpwardRank, 99).makespan;
            let fifo = run_dynamic(&i, DynamicPriority::Fifo, 99).makespan;
            if rank <= fifo {
                rank_wins += 1;
            }
        }
        assert!(
            rank_wins >= 6,
            "rank priority should usually help, won {rank_wins}/{total}"
        );
    }

    #[test]
    fn dynamic_makespans_vary_across_realizations() {
        let i = inst(4, 6.0);
        let ms = dynamic_makespans(&i, DynamicPriority::UpwardRank, 20, 1);
        assert_eq!(ms.len(), 20);
        let first = ms[0];
        assert!(ms.iter().any(|&m| (m - first).abs() > 1e-9));
    }

    #[test]
    fn deterministic_instance_matches_static_heft_quality() {
        // With UL == 1 (no uncertainty) the dynamic EFT dispatcher sees
        // exact durations; its makespan should be in the same ballpark as
        // static HEFT (identical information, append-only placement).
        let base = InstanceSpec::new(25, 3).seed(5).build().unwrap();
        let timing =
            rds_platform::TimingModel::deterministic(base.timing.bcet_matrix().clone()).unwrap();
        let i = Instance::new(base.graph, base.platform, timing).unwrap();
        let dynamic = run_dynamic(&i, DynamicPriority::UpwardRank, 0).makespan;
        let heft = rds_graph::paths::critical_path_length(
            &i.graph,
            |t: TaskId| i.timing.mean_expected(t.index()),
            |_, _, _| 0.0,
        );
        // Sanity bound: dynamic must not be worse than 3x the zero-comm
        // critical path with mean durations.
        assert!(
            dynamic <= 3.0 * heft.max(1.0),
            "dynamic {dynamic} vs cp {heft}"
        );
    }

    #[test]
    fn faulty_run_with_quiet_scenario_matches_plain_run() {
        let i = inst(5, 4.0);
        let plain = run_dynamic(&i, DynamicPriority::UpwardRank, 11);
        let faulty = run_dynamic_faulty(
            &i,
            DynamicPriority::UpwardRank,
            11,
            &FaultScenario::default(),
            &RecoveryConfig::default(),
        )
        .expect("quiet scenario always completes");
        assert_eq!(plain.schedule, faulty.schedule);
        assert_eq!(plain.makespan, faulty.makespan);
        assert_eq!(plain.finish, faulty.finish);
    }

    #[test]
    fn faulty_dynamic_routes_around_dead_processor() {
        use crate::faults::ProcessorFailure;
        let i = inst(6, 4.0);
        let scenario = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(1),
                at: 1e-6,
            }],
            ..FaultScenario::default()
        };
        let run = run_dynamic_faulty(
            &i,
            DynamicPriority::UpwardRank,
            2,
            &scenario,
            &RecoveryConfig::default(),
        )
        .expect("three processors survive");
        // Nothing may execute on the dead processor.
        assert!(run.schedule.tasks_on(ProcId(1)).is_empty());
        assert!(run.schedule.validate_against(&i.graph).is_ok());
        assert!(run.makespan.is_finite());
    }

    #[test]
    fn faulty_dynamic_sweep_mixes_failures_and_completions() {
        let i = inst(7, 4.0);
        let faults = FaultConfig {
            crash_rate: 0.5,
            horizon: 100.0,
            ..FaultConfig::default()
        };
        // Fail-stop: crashes are fatal, so some realizations return None...
        let stop = dynamic_makespans_faulty(
            &i,
            DynamicPriority::UpwardRank,
            30,
            3,
            &faults,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        );
        assert_eq!(stop.len(), 30);
        assert!(stop.iter().any(Option::is_none), "crashes at 0.5 must bite");
        // ...while the adaptive policy completes everything.
        let adapt = dynamic_makespans_faulty(
            &i,
            DynamicPriority::UpwardRank,
            30,
            3,
            &faults,
            &RecoveryConfig::default(),
        );
        assert!(adapt.iter().all(Option::is_some));
        // Paired realizations: a run fail-stop completed had no crash to
        // retry, so the adaptive policy saw identical draws and identical
        // events — the makespans must match exactly.
        for (s, a) in stop.iter().zip(&adapt) {
            if let Some(sm) = s {
                assert_eq!(
                    *a,
                    Some(*sm),
                    "crash-free realizations are policy-invariant"
                );
            }
        }
    }
}

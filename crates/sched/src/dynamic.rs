//! Dynamic (on-line) list scheduling under realized durations.
//!
//! The paper's introduction positions static-robust scheduling against the
//! *dynamic* alternative: "dynamic scheduling algorithm assigns each ready
//! task according to the current status of the resource environment aiming
//! to avoid the inaccuracy of execution time estimation". This module
//! implements that alternative as an event-driven simulation so the two
//! philosophies can be compared on the same realizations:
//!
//! * the scheduler only *plans* with expected durations (`UL·B`), as any
//!   real system would;
//! * a task's **realized** duration is revealed only when it finishes;
//! * at every completion event, ready tasks are dispatched greedily to the
//!   processor minimizing their *estimated* finish time given the current
//!   (realized) state.
//!
//! The output is the realized makespan of one run plus the schedule that
//! emerged, so dynamic runs aggregate under the same Monte Carlo machinery
//! as static ones.

use rds_graph::TaskId;
use rds_platform::ProcId;
use rds_stats::rng::SeedStream;

use crate::instance::Instance;
use crate::schedule::Schedule;

/// Result of one dynamic execution.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// The schedule that emerged from the on-line decisions.
    pub schedule: Schedule,
    /// Realized start times.
    pub start: Vec<f64>,
    /// Realized finish times.
    pub finish: Vec<f64>,
    /// Realized makespan.
    pub makespan: f64,
}

/// Priority used to order simultaneously ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPriority {
    /// First-come-first-served by task id (arbitrary but deterministic).
    Fifo,
    /// Highest upward rank first (HEFT's prioritization, computed once
    /// from expected durations).
    UpwardRank,
}

/// Executes the instance dynamically against realized durations.
///
/// `durations[i]` is task `i`'s realized duration on **any** processor
/// scaled by the per-processor expected ratio — more precisely, the
/// simulation samples per-(task, proc) durations lazily through
/// `duration_of`, so heterogeneous realizations stay consistent with the
/// task's eventual placement.
pub fn run_dynamic(
    inst: &Instance,
    priority: DynamicPriority,
    realization_seed: u64,
) -> DynamicRun {
    let n = inst.task_count();
    let m = inst.proc_count();

    // Pre-sample one realized duration per (task, proc) pair from the
    // realization law, so whichever placement the dynamic scheduler picks
    // sees a consistent draw. Streams are per-task for determinism.
    let seeds = SeedStream::new(realization_seed);
    let realized: Vec<Vec<f64>> = (0..n)
        .map(|t| {
            let mut rng = seeds.nth_rng(t as u64);
            (0..m)
                .map(|p| inst.timing.sample(t, ProcId(p as u32), &mut rng))
                .collect()
        })
        .collect();

    // Static priorities (expected-time upward ranks) when requested.
    let ranks = match priority {
        DynamicPriority::UpwardRank => rds_graph::paths::bottom_levels(
            &inst.graph,
            |t: TaskId| inst.timing.mean_expected(t.index()),
            |_, _, data| inst.platform.mean_comm_time(data),
        ),
        DynamicPriority::Fifo => vec![0.0; n],
    };

    let mut indeg: Vec<usize> = inst.graph.tasks().map(|t| inst.graph.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = inst
        .graph
        .tasks()
        .filter(|t| indeg[t.index()] == 0)
        .collect();

    let mut proc_free_at = vec![0.0_f64; m];
    let mut proc_lists: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut assigned: Vec<ProcId> = vec![ProcId(0); n];
    let mut start = vec![0.0_f64; n];
    let mut finish = vec![0.0_f64; n];
    let mut done = vec![false; n];
    let mut makespan = 0.0_f64;

    // Event-driven greedy dispatch: repeatedly pick the highest-priority
    // ready task and place it at its earliest *estimated* finish. The
    // estimate uses expected durations (the scheduler cannot see the
    // future); the commit uses the realized duration.
    let mut scheduled = 0usize;
    while scheduled < n {
        debug_assert!(!ready.is_empty(), "DAG is acyclic: some task is ready");
        // Highest priority first; ties by id for determinism.
        let (ri, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                ranks[a.index()]
                    .total_cmp(&ranks[b.index()])
                    .then_with(|| b.cmp(a))
            })
            .expect("ready set non-empty");
        let t = ready.swap_remove(ri);
        let ti = t.index();

        // Earliest estimated finish over processors, given realized
        // history (finished predecessors have *known* finish times).
        let mut best: Option<(f64, f64, ProcId)> = None;
        for p in inst.platform.procs() {
            let mut est = proc_free_at[p.index()];
            for e in inst.graph.predecessors(t) {
                debug_assert!(done[e.task.index()], "ready implies preds finished");
                let arrive = finish[e.task.index()]
                    + inst
                        .platform
                        .comm_time(e.data, assigned[e.task.index()], p);
                if arrive > est {
                    est = arrive;
                }
            }
            let eft = est + inst.timing.expected(ti, p);
            if best.is_none_or(|(beft, _, _)| eft < beft - 1e-12) {
                best = Some((eft, est, p));
            }
        }
        let (_, est, p) = best.expect("at least one processor");

        // Commit with the realized duration.
        let real_dur = realized[ti][p.index()];
        start[ti] = est;
        finish[ti] = est + real_dur;
        proc_free_at[p.index()] = finish[ti];
        proc_lists[p.index()].push(t);
        assigned[ti] = p;
        done[ti] = true;
        makespan = makespan.max(finish[ti]);
        scheduled += 1;

        for e in inst.graph.successors(t) {
            indeg[e.task.index()] -= 1;
            if indeg[e.task.index()] == 0 {
                ready.push(e.task);
            }
        }
    }

    let schedule = Schedule::from_proc_lists(n, proc_lists)
        .expect("dynamic dispatch schedules every task once");
    DynamicRun {
        schedule,
        start,
        finish,
        makespan,
    }
}

/// Mean realized makespan of `runs` dynamic executions (seeds derived from
/// `seed`), plus the individual makespans.
pub fn dynamic_makespans(
    inst: &Instance,
    priority: DynamicPriority,
    runs: usize,
    seed: u64,
) -> Vec<f64> {
    let seeds = SeedStream::new(seed);
    (0..runs)
        .map(|i| run_dynamic(inst, priority, seeds.nth_seed(i as u64)).makespan)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;

    fn inst(seed: u64, ul: f64) -> Instance {
        InstanceSpec::new(30, 4)
            .seed(seed)
            .uncertainty_level(ul)
            .build()
            .unwrap()
    }

    #[test]
    fn dynamic_run_is_deterministic_per_seed() {
        let i = inst(1, 4.0);
        let a = run_dynamic(&i, DynamicPriority::UpwardRank, 7);
        let b = run_dynamic(&i, DynamicPriority::UpwardRank, 7);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.makespan, b.makespan);
        let c = run_dynamic(&i, DynamicPriority::UpwardRank, 8);
        assert!(a.makespan != c.makespan || a.schedule != c.schedule);
    }

    #[test]
    fn emerged_schedule_is_valid() {
        let i = inst(2, 6.0);
        let r = run_dynamic(&i, DynamicPriority::UpwardRank, 3);
        assert!(r.schedule.validate_against(&i.graph).is_ok());
        assert_eq!(r.schedule.task_count(), 30);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn starts_respect_precedence_and_processor_exclusivity() {
        let i = inst(3, 4.0);
        let r = run_dynamic(&i, DynamicPriority::Fifo, 5);
        // Precedence: every task starts after its predecessors' finishes
        // (plus communication, which is >= 0).
        for t in i.graph.tasks() {
            for e in i.graph.predecessors(t) {
                assert!(
                    r.start[t.index()] >= r.finish[e.task.index()] - 1e-9,
                    "{t} started before its predecessor finished"
                );
            }
        }
        // Exclusivity: consecutive tasks on one processor do not overlap.
        for p in 0..i.proc_count() {
            let tasks = r.schedule.tasks_on(ProcId(p as u32));
            for w in tasks.windows(2) {
                assert!(r.start[w[1].index()] >= r.finish[w[0].index()] - 1e-9);
            }
        }
    }

    #[test]
    fn upward_rank_priority_beats_fifo_on_average() {
        let mut rank_wins = 0;
        let total = 10;
        for seed in 0..total {
            let i = inst(seed, 4.0);
            let rank = run_dynamic(&i, DynamicPriority::UpwardRank, 99).makespan;
            let fifo = run_dynamic(&i, DynamicPriority::Fifo, 99).makespan;
            if rank <= fifo {
                rank_wins += 1;
            }
        }
        assert!(
            rank_wins >= 6,
            "rank priority should usually help, won {rank_wins}/{total}"
        );
    }

    #[test]
    fn dynamic_makespans_vary_across_realizations() {
        let i = inst(4, 6.0);
        let ms = dynamic_makespans(&i, DynamicPriority::UpwardRank, 20, 1);
        assert_eq!(ms.len(), 20);
        let first = ms[0];
        assert!(ms.iter().any(|&m| (m - first).abs() > 1e-9));
    }

    #[test]
    fn deterministic_instance_matches_static_heft_quality() {
        // With UL == 1 (no uncertainty) the dynamic EFT dispatcher sees
        // exact durations; its makespan should be in the same ballpark as
        // static HEFT (identical information, append-only placement).
        let base = InstanceSpec::new(25, 3).seed(5).build().unwrap();
        let timing =
            rds_platform::TimingModel::deterministic(base.timing.bcet_matrix().clone()).unwrap();
        let i = Instance::new(base.graph, base.platform, timing).unwrap();
        let dynamic = run_dynamic(&i, DynamicPriority::UpwardRank, 0).makespan;
        let heft = rds_graph::paths::critical_path_length(
            &i.graph,
            |t: TaskId| i.timing.mean_expected(t.index()),
            |_, _, _| 0.0,
        );
        // Sanity bound: dynamic must not be worse than 3x the zero-comm
        // critical path with mean durations.
        assert!(dynamic <= 3.0 * heft.max(1.0), "dynamic {dynamic} vs cp {heft}");
    }
}

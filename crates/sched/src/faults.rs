//! Fault model: deterministic, seed-derived fault scenarios.
//!
//! The paper's only non-determinism is the duration draw
//! `U(b, (2·UL−1)·b)`; real heterogeneous platforms additionally lose
//! processors, develop stragglers and slow down transiently. This module
//! models those regimes as **fault scenarios** layered on top of a
//! realization, so the Monte Carlo engine can measure robustness under
//! faults the paper never injects (see [`crate::recovery`] for the policies
//! that react to them).
//!
//! Four fault kinds:
//!
//! * **permanent processor failure** — processor `p` dies at time `t` and
//!   never returns; tasks running on it are lost;
//! * **transient slowdown** — processor `p` executes at `1/factor` speed
//!   inside a window `[start, end]` (thermal throttling, co-tenant
//!   interference);
//! * **straggler** — one task's duration is inflated by a factor on
//!   whatever processor it runs (data skew, cache pathology);
//! * **transient task crash** — a task's first attempt dies after a
//!   fraction of its duration and must be re-executed (the retryable kind).
//!
//! # Determinism contract
//!
//! [`FaultScenario::generate`] derives every draw from `(seed, fault-kind)`
//! through [`SeedStream::branch`], mirroring the per-realization discipline
//! of [`crate::realization`]: the Monte Carlo engine hands realization `i`
//! the sub-seed `(master seed, i)`, and the generator branches one
//! independent stream **per fault kind** from it. Consequences:
//!
//! * the same `(seed, realization)` reproduces the same scenario
//!   bit-for-bit regardless of thread count;
//! * adding a new fault kind (a new branch label) does not shift the draws
//!   of existing kinds;
//! * raising one kind's rate does not change *which* faults of the other
//!   kinds occur, nor the onset times of faults that were already firing —
//!   parameters are drawn unconditionally and the rate only gates them.

use rds_graph::TaskId;
use rds_platform::{ProcId, TimingModel};
use rds_stats::rng::SeedStream;

use rand::Rng;

use crate::replication::ReplicaPlan;

/// The kinds of fault a scenario can contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Permanent processor failure.
    ProcessorFailure,
    /// Transient processor slowdown window.
    TransientSlowdown,
    /// Task duration inflation.
    Straggler,
    /// Transient task crash (first attempt dies, retryable).
    TaskCrash,
}

/// A permanent processor failure at an absolute time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorFailure {
    /// The processor that dies.
    pub proc: ProcId,
    /// Failure onset; tasks running on `proc` at this instant are lost.
    pub at: f64,
}

/// A transient slowdown: `proc` runs at `1/factor` speed over
/// `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownWindow {
    /// Affected processor.
    pub proc: ProcId,
    /// Window start.
    pub start: f64,
    /// Window end (`> start`).
    pub end: f64,
    /// Rate divisor inside the window (`> 1`).
    pub factor: f64,
}

/// A straggler task: its realized duration is multiplied by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Affected task.
    pub task: TaskId,
    /// Duration inflation factor (`≥ 1`).
    pub factor: f64,
}

/// A transient task crash: the first attempt dies after `fraction` of its
/// duration has executed and the work is lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCrash {
    /// Affected task.
    pub task: TaskId,
    /// Fraction of the attempt's duration completed when it dies
    /// (`0 < fraction < 1`).
    pub fraction: f64,
}

/// Per-kind fault rates and shape parameters.
///
/// Rates are probabilities *per potential site within the horizon*: each
/// processor fails/slows independently with its rate, each task straggles/
/// crashes independently with its rate. `horizon` is the absolute time
/// window failure and slowdown onsets are drawn from — callers usually set
/// it to the schedule's expected makespan `M₀` so faults actually land
/// inside the execution (a non-positive horizon asks
/// [`crate::realization::monte_carlo_faulty`] to substitute `M₀`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-processor probability of a permanent failure.
    pub failure_rate: f64,
    /// Per-processor probability of one slowdown window.
    pub slowdown_rate: f64,
    /// Maximum slowdown rate divisor; realized factors are drawn from
    /// `U(1.5, max(1.5, slowdown_factor))`.
    pub slowdown_factor: f64,
    /// Slowdown window length as a fraction of the horizon.
    pub slowdown_span: f64,
    /// Per-task probability of being a straggler.
    pub straggler_rate: f64,
    /// Maximum straggler inflation; realized factors are drawn from
    /// `U(1, max(1, straggler_factor))`.
    pub straggler_factor: f64,
    /// Per-task probability of one transient crash on the first attempt.
    pub crash_rate: f64,
    /// Absolute time window for failure/slowdown onsets (`≤ 0` means
    /// "derive from the schedule's expected makespan").
    pub horizon: f64,
}

impl Default for FaultConfig {
    /// A moderate mixed-fault environment (horizon deferred to `M₀`).
    fn default() -> Self {
        Self {
            failure_rate: 0.15,
            slowdown_rate: 0.25,
            slowdown_factor: 3.0,
            slowdown_span: 0.3,
            straggler_rate: 0.1,
            straggler_factor: 3.0,
            crash_rate: 0.05,
            horizon: 0.0,
        }
    }
}

impl FaultConfig {
    /// A configuration with every rate zero — useful as a no-fault control.
    #[must_use]
    pub fn quiet() -> Self {
        Self {
            failure_rate: 0.0,
            slowdown_rate: 0.0,
            straggler_rate: 0.0,
            crash_rate: 0.0,
            ..Self::default()
        }
    }

    /// Scales all four rates by `k` (clamped into `[0, 1]`), leaving the
    /// shape parameters untouched — the x axis of the fault-rate sweeps.
    #[must_use]
    pub fn scaled(mut self, k: f64) -> Self {
        let clamp = |r: f64| (r * k).clamp(0.0, 1.0);
        self.failure_rate = clamp(self.failure_rate);
        self.slowdown_rate = clamp(self.slowdown_rate);
        self.straggler_rate = clamp(self.straggler_rate);
        self.crash_rate = clamp(self.crash_rate);
        self
    }

    /// Sets the absolute onset horizon.
    #[must_use]
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// `true` when every rate is zero (scenarios will be empty).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.failure_rate <= 0.0
            && self.slowdown_rate <= 0.0
            && self.straggler_rate <= 0.0
            && self.crash_rate <= 0.0
    }

    fn validate(&self, tag: &str) {
        for (name, r) in [
            ("failure_rate", self.failure_rate),
            ("slowdown_rate", self.slowdown_rate),
            ("straggler_rate", self.straggler_rate),
            ("crash_rate", self.crash_rate),
        ] {
            assert!(
                (0.0..=1.0).contains(&r),
                "{tag}: {name} must be in [0,1], got {r}"
            );
        }
        assert!(
            self.horizon.is_finite() && self.horizon > 0.0,
            "{tag}: horizon must be positive and finite, got {}",
            self.horizon
        );
        assert!(
            self.slowdown_span > 0.0 && self.slowdown_span.is_finite(),
            "{tag}: slowdown_span must be positive, got {}",
            self.slowdown_span
        );
    }
}

/// One realization's fault trace: which faults occur, where and when.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScenario {
    /// Permanent failures, sorted by onset time (at most `m − 1`: the
    /// generator always leaves one survivor).
    pub failures: Vec<ProcessorFailure>,
    /// Slowdown windows (at most one per processor, so per-processor
    /// windows never overlap).
    pub slowdowns: Vec<SlowdownWindow>,
    /// Straggler tasks.
    pub stragglers: Vec<Straggler>,
    /// Transiently crashing tasks.
    pub crashes: Vec<TaskCrash>,
}

impl FaultScenario {
    /// Generates the scenario for one realization.
    ///
    /// `seed` is the per-realization sub-seed (derive it as
    /// `SeedStream::new(master).branch("fault-scenario").nth_seed(i)`);
    /// every fault kind draws from its own [`SeedStream::branch`] of it.
    ///
    /// The generator guarantees **at least one surviving processor**: if
    /// every processor draws a permanent failure, the latest-failing one is
    /// spared (deterministically), so recovery policies always have
    /// somewhere to migrate.
    ///
    /// # Panics
    /// Panics when `cfg` is invalid (rates outside `[0,1]`, non-positive
    /// horizon or span) or `procs == 0`.
    #[must_use]
    pub fn generate(cfg: &FaultConfig, tasks: usize, procs: usize, seed: u64) -> Self {
        cfg.validate("FaultScenario::generate");
        assert!(procs > 0, "need at least one processor");
        let root = SeedStream::new(seed);

        // Permanent failures. Parameters are drawn unconditionally so the
        // stream stays aligned when rates change.
        let mut rng = root.branch("proc-failure").next_rng();
        let mut failures: Vec<ProcessorFailure> = Vec::new();
        for p in 0..procs {
            let gate: f64 = rng.gen();
            let at = rng.gen_range(0.0..cfg.horizon);
            if gate < cfg.failure_rate {
                failures.push(ProcessorFailure {
                    proc: ProcId(p as u32),
                    at,
                });
            }
        }
        failures.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.proc.cmp(&b.proc)));
        if failures.len() == procs {
            // Spare the latest-failing processor so one always survives.
            failures.pop();
        }

        // Transient slowdowns: at most one window per processor.
        let mut rng = root.branch("slowdown").next_rng();
        let mut slowdowns: Vec<SlowdownWindow> = Vec::new();
        let span = cfg.slowdown_span * cfg.horizon;
        let factor_hi = cfg.slowdown_factor.max(1.5);
        for p in 0..procs {
            let gate: f64 = rng.gen();
            let start = rng.gen_range(0.0..cfg.horizon);
            let factor = if factor_hi > 1.5 {
                rng.gen_range(1.5..factor_hi)
            } else {
                1.5
            };
            if gate < cfg.slowdown_rate {
                slowdowns.push(SlowdownWindow {
                    proc: ProcId(p as u32),
                    start,
                    end: start + span,
                    factor,
                });
            }
        }

        // Stragglers.
        let mut rng = root.branch("straggler").next_rng();
        let mut stragglers: Vec<Straggler> = Vec::new();
        let infl_hi = cfg.straggler_factor.max(1.0);
        for t in 0..tasks {
            let gate: f64 = rng.gen();
            let factor = if infl_hi > 1.0 {
                rng.gen_range(1.0..infl_hi)
            } else {
                1.0
            };
            if gate < cfg.straggler_rate && factor > 1.0 {
                stragglers.push(Straggler {
                    task: TaskId(t as u32),
                    factor,
                });
            }
        }

        // Transient crashes.
        let mut rng = root.branch("task-crash").next_rng();
        let mut crashes: Vec<TaskCrash> = Vec::new();
        for t in 0..tasks {
            let gate: f64 = rng.gen();
            let fraction = rng.gen_range(0.1..0.9);
            if gate < cfg.crash_rate {
                crashes.push(TaskCrash {
                    task: TaskId(t as u32),
                    fraction,
                });
            }
        }

        Self {
            failures,
            slowdowns,
            stragglers,
            crashes,
        }
    }

    /// `true` when the scenario contains no fault of any kind.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.failures.is_empty()
            && self.slowdowns.is_empty()
            && self.stragglers.is_empty()
            && self.crashes.is_empty()
    }

    /// Total number of faults across kinds.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.failures.len() + self.slowdowns.len() + self.stragglers.len() + self.crashes.len()
    }

    /// Permanent-failure time of `p`, if it fails.
    #[must_use]
    pub fn failure_of(&self, p: ProcId) -> Option<f64> {
        self.failures.iter().find(|f| f.proc == p).map(|f| f.at)
    }

    /// Duration inflation of `t` (1 when not a straggler).
    #[must_use]
    pub fn straggler_factor(&self, t: TaskId) -> f64 {
        self.stragglers
            .iter()
            .find(|s| s.task == t)
            .map_or(1.0, |s| s.factor)
    }

    /// Crash fraction of `t`'s first attempt, if it crashes.
    #[must_use]
    pub fn crash_of(&self, t: TaskId) -> Option<f64> {
        self.crashes
            .iter()
            .find(|c| c.task == t)
            .map(|c| c.fraction)
    }

    /// The slowdown windows of each processor, sorted by start time —
    /// the form [`advance_through`] consumes.
    #[must_use]
    pub fn windows_by_proc(&self, procs: usize) -> Vec<Vec<SlowdownWindow>> {
        let mut by_proc: Vec<Vec<SlowdownWindow>> = vec![Vec::new(); procs];
        for w in &self.slowdowns {
            by_proc[w.proc.index()].push(*w);
        }
        for ws in &mut by_proc {
            ws.sort_by(|a, b| a.start.total_cmp(&b.start));
        }
        by_proc
    }
}

/// The realized draws of one replica execution: its duration on its host
/// processor, and — when the replica attempt itself crashes — the fraction
/// of that duration completed at the crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaDraw {
    /// Realized duration of the replica on its planned processor.
    pub duration: f64,
    /// Crash fraction of the replica attempt, when it crashes (replicas are
    /// not retried — a crashed replica is simply dead).
    pub crash: Option<f64>,
}

/// Realized draws for every replica of a [`ReplicaPlan`], aligned by
/// replica index.
///
/// # Determinism contract
///
/// Replica draws live in their **own substream**, keyed by
/// `(seed, realization, task, replica-index)`:
///
/// * the Monte Carlo engine derives the per-realization `seed` from
///   `branch("replica-draws")` of the master seed — a branch primary-task
///   draws (`"fault-durations"`) and scenarios (`"fault-scenario"`) never
///   touch, so **adding replicas never perturbs primary-task draws**;
/// * within a realization, each replica draws from a stream keyed by its
///   `(task, index-within-task)` pair, so growing the budget (adding more
///   replicas or more tasks) never shifts the draws of replicas that were
///   already planned.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplicaDraws {
    /// Per-replica draws, indexed like `plan.replicas()`.
    pub draws: Vec<ReplicaDraw>,
}

impl ReplicaDraws {
    /// Draws durations and crash gates for every replica of `plan`.
    ///
    /// `seed` is the per-realization sub-seed (derive it as
    /// `SeedStream::new(master).branch("replica-draws").nth_seed(i)`);
    /// `crash_rate` gates each replica's own transient crash. Parameters
    /// are drawn unconditionally so streams stay aligned when the rate
    /// changes, mirroring [`FaultScenario::generate`].
    #[must_use]
    pub fn generate(plan: &ReplicaPlan, timing: &TimingModel, crash_rate: f64, seed: u64) -> Self {
        let root = SeedStream::new(seed);
        let mut draws = Vec::with_capacity(plan.count());
        for (ri, r) in plan.replicas().iter().enumerate() {
            let k = plan
                .replicas_of(r.task)
                .iter()
                .position(|&x| x == ri)
                .unwrap_or(0) as u64;
            let task_stream = SeedStream::new(root.nth_seed(u64::from(r.task.0)));
            let mut rng = task_stream.nth_rng(k);
            let duration = timing.sample(r.task.index(), r.proc, &mut rng);
            let gate: f64 = rng.gen();
            let fraction = rng.gen_range(0.1..0.9);
            let crash = (gate < crash_rate).then_some(fraction);
            draws.push(ReplicaDraw { duration, crash });
        }
        Self { draws }
    }

    /// Draws for an empty plan (the no-replication baseline).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Nominal draws: every replica takes exactly its expected duration
    /// and never crashes. Together with the insurance constraint of
    /// [`crate::replication::plan_replicas`] this makes a fault-free
    /// replicated run bit-identical to the primary-only run.
    #[must_use]
    pub fn nominal(plan: &ReplicaPlan, timing: &TimingModel) -> Self {
        let draws = plan
            .replicas()
            .iter()
            .map(|r| ReplicaDraw {
                duration: timing.expected(r.task.index(), r.proc),
                crash: None,
            })
            .collect();
        Self { draws }
    }
}

/// Advances `work` units of computation starting at time `from` on a
/// processor whose speed is `1/factor` inside each of `windows` (sorted by
/// start, non-overlapping) and 1 elsewhere; returns the completion time.
///
/// With no windows this is simply `from + work` — the invariant every
/// executor test anchors on.
#[must_use]
pub fn advance_through(windows: &[SlowdownWindow], from: f64, work: f64) -> f64 {
    let mut t = from;
    let mut w = work;
    for win in windows {
        if win.end <= t {
            continue;
        }
        // Full-speed segment before the window.
        let free = (win.start - t).max(0.0);
        if w <= free {
            return t + w;
        }
        w -= free;
        t = t.max(win.start);
        // Inside the window work is consumed at rate 1/factor.
        let capacity = (win.end - t) / win.factor;
        if w <= capacity {
            return t + w * win.factor;
        }
        w -= capacity;
        t = win.end;
    }
    t + w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultConfig {
        FaultConfig {
            horizon: 100.0,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultScenario::generate(&cfg(), 50, 8, 7);
        let b = FaultScenario::generate(&cfg(), 50, 8, 7);
        assert_eq!(a, b);
        let c = FaultScenario::generate(&cfg(), 50, 8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_rates_produce_quiet_scenarios() {
        let quiet = FaultConfig::quiet().with_horizon(10.0);
        for seed in 0..20 {
            assert!(FaultScenario::generate(&quiet, 30, 4, seed).is_quiet());
        }
    }

    #[test]
    fn at_least_one_processor_survives() {
        let certain = FaultConfig {
            failure_rate: 1.0,
            horizon: 10.0,
            ..FaultConfig::quiet()
        };
        for seed in 0..20 {
            let s = FaultScenario::generate(&certain, 10, 5, seed);
            assert_eq!(s.failures.len(), 4, "exactly one survivor expected");
            // And the spared processor is the latest-failing one: every
            // kept onset is <= the dropped one would have been.
            for w in s.failures.windows(2) {
                assert!(w[0].at <= w[1].at, "failures must be time-sorted");
            }
        }
    }

    #[test]
    fn raising_one_rate_preserves_other_kinds() {
        let lo = FaultScenario::generate(&cfg(), 40, 6, 3);
        let hi_cfg = FaultConfig {
            failure_rate: 0.9,
            ..cfg()
        };
        let hi = FaultScenario::generate(&hi_cfg, 40, 6, 3);
        // Same seed: slowdowns/stragglers/crashes identical, failures a
        // superset (the latest may be dropped by the survivor rule).
        assert_eq!(lo.slowdowns, hi.slowdowns);
        assert_eq!(lo.stragglers, hi.stragglers);
        assert_eq!(lo.crashes, hi.crashes);
        for f in &lo.failures {
            assert!(
                hi.failures.iter().any(|g| g.proc == f.proc && g.at == f.at),
                "failure of {} lost when raising the rate",
                f.proc
            );
        }
    }

    #[test]
    fn rates_scale_monotonically() {
        let base = cfg();
        let mut counts = Vec::new();
        for k in [0.0, 0.5, 1.0, 2.0] {
            let scaled = base.scaled(k);
            let total: usize = (0..30)
                .map(|s| FaultScenario::generate(&scaled, 60, 8, s).fault_count())
                .sum();
            counts.push(total);
        }
        assert_eq!(counts[0], 0);
        for w in counts.windows(2) {
            assert!(w[0] <= w[1], "fault volume must grow with the scale");
        }
    }

    #[test]
    fn advance_without_windows_is_identity() {
        assert_eq!(advance_through(&[], 3.0, 5.0), 8.0);
    }

    #[test]
    fn advance_through_one_window_hand_computed() {
        let w = [SlowdownWindow {
            proc: ProcId(0),
            start: 4.0,
            end: 8.0,
            factor: 2.0,
        }];
        // Entirely before the window.
        assert_eq!(advance_through(&w, 0.0, 4.0), 4.0);
        // 2 units free + 2 units at half speed -> 2 + 4 = finish at 8... no:
        // start 2, free until 4 consumes 2; remaining 2 work at factor 2
        // takes 4 time -> finish 8.
        assert_eq!(advance_through(&w, 2.0, 4.0), 8.0);
        // Starting inside the window.
        assert_eq!(advance_through(&w, 6.0, 1.0), 8.0);
        // Spilling past the window: 4 units capacity is (8-4)/2 = 2 work;
        // 3 work from t=4 -> 2 inside (4 time units), 1 after -> 9.
        assert_eq!(advance_through(&w, 4.0, 3.0), 9.0);
        // Window already passed.
        assert_eq!(advance_through(&w, 9.0, 2.0), 11.0);
    }

    #[test]
    fn advance_is_monotone_in_work() {
        let w = [
            SlowdownWindow {
                proc: ProcId(0),
                start: 1.0,
                end: 2.0,
                factor: 3.0,
            },
            SlowdownWindow {
                proc: ProcId(0),
                start: 5.0,
                end: 7.0,
                factor: 2.0,
            },
        ];
        let mut last = 0.0;
        for i in 0..40 {
            let work = f64::from(i) * 0.25;
            let f = advance_through(&w, 0.5, work);
            assert!(f >= last);
            assert!(f >= 0.5 + work, "slowdowns can only delay");
            last = f;
        }
    }

    /// Regression (replica RNG substream): replica draws are keyed by
    /// `(seed, task, replica-index)`, so growing a plan never perturbs the
    /// draws of replicas that already existed, and the draws live in a
    /// stream disjoint from the primary-duration and scenario streams.
    #[test]
    fn replica_draws_are_stable_under_plan_growth() {
        use crate::instance::InstanceSpec;
        use crate::replication::{plan_replicas, ReplicationConfig};
        use crate::schedule::Schedule;

        let inst = InstanceSpec::new(24, 4)
            .seed(3)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..24).map(|t| ProcId((t % 4) as u32)).collect();
        let s = Schedule::from_order_and_assignment(&order, &assignment, 4).unwrap();

        let small = plan_replicas(&inst, &s, &ReplicationConfig::with_budget(0.25)).unwrap();
        let cfg_big = ReplicationConfig {
            budget: 1.0,
            max_replicas_per_task: 2,
            ..ReplicationConfig::default()
        };
        let big = plan_replicas(&inst, &s, &cfg_big).unwrap();
        assert!(big.count() > small.count(), "bigger budget adds replicas");

        let seed = 77u64;
        let d_small = ReplicaDraws::generate(&small, &inst.timing, 0.5, seed);
        let d_big = ReplicaDraws::generate(&big, &inst.timing, 0.5, seed);
        // Every replica present in the small plan gets the same draw in the
        // big plan (matched by (task, index-within-task, proc)).
        for (ri, r) in small.replicas().iter().enumerate() {
            let k = small
                .replicas_of(r.task)
                .iter()
                .position(|&x| x == ri)
                .unwrap();
            let Some(&rj) = big.replicas_of(r.task).get(k) else {
                continue;
            };
            if big.replicas()[rj].proc == r.proc {
                assert_eq!(
                    d_small.draws[ri], d_big.draws[rj],
                    "draw of {} replica {k} shifted when the plan grew",
                    r.task
                );
            }
        }
    }

    /// Regression: changing the crash rate only gates crashes — durations
    /// and crash fractions are drawn unconditionally and never shift.
    #[test]
    fn replica_crash_rate_only_gates() {
        use crate::instance::InstanceSpec;
        use crate::replication::{plan_replicas, ReplicationConfig};
        use crate::schedule::Schedule;

        let inst = InstanceSpec::new(20, 3)
            .seed(5)
            .uncertainty_level(4.0)
            .build()
            .unwrap();
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let assignment: Vec<ProcId> = (0..20).map(|t| ProcId((t % 3) as u32)).collect();
        let s = Schedule::from_order_and_assignment(&order, &assignment, 3).unwrap();
        let plan = plan_replicas(&inst, &s, &ReplicationConfig::with_budget(1.0)).unwrap();
        assert!(!plan.is_empty());

        let none = ReplicaDraws::generate(&plan, &inst.timing, 0.0, 9);
        let all = ReplicaDraws::generate(&plan, &inst.timing, 1.0, 9);
        assert_eq!(none.draws.len(), all.draws.len());
        for (a, b) in none.draws.iter().zip(&all.draws) {
            assert_eq!(
                a.duration, b.duration,
                "duration must not depend on the rate"
            );
            assert!(a.crash.is_none(), "rate 0 crashes nothing");
            assert!(b.crash.is_some(), "rate 1 crashes everything");
        }
    }

    #[test]
    fn scenario_accessors() {
        let s = FaultScenario {
            failures: vec![ProcessorFailure {
                proc: ProcId(1),
                at: 5.0,
            }],
            slowdowns: vec![SlowdownWindow {
                proc: ProcId(0),
                start: 1.0,
                end: 2.0,
                factor: 2.0,
            }],
            stragglers: vec![Straggler {
                task: TaskId(3),
                factor: 2.5,
            }],
            crashes: vec![TaskCrash {
                task: TaskId(4),
                fraction: 0.5,
            }],
        };
        assert_eq!(s.failure_of(ProcId(1)), Some(5.0));
        assert_eq!(s.failure_of(ProcId(0)), None);
        assert_eq!(s.straggler_factor(TaskId(3)), 2.5);
        assert_eq!(s.straggler_factor(TaskId(0)), 1.0);
        assert_eq!(s.crash_of(TaskId(4)), Some(0.5));
        assert_eq!(s.crash_of(TaskId(3)), None);
        let by_proc = s.windows_by_proc(2);
        assert_eq!(by_proc[0].len(), 1);
        assert!(by_proc[1].is_empty());
        assert_eq!(s.fault_count(), 4);
        assert!(!s.is_quiet());
    }
}

//! Start/finish times and makespan under a duration assignment.
//!
//! Claim 3.2: if each task starts as soon as it becomes ready, the makespan
//! of schedule `s` equals the critical-path length of the disjunctive graph
//! `G_s`. The evaluation below is a single forward pass over the cached
//! topological order of `G_s`:
//!
//! ```text
//! start(t)  = max over preds q of  finish(q) + comm(q → t)
//! finish(t) = start(t) + duration(t)
//! ```
//!
//! where `comm` uses the platform's transfer rates and is zero for
//! co-located tasks (which subsumes Eq. (1)'s zeroing of intra-processor
//! data). Durations are supplied by the caller, so the same kernel serves
//! the *expected* makespan `M₀` (durations = `UL·B`) and each *realized*
//! makespan `M_i` (durations sampled from the realization law).

use rds_graph::{TaskGraph, TaskId};
use rds_platform::Platform;

use crate::disjunctive::DisjunctiveGraph;
use crate::schedule::Schedule;

/// Start/finish times for every task plus the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedSchedule {
    /// Per-task start times.
    pub start: Vec<f64>,
    /// Per-task finish times.
    pub finish: Vec<f64>,
    /// `max(finish)` (0 for an empty graph).
    pub makespan: f64,
}

impl TimedSchedule {
    /// Start time of `t`.
    #[inline]
    pub fn start_of(&self, t: TaskId) -> f64 {
        self.start[t.index()]
    }

    /// Finish time of `t`.
    #[inline]
    pub fn finish_of(&self, t: TaskId) -> f64 {
        self.finish[t.index()]
    }
}

/// Computes start/finish times for `schedule` given per-task durations.
///
/// `durations[i]` is the duration of task `i` on its *assigned* processor.
pub fn evaluate_with_durations(
    ds: &DisjunctiveGraph,
    schedule: &Schedule,
    platform: &Platform,
    durations: &[f64],
) -> TimedSchedule {
    let n = ds.task_count();
    debug_assert_eq!(durations.len(), n);
    let mut start = vec![0.0_f64; n];
    let mut finish = vec![0.0_f64; n];
    let mut makespan = 0.0_f64;
    for &t in ds.topo_order() {
        let ti = t.index();
        let pt = schedule.proc_of(t);
        let mut s = 0.0_f64;
        for e in ds.predecessors(t) {
            let q = e.task;
            let ready = finish[q.index()] + platform.comm_time(e.data, schedule.proc_of(q), pt);
            if ready > s {
                s = ready;
            }
        }
        start[ti] = s;
        finish[ti] = s + durations[ti];
        if finish[ti] > makespan {
            makespan = finish[ti];
        }
    }
    TimedSchedule {
        start,
        finish,
        makespan,
    }
}

/// Only the makespan — avoids materializing the start/finish vectors on the
/// Monte Carlo hot path (one `Vec` per realization still needed for finish
/// times; reuse via the `scratch` buffer).
pub fn makespan_with_durations(
    ds: &DisjunctiveGraph,
    schedule: &Schedule,
    platform: &Platform,
    durations: &[f64],
    scratch: &mut Vec<f64>,
) -> f64 {
    let n = ds.task_count();
    debug_assert_eq!(durations.len(), n);
    scratch.clear();
    scratch.resize(n, 0.0);
    let mut makespan = 0.0_f64;
    for &t in ds.topo_order() {
        let ti = t.index();
        let pt = schedule.proc_of(t);
        let mut s = 0.0_f64;
        for e in ds.predecessors(t) {
            let q = e.task;
            let ready = scratch[q.index()] + platform.comm_time(e.data, schedule.proc_of(q), pt);
            if ready > s {
                s = ready;
            }
        }
        let f = s + durations[ti];
        scratch[ti] = f;
        if f > makespan {
            makespan = f;
        }
    }
    makespan
}

/// Expected durations of every task on its assigned processor.
pub fn expected_durations(timing: &rds_platform::TimingModel, schedule: &Schedule) -> Vec<f64> {
    (0..schedule.task_count())
        .map(|i| timing.expected(i, schedule.proc_of(TaskId(i as u32))))
        .collect()
}

/// Convenience: builds `G_s` and evaluates the *expected* timing (`M₀`).
///
/// # Errors
/// Returns an error when the schedule is incompatible with the graph.
pub fn evaluate_expected(
    graph: &TaskGraph,
    platform: &Platform,
    timing: &rds_platform::TimingModel,
    schedule: &Schedule,
) -> Result<TimedSchedule, crate::disjunctive::CycleError> {
    let ds = DisjunctiveGraph::build(graph, schedule)?;
    let durations = expected_durations(timing, schedule);
    Ok(evaluate_with_durations(&ds, schedule, platform, &durations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_graph::TaskGraphBuilder;
    use rds_platform::{Platform, ProcId, TimingModel};
    use rds_stats::matrix::Matrix;

    fn ids(xs: &[u32]) -> Vec<TaskId> {
        xs.iter().map(|&x| TaskId(x)).collect()
    }

    /// Hand-checkable fixture:
    /// graph 0 -> 1 (data 4), 0 -> 2 (data 8), 1 -> 3 (data 2), 2 -> 3 (data 2)
    /// platform: 2 procs, rate 2 (comm = data/2)
    /// durations: [2, 3, 4, 1]
    /// schedule: p0 = [0, 1], p1 = [2, 3]
    fn fixture() -> (TaskGraph, Platform, Schedule, Vec<f64>) {
        let mut b = TaskGraphBuilder::with_tasks(4);
        b.add_edge(TaskId(0), TaskId(1), 4.0)
            .add_edge(TaskId(0), TaskId(2), 8.0)
            .add_edge(TaskId(1), TaskId(3), 2.0)
            .add_edge(TaskId(2), TaskId(3), 2.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(2, 2.0).unwrap();
        let s = Schedule::from_proc_lists(4, vec![ids(&[0, 1]), ids(&[2, 3])]).unwrap();
        (g, p, s, vec![2.0, 3.0, 4.0, 1.0])
    }

    #[test]
    fn hand_computed_timing() {
        let (g, p, s, dur) = fixture();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let t = evaluate_with_durations(&ds, &s, &p, &dur);
        // start(0)=0, finish(0)=2
        // start(1): pred 0 same proc, comm 0 -> finish(0)=2; start=2, finish=5
        // start(2): pred 0 cross proc, comm 8/2=4 -> 2+4=6; finish=10
        // start(3): preds 1 (cross, comm 1) -> 5+1=6; 2 (same, comm 0) -> 10
        //   start=10, finish=11
        assert_eq!(t.start, vec![0.0, 2.0, 6.0, 10.0]);
        assert_eq!(t.finish, vec![2.0, 5.0, 10.0, 11.0]);
        assert_eq!(t.makespan, 11.0);
    }

    #[test]
    fn makespan_only_matches_full_eval() {
        let (g, p, s, dur) = fixture();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let mut scratch = Vec::new();
        let m = makespan_with_durations(&ds, &s, &p, &dur, &mut scratch);
        assert_eq!(m, 11.0);
        // scratch reuse across calls
        let m2 = makespan_with_durations(&ds, &s, &p, &dur, &mut scratch);
        assert_eq!(m2, 11.0);
    }

    #[test]
    fn disjunctive_chain_serializes_same_proc_tasks() {
        // Independent tasks 0 and 1 on one processor must serialize.
        let g = TaskGraphBuilder::with_tasks(2).build().unwrap();
        let p = Platform::uniform(1, 1.0).unwrap();
        let s = Schedule::from_proc_lists(2, vec![ids(&[0, 1])]).unwrap();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let t = evaluate_with_durations(&ds, &s, &p, &[5.0, 3.0]);
        assert_eq!(t.start, vec![0.0, 5.0]);
        assert_eq!(t.makespan, 8.0);
    }

    #[test]
    fn same_proc_communication_is_free() {
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(1), 100.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(2, 1.0).unwrap();
        let s = Schedule::from_proc_lists(2, vec![ids(&[0, 1]), vec![]]).unwrap();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let t = evaluate_with_durations(&ds, &s, &p, &[1.0, 1.0]);
        assert_eq!(t.start_of(TaskId(1)), 1.0);
        assert_eq!(t.makespan, 2.0);
    }

    #[test]
    fn evaluate_expected_uses_ul_times_bcet() {
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(1), 0.0);
        let g = b.build().unwrap();
        let p = Platform::uniform(1, 1.0).unwrap();
        let bcet = Matrix::from_rows(&[&[2.0], &[3.0]]);
        let ul = Matrix::from_rows(&[&[2.0], &[3.0]]);
        let tm = TimingModel::new(bcet, ul).unwrap();
        let s = Schedule::from_proc_lists(2, vec![ids(&[0, 1])]).unwrap();
        let t = evaluate_expected(&g, &p, &tm, &s).unwrap();
        // expected durations: 4 and 9.
        assert_eq!(t.makespan, 13.0);
        assert_eq!(s.proc_of(TaskId(0)), ProcId(0));
    }

    #[test]
    fn longer_realized_durations_cannot_shrink_makespan() {
        let (g, p, s, dur) = fixture();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let base = evaluate_with_durations(&ds, &s, &p, &dur).makespan;
        let inflated: Vec<f64> = dur.iter().map(|d| d * 1.5).collect();
        let m = evaluate_with_durations(&ds, &s, &p, &inflated).makespan;
        assert!(m >= base);
    }

    #[test]
    fn empty_graph_makespan_zero() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        let p = Platform::uniform(1, 1.0).unwrap();
        let s = Schedule::from_proc_lists(0, vec![vec![]]).unwrap();
        let ds = DisjunctiveGraph::build(&g, &s).unwrap();
        let t = evaluate_with_durations(&ds, &s, &p, &[]);
        assert_eq!(t.makespan, 0.0);
    }
}

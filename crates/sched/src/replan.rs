//! Shared partial-graph HEFT replanner.
//!
//! Re-plans the unfinished subgraph of an execution frozen mid-flight onto
//! the surviving processors: tasks are visited in full-graph upward-rank
//! order and placed by insertion-based earliest-finish-time, exactly
//! HEFT's processor-selection mathematics (Topcuoglu et al. §III-C).
//!
//! This module is the *single* implementation behind both runtime
//! replanning consumers:
//!
//! * [`crate::recovery`]'s migrate-and-replan policy and the sentinel's
//!   overrun-triggered repairs call [`replan_partial`] directly;
//! * `rds_heft::reschedule::heft_reschedule` (the public entry point one
//!   crate up) delegates its core to [`replan_partial`] as well.
//!
//! Before this module existed the same rank + EFT pass was duplicated on
//! both sides of the crate boundary and could drift silently; the
//! cross-check test in `rds-heft` keeps the two call paths glued to this
//! one implementation.

use rds_graph::TaskId;
use rds_platform::ProcId;

use crate::instance::Instance;

/// A frozen execution prefix to replan from.
///
/// The sibling of `rds_heft::reschedule::PartialState`, extended with a
/// `skip` mask for tasks the replanner must leave alone without treating
/// them as data sources (tasks carried solely by promoted replicas, whose
/// completion time the planner cannot estimate).
#[derive(Debug, Clone)]
pub struct FrozenState {
    /// Per-task completion: `Some((proc, finish_time))` for tasks already
    /// finished or irrevocably committed, `None` for tasks to plan.
    pub finished: Vec<Option<(ProcId, f64)>>,
    /// Per-processor liveness; dead processors receive no new work.
    pub alive: Vec<bool>,
    /// Earliest time each alive processor can accept new work (ignored for
    /// dead processors).
    pub free_at: Vec<f64>,
    /// Tasks to neither plan nor wait for: unfinished, but owned by an
    /// out-of-band mechanism (e.g. a promoted replica). Their successors
    /// are planned as if the skipped task's data were already available.
    pub skip: Vec<bool>,
}

impl FrozenState {
    /// The initial state: nothing finished or skipped, everything alive
    /// and free at 0.
    #[must_use]
    pub fn fresh(tasks: usize, procs: usize) -> Self {
        Self {
            finished: vec![None; tasks],
            alive: vec![true; procs],
            free_at: vec![0.0; procs],
            skip: vec![false; tasks],
        }
    }
}

/// Ways a partial replan can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplanError {
    /// `alive`/`free_at`/`finished`/`skip` lengths disagree with the
    /// instance.
    ShapeMismatch,
    /// No processor is alive.
    NoAliveProcessor,
    /// A finished task's placement names a processor outside the platform.
    InvalidPlacement(TaskId),
}

impl std::fmt::Display for ReplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShapeMismatch => write!(f, "state dimensions disagree with the instance"),
            Self::NoAliveProcessor => write!(f, "no processor is alive"),
            Self::InvalidPlacement(t) => write!(f, "finished task {t} placed off-platform"),
        }
    }
}

impl std::error::Error for ReplanError {}

/// Result of a partial replan.
#[derive(Debug, Clone)]
pub struct ReplanResult {
    /// Newly planned tasks per processor, in their planned start order
    /// (finished tasks are *not* included — callers that need the combined
    /// schedule prepend the realized prefix themselves).
    pub proc_tasks: Vec<Vec<TaskId>>,
    /// Per-task planned start estimates (NaN for finished and skipped
    /// tasks).
    pub est_start: Vec<f64>,
    /// Per-task finish estimates: realized values for finished tasks,
    /// expected-duration EFT estimates for re-planned ones, NaN for
    /// skipped ones.
    pub est_finish: Vec<f64>,
    /// Placement after the replan: original processors for finished tasks,
    /// new ones for re-planned tasks (unchanged for skipped tasks).
    pub placement: Vec<ProcId>,
    /// Number of tasks that were re-planned.
    pub replanned: usize,
    /// Estimated overall makespan (max over finite `est_finish`).
    pub est_makespan: f64,
}

/// Tasks in decreasing expected-time upward-rank order — HEFT's priority,
/// identical to `rds_heft::ranks::rank_order` and the prioritization
/// `dynamic.rs` uses (ties broken by ascending id).
#[must_use]
pub fn rank_order(inst: &Instance) -> Vec<TaskId> {
    let ranks = rds_graph::paths::bottom_levels(
        &inst.graph,
        |t: TaskId| inst.timing.mean_expected(t.index()),
        |_, _, data| inst.platform.mean_comm_time(data),
    );
    let mut order: Vec<TaskId> = inst.graph.tasks().collect();
    order.sort_by(|a, b| {
        ranks[b.index()]
            .total_cmp(&ranks[a.index()])
            .then_with(|| a.cmp(b))
    });
    order
}

/// One busy interval on a processor timeline (mirror of
/// `rds_heft::timeline::Slot`; `rds-heft` sits above this crate, so the
/// insertion logic is restated here and pinned to the original by the
/// fresh-state-reproduces-HEFT tests).
#[derive(Debug, Clone, Copy)]
struct Slot {
    start: f64,
    finish: f64,
    task: TaskId,
}

#[derive(Debug, Clone, Default)]
struct Timeline {
    slots: Vec<Slot>,
}

impl Timeline {
    /// Earliest start `≥ ready` for a task of length `duration`,
    /// considering idle gaps between committed intervals.
    fn earliest_start(&self, ready: f64, duration: f64) -> f64 {
        let mut prev_finish = 0.0_f64;
        for s in &self.slots {
            let candidate = ready.max(prev_finish);
            if candidate + duration <= s.start {
                return candidate;
            }
            prev_finish = prev_finish.max(s.finish);
        }
        ready.max(prev_finish)
    }

    fn commit(&mut self, start: f64, duration: f64, task: TaskId) {
        let finish = start + duration;
        let idx = self.slots.partition_point(|s| s.start < start);
        debug_assert!(
            idx == 0 || self.slots[idx - 1].finish <= start + 1e-9,
            "overlap with previous slot"
        );
        debug_assert!(
            idx == self.slots.len() || finish <= self.slots[idx].start + 1e-9,
            "overlap with next slot"
        );
        self.slots.insert(
            idx,
            Slot {
                start,
                finish,
                task,
            },
        );
    }
}

/// Re-plans every unfinished, unskipped task of `inst` onto the alive
/// processors of `state` by insertion-based earliest finish time.
///
/// `order` must be a priority order of the **full** graph that visits
/// predecessors before successors (use [`rank_order`]); finished and
/// skipped tasks in it are passed over. Ready times floor at the
/// processor's `free_at` and rise with data arrivals from each
/// predecessor's frozen or estimated finish (data on a dead processor is
/// still consumable — the fault model assumes storage outlives compute).
/// Predecessors that are skipped contribute no arrival constraint.
///
/// # Errors
/// Returns a [`ReplanError`] on dimension mismatches, when every processor
/// is dead, or when a finished task's placement is off-platform.
pub fn replan_partial(
    inst: &Instance,
    order: &[TaskId],
    state: &FrozenState,
) -> Result<ReplanResult, ReplanError> {
    let n = inst.task_count();
    let m = inst.proc_count();
    if state.finished.len() != n
        || state.alive.len() != m
        || state.free_at.len() != m
        || state.skip.len() != n
    {
        return Err(ReplanError::ShapeMismatch);
    }
    if !state.alive.iter().any(|&a| a) {
        return Err(ReplanError::NoAliveProcessor);
    }
    for (t, f) in state.finished.iter().enumerate() {
        if let Some((p, _)) = f {
            if p.index() >= m {
                return Err(ReplanError::InvalidPlacement(TaskId(t as u32)));
            }
        }
    }

    let mut timelines: Vec<Timeline> = vec![Timeline::default(); m];
    let mut est_start: Vec<f64> = vec![f64::NAN; n];
    let mut est_finish: Vec<f64> = (0..n)
        .map(|t| state.finished[t].map_or(f64::NAN, |(_, f)| f))
        .collect();
    let mut placement: Vec<ProcId> = (0..n)
        .map(|t| state.finished[t].map_or(ProcId(0), |(p, _)| p))
        .collect();
    let mut replanned = 0usize;

    for &t in order {
        let ti = t.index();
        if state.finished[ti].is_some() || state.skip[ti] {
            continue;
        }
        let mut best: Option<(f64, f64, ProcId)> = None; // (eft, est, proc)
        for p in inst.platform.procs() {
            if !state.alive[p.index()] {
                continue;
            }
            let mut ready = state.free_at[p.index()];
            for e in inst.graph.predecessors(t) {
                let q = e.task;
                debug_assert!(
                    !est_finish[q.index()].is_nan() || state.skip[q.index()],
                    "rank order visits predecessors first"
                );
                let arrive = est_finish[q.index()]
                    + inst.platform.comm_time(e.data, placement[q.index()], p);
                // A NaN arrival (skipped predecessor) imposes no
                // constraint: the comparison is false by IEEE semantics.
                if arrive > ready {
                    ready = arrive;
                }
            }
            let dur = inst.timing.expected(ti, p);
            let est = timelines[p.index()].earliest_start(ready, dur);
            let eft = est + dur;
            // Same comparison as HEFT's `schedule_by_priority_list`, so a
            // fresh state reproduces plain HEFT exactly.
            let better = match best {
                None => true,
                Some((beft, _, bp)) => {
                    eft < beft - 1e-12 || (eft <= beft + 1e-12 && p < bp && eft < beft + 1e-12)
                }
            };
            if better {
                best = Some((eft, est, p));
            }
        }
        let Some((eft, est, p)) = best else {
            return Err(ReplanError::NoAliveProcessor);
        };
        timelines[p.index()].commit(est, eft - est, t);
        est_start[ti] = est;
        est_finish[ti] = eft;
        placement[ti] = p;
        replanned += 1;
    }

    let proc_tasks: Vec<Vec<TaskId>> = timelines
        .iter()
        .map(|tl| tl.slots.iter().map(|s| s.task).collect())
        .collect();
    // NaN-safe fold: `max` keeps the accumulator when the operand is NaN.
    let est_makespan = est_finish.iter().copied().fold(0.0f64, f64::max);
    Ok(ReplanResult {
        proc_tasks,
        est_start,
        est_finish,
        placement,
        replanned,
        est_makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(30, 4)
            .seed(seed)
            .uncertainty_level(3.0)
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_state_plans_every_task() {
        let i = inst(3);
        let order = rank_order(&i);
        let state = FrozenState::fresh(i.task_count(), i.proc_count());
        let r = replan_partial(&i, &order, &state).unwrap();
        assert_eq!(r.replanned, i.task_count());
        assert!(r.est_makespan > 0.0);
        let planned: usize = r.proc_tasks.iter().map(Vec::len).sum();
        assert_eq!(planned, i.task_count());
        for t in 0..i.task_count() {
            assert!(!r.est_finish[t].is_nan());
            assert!(r.est_start[t] <= r.est_finish[t]);
        }
    }

    #[test]
    fn dead_processor_receives_no_work() {
        let i = inst(5);
        let order = rank_order(&i);
        let mut state = FrozenState::fresh(i.task_count(), i.proc_count());
        state.alive[1] = false;
        state.free_at = vec![2.0; i.proc_count()];
        let r = replan_partial(&i, &order, &state).unwrap();
        assert!(r.proc_tasks[1].is_empty());
        for t in 0..i.task_count() {
            assert_ne!(r.placement[t], ProcId(1));
            assert!(r.est_start[t] >= 2.0);
        }
    }

    #[test]
    fn skipped_tasks_are_not_planned_and_block_nothing() {
        let i = inst(7);
        let order = rank_order(&i);
        let mut state = FrozenState::fresh(i.task_count(), i.proc_count());
        // Skip an entry task: its successors must still be planned.
        let entry = i.graph.entries()[0];
        state.skip[entry.index()] = true;
        let r = replan_partial(&i, &order, &state).unwrap();
        assert_eq!(r.replanned, i.task_count() - 1);
        assert!(r.est_finish[entry.index()].is_nan());
        for e in i.graph.successors(entry) {
            assert!(!r.est_finish[e.task.index()].is_nan());
        }
    }

    #[test]
    fn shape_and_liveness_errors() {
        let i = inst(1);
        let order = rank_order(&i);
        let mut dead = FrozenState::fresh(i.task_count(), i.proc_count());
        dead.alive = vec![false; i.proc_count()];
        assert_eq!(
            replan_partial(&i, &order, &dead).unwrap_err(),
            ReplanError::NoAliveProcessor
        );
        let wrong = FrozenState::fresh(i.task_count() + 1, i.proc_count());
        assert_eq!(
            replan_partial(&i, &order, &wrong).unwrap_err(),
            ReplanError::ShapeMismatch
        );
        let mut bad = FrozenState::fresh(i.task_count(), i.proc_count());
        bad.finished[0] = Some((ProcId(99), 1.0));
        assert_eq!(
            replan_partial(&i, &order, &bad).unwrap_err(),
            ReplanError::InvalidPlacement(TaskId(0))
        );
    }

    #[test]
    fn finished_prefix_is_respected() {
        let i = inst(9);
        let order = rank_order(&i);
        let mut state = FrozenState::fresh(i.task_count(), i.proc_count());
        // Freeze the entries as finished at t=10 on processor 0.
        for t in i.graph.entries() {
            state.finished[t.index()] = Some((ProcId(0), 10.0));
        }
        state.free_at = vec![10.0; i.proc_count()];
        let r = replan_partial(&i, &order, &state).unwrap();
        for t in i.graph.entries() {
            assert_eq!(r.est_finish[t.index()], 10.0);
            assert_eq!(r.placement[t.index()], ProcId(0));
            assert!(!r.proc_tasks.iter().any(|l| l.contains(&t)));
        }
        for t in 0..i.task_count() {
            if state.finished[t].is_none() {
                assert!(r.est_start[t] >= 10.0);
            }
        }
    }
}

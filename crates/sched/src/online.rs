//! Online multi-tenant scheduling with completion-probability admission
//! and autonomous task dropping.
//!
//! Every other entry point in this crate is one-shot: a whole instance
//! in, a schedule out. This module models the *streaming* regime: DAG
//! jobs arrive continuously (a deterministic seeded arrival process) onto
//! a shared live platform and are placed incrementally with the
//! partial-graph HEFT replanner ([`crate::replan`]). Each job carries a
//! deadline, and a robustness controller — in the spirit of Mokhtari et
//! al.'s autonomous task-dropping mechanism — protects *aggregate*
//! deadline performance under oversubscription:
//!
//! * **Admission** ([`AdmissionPolicy::CompletionProbability`]): at
//!   arrival the job is tentatively planned on top of the estimated
//!   processor backlogs and its probability of finishing by its deadline
//!   is estimated by Monte-Carlo sampling with common random numbers
//!   (CRN: sample `k` of task `t` of job `j` always draws from the same
//!   substream, so re-estimates under heavier load are comparable
//!   draw-for-draw). Arrivals below the admission floor are rejected —
//!   backpressure by *predicted robustness*, not queue capacity.
//! * **The drop ladder** ([`DropPolicy::Autonomous`]): at every arrival
//!   the controller re-estimates each admitted job that has not yet
//!   started. A job whose completion probability fell below the drop
//!   floor first sheds its `optional`-marked tasks (the PR-3 graceful
//!   degradation ladder) and is re-planned; if even the required subgraph
//!   cannot be saved, the whole job is dropped, freeing its reserved
//!   backlog for later arrivals.
//!
//! Every decision is recorded as a typed [`OnlineEvent`] (convertible to
//! Chrome-trace instants via [`crate::trace::instants_from_online`]).
//!
//! # Determinism and the one-shot contract
//!
//! All execution accounting is done in each job's *local frame* (time
//! relative to its arrival): the per-processor release floors handed to
//! the planner and the estimator are `max(0, busy_until - arrival)`.
//! When a job arrives on an idle platform the floors are exactly `0.0`,
//! so the plan, the estimate and the realized spans are **bit-identical**
//! to scheduling the job alone with [`plan_isolated`] — an undersubscribed
//! stream degenerates to a sequence of independent one-shot problems
//! (property-tested in `tests/online_invariants.rs`).
//!
//! Realized ("truth") durations are drawn from per-`(job, task)`
//! substreams of `branch("online-truth")`; estimator draws come from
//! `branch("online-estimate")`, so measuring a job never perturbs its
//! execution. The estimator reuses caller-owned [`OnlineScratch`] buffers
//! and allocates nothing in steady state.

use std::sync::Arc;

use rand::Rng as _;
use rds_graph::TaskId;
use rds_platform::{Platform, ProcId};
use rds_stats::rng::SeedStream;

use crate::csr::{ensure_scratch_len, LANES};
use crate::instance::{Instance, InstanceSpec};
use crate::replan::{rank_order, replan_partial, FrozenState, ReplanError, ReplanResult};
use crate::schedule::Schedule;

/// How arrivals are admitted onto the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit every arrival (the first-come-first-served baseline).
    Fifo,
    /// Admit only arrivals whose estimated completion probability clears
    /// the configured floor.
    CompletionProbability,
}

impl AdmissionPolicy {
    /// Short label used in figures and traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::CompletionProbability => "probability",
        }
    }
}

/// Whether admitted jobs may be degraded or abandoned mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Admitted work always runs to completion (the drop-nothing
    /// baseline).
    Never,
    /// The autonomous controller sheds optional tasks and drops doomed
    /// jobs whose completion probability falls below the drop floor.
    Autonomous,
}

impl DropPolicy {
    /// Short label used in figures and traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DropPolicy::Never => "never",
            DropPolicy::Autonomous => "autonomous",
        }
    }
}

/// Knobs of the online controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Monte-Carlo samples per completion-probability estimate.
    pub samples: usize,
    /// Master seed; estimator and truth streams branch from it.
    pub seed: u64,
    /// Admission rule for new arrivals.
    pub admission: AdmissionPolicy,
    /// Degradation rule for admitted-but-unstarted jobs.
    pub drop_policy: DropPolicy,
    /// Minimum completion probability an arrival must reach to be
    /// admitted (only consulted by
    /// [`AdmissionPolicy::CompletionProbability`]).
    pub admission_floor: f64,
    /// Probability below which an admitted, unstarted job is degraded
    /// (shed, then dropped) by [`DropPolicy::Autonomous`].
    pub drop_floor: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            samples: 64,
            seed: 0,
            admission: AdmissionPolicy::CompletionProbability,
            drop_policy: DropPolicy::Autonomous,
            admission_floor: 0.5,
            drop_floor: 0.25,
        }
    }
}

impl OnlineConfig {
    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Monte-Carlo sample count.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the admission policy.
    #[must_use]
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Sets the drop policy.
    #[must_use]
    pub fn drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Sets admission and drop probability floors.
    #[must_use]
    pub fn floors(mut self, admission: f64, drop: f64) -> Self {
        self.admission_floor = admission;
        self.drop_floor = drop;
        self
    }
}

/// One job of an online stream.
#[derive(Debug, Clone)]
pub struct OnlineJob {
    /// Stable job identity: seeds the job's truth and estimator
    /// substreams, so the same id replays the same realization whether
    /// the job runs alone or inside a stream.
    pub id: usize,
    /// Absolute arrival time.
    pub arrival: f64,
    /// Absolute completion deadline.
    pub deadline: f64,
    /// The job's DAG + timing; its platform must match the stream's
    /// shared platform shape.
    pub instance: Arc<Instance>,
}

/// Deterministic generator for an online workload: `jobs` random DAG jobs
/// sharing one platform, arrivals spaced so the offered load is
/// `oversubscription` times the sequential drain rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStreamSpec {
    /// Number of jobs in the stream.
    pub jobs: usize,
    /// Tasks per job DAG.
    pub tasks: usize,
    /// Processors of the shared platform.
    pub procs: usize,
    /// Uncertainty level of every job's timing model.
    pub uncertainty_level: f64,
    /// Offered-load factor: mean inter-arrival time is
    /// `mean(M0) / oversubscription`, where `M0` is a job's isolated
    /// planned makespan. Values above 1 oversubscribe the platform.
    pub oversubscription: f64,
    /// Per-job deadline as a multiple of its isolated planned makespan:
    /// `deadline = arrival + deadline_factor · M0`.
    pub deadline_factor: f64,
    /// Fraction of each DAG (rear of the topological order, with
    /// successor closure) marked `optional` — the shedding candidates of
    /// the drop ladder.
    pub optional_fraction: f64,
    /// Master generation seed (instances, arrivals).
    pub seed: u64,
}

impl OnlineStreamSpec {
    /// A spec with study defaults (UL 4, 1.5× oversubscription, deadline
    /// factor 2, a quarter of each DAG optional).
    #[must_use]
    pub fn new(jobs: usize, tasks: usize, procs: usize) -> Self {
        Self {
            jobs,
            tasks,
            procs,
            uncertainty_level: 4.0,
            oversubscription: 1.5,
            deadline_factor: 2.0,
            optional_fraction: 0.25,
            seed: 0,
        }
    }

    /// Sets the generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the uncertainty level.
    #[must_use]
    pub fn uncertainty_level(mut self, ul: f64) -> Self {
        self.uncertainty_level = ul;
        self
    }

    /// Sets the offered-load factor.
    #[must_use]
    pub fn oversubscription(mut self, factor: f64) -> Self {
        self.oversubscription = factor;
        self
    }

    /// Sets the deadline factor.
    #[must_use]
    pub fn deadline_factor(mut self, factor: f64) -> Self {
        self.deadline_factor = factor;
        self
    }

    /// Sets the optional-task fraction.
    #[must_use]
    pub fn optional_fraction(mut self, fraction: f64) -> Self {
        self.optional_fraction = fraction;
        self
    }

    /// Generates the stream: instances (with rear tasks marked optional),
    /// a shared platform, seeded arrival times and deadlines.
    ///
    /// # Errors
    /// Returns a message when the spec is degenerate (zero jobs,
    /// non-positive oversubscription or deadline factor) or instance
    /// generation fails.
    pub fn generate(&self) -> Result<Vec<OnlineJob>, String> {
        if self.jobs == 0 {
            return Err("stream needs at least one job".into());
        }
        if !(self.oversubscription > 0.0) || !self.oversubscription.is_finite() {
            return Err("oversubscription must be positive and finite".into());
        }
        if !(self.deadline_factor > 0.0) || !self.deadline_factor.is_finite() {
            return Err("deadline factor must be positive and finite".into());
        }
        if !(0.0..=1.0).contains(&self.optional_fraction) {
            return Err("optional fraction must lie in [0, 1]".into());
        }
        let root = SeedStream::new(self.seed);
        let inst_seeds = root.branch("online-instances");
        let mut shared: Option<Platform> = None;
        let mut instances: Vec<Instance> = Vec::with_capacity(self.jobs);
        let mut isolated: Vec<f64> = Vec::with_capacity(self.jobs);
        for j in 0..self.jobs {
            let built = InstanceSpec::new(self.tasks, self.procs)
                .seed(inst_seeds.nth_seed(j as u64))
                .uncertainty_level(self.uncertainty_level)
                .build()?;
            // Every job keeps its own DAG and timing but runs on the
            // platform of the first job: one shared machine room.
            let mut inst = match &shared {
                None => {
                    shared = Some(built.platform.clone());
                    built
                }
                Some(p) => Instance::new(built.graph, p.clone(), built.timing)?,
            };
            mark_rear_optional(&mut inst, self.optional_fraction);
            let plan = plan_isolated(&inst, false).map_err(|e| e.to_string())?;
            isolated.push(plan.est_makespan);
            instances.push(inst);
        }
        let mean_m0 = isolated.iter().sum::<f64>() / self.jobs as f64;
        let mean_gap = mean_m0 / self.oversubscription;
        let mut arrival_stream = root.branch("online-arrivals");
        let mut rng = arrival_stream.next_rng();
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(self.jobs);
        for (j, inst) in instances.into_iter().enumerate() {
            if j > 0 {
                t += mean_gap * rng.gen_range(0.5..1.5);
            }
            out.push(OnlineJob {
                id: j,
                arrival: t,
                deadline: t + self.deadline_factor * isolated[j],
                instance: Arc::new(inst),
            });
        }
        Ok(out)
    }
}

/// Marks roughly `fraction` of the instance's tasks — the rear of a
/// topological order, so closures stay small — as optional.
fn mark_rear_optional(inst: &mut Instance, fraction: f64) {
    if fraction <= 0.0 {
        return;
    }
    let n = inst.graph.task_count();
    let want = ((fraction * n as f64).round() as usize).min(n);
    let Some(order) = rds_graph::topo::topological_order(&inst.graph) else {
        return;
    };
    for &t in order.iter().rev() {
        if inst.graph.optional_tasks().len() >= want {
            break;
        }
        inst.graph.mark_optional(t);
    }
}

/// A controller decision, stamped with the stream time it was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineEvent {
    /// Absolute time of the decision (the triggering arrival).
    pub at: f64,
    /// The job the decision concerns.
    pub job: usize,
    /// What was decided.
    pub kind: OnlineEventKind,
}

/// The decision taken by the online controller.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineEventKind {
    /// The arrival was admitted with the given completion probability.
    Admitted {
        /// Estimated completion probability at admission.
        probability: f64,
    },
    /// The arrival was refused by probability-based admission.
    Rejected {
        /// Estimated completion probability at rejection.
        probability: f64,
    },
    /// Optional tasks were shed from an admitted job (drop-ladder step 1).
    Shed {
        /// Number of tasks shed.
        tasks: usize,
        /// Completion probability before shedding.
        before: f64,
        /// Completion probability of the surviving required subgraph.
        after: f64,
    },
    /// An admitted job was abandoned entirely (drop-ladder step 2).
    Dropped {
        /// Completion probability that condemned the job.
        probability: f64,
    },
}

impl OnlineEventKind {
    /// Short label used in traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            OnlineEventKind::Admitted { .. } => "admit",
            OnlineEventKind::Rejected { .. } => "reject",
            OnlineEventKind::Shed { .. } => "shed",
            OnlineEventKind::Dropped { .. } => "drop",
        }
    }
}

/// Terminal fate of one job of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobVerdict {
    /// Refused at admission; never ran.
    Rejected,
    /// Admitted, then abandoned by the drop ladder; never produced spans.
    Dropped,
    /// Ran to completion by its deadline.
    Hit,
    /// Ran to completion after its deadline.
    Miss,
}

impl JobVerdict {
    /// Envelope / figure tag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobVerdict::Rejected => "rejected",
            JobVerdict::Dropped => "dropped",
            JobVerdict::Hit => "hit",
            JobVerdict::Miss => "miss",
        }
    }
}

/// Per-job outcome of an online run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's id.
    pub job: usize,
    /// Its arrival time.
    pub arrival: f64,
    /// Its absolute deadline.
    pub deadline: f64,
    /// Terminal fate.
    pub verdict: JobVerdict,
    /// Completion probability estimated when the admission decision was
    /// taken.
    pub admission_probability: f64,
    /// Final per-task placement (tentative for rejected jobs).
    pub placement: Vec<ProcId>,
    /// Realized start times *relative to the job's arrival*; `NaN` for
    /// tasks that never ran (rejected/dropped jobs, shed tasks).
    pub start: Vec<f64>,
    /// Realized finish times, same frame and `NaN` convention.
    pub finish: Vec<f64>,
    /// Optional tasks removed by the drop ladder.
    pub shed_tasks: Vec<TaskId>,
}

/// Aggregate result of an online run.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Per-job outcomes in arrival order.
    pub outcomes: Vec<JobOutcome>,
    /// Controller decisions in the order they were taken.
    pub events: Vec<OnlineEvent>,
    /// Jobs that arrived.
    pub arrived: usize,
    /// Jobs admitted.
    pub admitted: usize,
    /// Jobs refused at admission.
    pub rejected: usize,
    /// Admitted jobs abandoned by the drop ladder.
    pub dropped: usize,
    /// Jobs that lost optional tasks to the drop ladder.
    pub shed_jobs: usize,
    /// Total optional tasks shed.
    pub shed_tasks: usize,
    /// Jobs that completed by their deadline.
    pub hits: usize,
    /// Jobs that completed after their deadline.
    pub misses: usize,
    /// `hits / arrived` — the study's headline metric: rejected and
    /// dropped jobs count against it, so refusing work is only worth it
    /// when it saves more deadlines than it forfeits.
    pub deadline_hit_rate: f64,
    /// Task weight delivered by deadline-hitting jobs (shed tasks
    /// excluded).
    pub goodput: f64,
    /// Task weight of everything that arrived.
    pub offered_weight: f64,
    /// Absolute time the last executed task finished.
    pub horizon: f64,
}

/// Ways an online run can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// A job's platform shape disagrees with the stream's.
    ProcMismatch {
        /// The offending job id.
        job: usize,
    },
    /// Jobs are not sorted by arrival time.
    Unsorted {
        /// The out-of-order job id.
        job: usize,
    },
    /// A controller knob is degenerate.
    BadConfig(String),
    /// The incremental planner failed.
    Replan(ReplanError),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::ProcMismatch { job } => {
                write!(f, "job {job} disagrees with the shared platform shape")
            }
            OnlineError::Unsorted { job } => write!(f, "job {job} arrives before its predecessor"),
            OnlineError::BadConfig(m) => write!(f, "bad online config: {m}"),
            OnlineError::Replan(e) => write!(f, "replan failed: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<ReplanError> for OnlineError {
    fn from(e: ReplanError) -> Self {
        OnlineError::Replan(e)
    }
}

/// Reusable buffers for the completion-probability estimator: after the
/// first call with a given shape, estimates allocate nothing.
#[derive(Debug, Default)]
pub struct OnlineScratch {
    finish: Vec<f64>,
    proc_free: Vec<f64>,
    dur_soa: Vec<f64>,
    finish_soa: Vec<f64>,
    proc_free_soa: Vec<f64>,
}

impl OnlineScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One execution of a planned job in its local frame: tasks run in
/// priority order, FIFO per processor, released at per-processor `floors`
/// (backlog carried over from other tenants) and data arrivals from
/// predecessors. Returns the local completion time (0 when the plan
/// placed nothing). `finish` is left holding per-task local finish times
/// (`NaN` for tasks the plan did not place).
fn forward_pass<F: FnMut(usize, ProcId) -> f64>(
    inst: &Instance,
    order: &[TaskId],
    plan: &ReplanResult,
    floors: &[f64],
    mut duration: F,
    finish: &mut Vec<f64>,
    proc_free: &mut Vec<f64>,
) -> f64 {
    let n = inst.task_count();
    finish.clear();
    finish.resize(n, f64::NAN);
    proc_free.clear();
    proc_free.extend_from_slice(floors);
    let mut completion = 0.0f64;
    for &t in order {
        let ti = t.index();
        if plan.est_start[ti].is_nan() {
            continue; // not placed by this plan (shed or skipped)
        }
        let p = plan.placement[ti];
        let mut ready = proc_free[p.index()];
        for e in inst.graph.predecessors(t) {
            let qf = finish[e.task.index()];
            if qf.is_nan() {
                continue; // shed predecessor constrains nothing
            }
            let arrive = qf
                + inst
                    .platform
                    .comm_time(e.data, plan.placement[e.task.index()], p);
            if arrive > ready {
                ready = arrive;
            }
        }
        let f = ready + duration(ti, p);
        finish[ti] = f;
        proc_free[p.index()] = f;
        if f > completion {
            completion = f;
        }
    }
    completion
}

/// SoA companion to [`forward_pass`]: walks the plan once and advances
/// [`LANES`] independent duration realizations in lock-step
/// (`dur_soa[LANES * task + lane]`). Placement, the visit order and the
/// skip/NaN structure are lane-uniform — only durations differ — so the
/// lane-0 NaN test reproduces the scalar "unvisited or shed predecessor"
/// skip exactly, and each lane computes bit-for-bit what a scalar pass
/// over that lane's durations would.
fn forward_pass_batch(
    inst: &Instance,
    order: &[TaskId],
    plan: &ReplanResult,
    floors: &[f64],
    dur_soa: &[f64],
    finish_soa: &mut [f64],
    proc_free_soa: &mut [f64],
    out: &mut [f64; LANES],
) {
    for f in finish_soa.iter_mut() {
        *f = f64::NAN;
    }
    for (pi, &floor) in floors.iter().enumerate() {
        for l in 0..LANES {
            proc_free_soa[LANES * pi + l] = floor;
        }
    }
    *out = [0.0; LANES];
    for &t in order {
        let ti = t.index();
        if plan.est_start[ti].is_nan() {
            continue; // not placed by this plan (shed or skipped)
        }
        let p = plan.placement[ti];
        let pb = LANES * p.index();
        let mut ready = [0.0f64; LANES];
        ready.copy_from_slice(&proc_free_soa[pb..pb + LANES]);
        for e in inst.graph.predecessors(t) {
            let qb = LANES * e.task.index();
            if finish_soa[qb].is_nan() {
                continue; // shed predecessor constrains nothing
            }
            let comm = inst
                .platform
                .comm_time(e.data, plan.placement[e.task.index()], p);
            for l in 0..LANES {
                let arrive = finish_soa[qb + l] + comm;
                if arrive > ready[l] {
                    ready[l] = arrive;
                }
            }
        }
        let tb = LANES * ti;
        for l in 0..LANES {
            let f = ready[l] + dur_soa[tb + l];
            finish_soa[tb + l] = f;
            proc_free_soa[pb + l] = f;
            if f > out[l] {
                out[l] = f;
            }
        }
    }
}

/// Estimates the probability that `plan` completes within `rel_deadline`
/// (time units after the job's arrival), given per-processor release
/// floors carrying the other tenants' backlog.
///
/// The estimate is Monte-Carlo with common random numbers: sample `k` of
/// task `t` always draws from substream `(estimate_seed, k, t)`, so the
/// estimate is a *monotone non-increasing* function of the floors —
/// added load can only delay each sampled realization. Buffers come from
/// the caller's [`OnlineScratch`]; steady-state calls allocate nothing.
#[must_use]
#[allow(clippy::too_many_arguments)] // the estimator's full context, mirrors the recovery kernels
pub fn completion_probability(
    inst: &Instance,
    order: &[TaskId],
    plan: &ReplanResult,
    floors: &[f64],
    rel_deadline: f64,
    samples: usize,
    estimate_seed: u64,
    scratch: &mut OnlineScratch,
) -> f64 {
    if samples == 0 {
        return 0.0;
    }
    let n = inst.task_count();
    ensure_scratch_len(&mut scratch.dur_soa, LANES * n);
    ensure_scratch_len(&mut scratch.finish_soa, LANES * n);
    ensure_scratch_len(&mut scratch.proc_free_soa, LANES * inst.proc_count());
    let stream = SeedStream::new(estimate_seed);
    let mut hits = 0usize;
    let mut out = [0.0f64; LANES];
    for c in 0..samples.div_ceil(LANES) {
        let live = LANES.min(samples - c * LANES);
        // Each (sample, task) duration comes from its own substream, so
        // filling lanes task-major is draw-for-draw identical to the
        // scalar sample-major loop.
        for l in 0..live {
            let sample = SeedStream::new(stream.nth_seed((c * LANES + l) as u64));
            for &t in order {
                let ti = t.index();
                if plan.est_start[ti].is_nan() {
                    continue;
                }
                let mut rng = sample.nth_rng(ti as u64);
                scratch.dur_soa[LANES * ti + l] =
                    inst.timing.sample(ti, plan.placement[ti], &mut rng);
            }
        }
        forward_pass_batch(
            inst,
            order,
            plan,
            floors,
            &scratch.dur_soa,
            &mut scratch.finish_soa,
            &mut scratch.proc_free_soa,
            &mut out,
        );
        for &completion in &out[..live] {
            if completion <= rel_deadline {
                hits += 1;
            }
        }
    }
    hits as f64 / samples as f64
}

/// Executes `plan` once under truth durations drawn from `truth_seed`
/// (per-task substreams, disjoint from the estimator's by seed
/// derivation), returning the realized local completion time. This is
/// the service-side deadline verdict: the estimator guesses, this
/// function decides.
#[must_use]
pub fn realized_completion(
    inst: &Instance,
    order: &[TaskId],
    plan: &ReplanResult,
    floors: &[f64],
    truth_seed: u64,
    scratch: &mut OnlineScratch,
) -> f64 {
    let stream = SeedStream::new(truth_seed);
    forward_pass(
        inst,
        order,
        plan,
        floors,
        |t, p| {
            let mut rng = stream.nth_rng(t as u64);
            inst.timing.sample(t, p, &mut rng)
        },
        &mut scratch.finish,
        &mut scratch.proc_free,
    )
}

/// Plans `inst` on an idle platform with the shared replanner —
/// the one-shot reference the undersubscribed online path must reproduce
/// bit-for-bit. With `shed_optional`, optional tasks are left out.
///
/// # Errors
/// Propagates [`ReplanError`] from the replanner.
pub fn plan_isolated(inst: &Instance, shed_optional: bool) -> Result<ReplanResult, ReplanError> {
    let order = rank_order(inst);
    let mut state = FrozenState::fresh(inst.task_count(), inst.proc_count());
    if shed_optional {
        for t in inst.graph.optional_tasks() {
            state.skip[t.index()] = true;
        }
    }
    replan_partial(inst, &order, &state)
}

/// Plans the unskipped tasks of `inst` with per-processor release floors.
fn plan_with_floors(
    inst: &Instance,
    order: &[TaskId],
    floors: &[f64],
    skip: &[TaskId],
) -> Result<ReplanResult, ReplanError> {
    let mut state = FrozenState::fresh(inst.task_count(), inst.proc_count());
    state.free_at.clear();
    state.free_at.extend_from_slice(floors);
    for &t in skip {
        state.skip[t.index()] = true;
    }
    replan_partial(inst, order, &state)
}

/// A full schedule in which optional tasks are *deferred*: the required
/// subgraph is planned first and optional tasks are appended strictly
/// after each processor's required tail, so shedding them at run time
/// cannot perturb the deadline-critical work. This is the service-side
/// "degraded-by-drop" shape — a valid whole-graph [`Schedule`] whose
/// deadline verdict is judged on the required portion alone.
#[derive(Debug, Clone)]
pub struct DeferredPlan {
    /// The combined schedule (required tasks first on every processor).
    pub schedule: Schedule,
    /// Planned makespan of the required subgraph.
    pub required_makespan: f64,
    /// Planned makespan including the deferred optional tail.
    pub full_makespan: f64,
    /// The deferred (optional) tasks.
    pub deferred: Vec<TaskId>,
}

/// Builds a [`DeferredPlan`] for `inst`.
///
/// # Errors
/// Returns a message when planning or schedule assembly fails (both
/// indicate a malformed instance).
pub fn plan_with_deferred_optional(inst: &Instance) -> Result<DeferredPlan, String> {
    let n = inst.task_count();
    let m = inst.proc_count();
    let order = rank_order(inst);
    let optional = inst.graph.optional_tasks();
    if optional.is_empty() {
        let plan = plan_isolated(inst, false).map_err(|e| e.to_string())?;
        let schedule =
            Schedule::from_proc_lists(n, plan.proc_tasks.clone()).map_err(|e| e.to_string())?;
        return Ok(DeferredPlan {
            schedule,
            required_makespan: plan.est_makespan,
            full_makespan: plan.est_makespan,
            deferred: optional,
        });
    }
    let required = plan_isolated(inst, true).map_err(|e| e.to_string())?;
    let mut state = FrozenState::fresh(n, m);
    for t in inst.graph.tasks() {
        let ti = t.index();
        if !inst.graph.is_optional(t) {
            state.finished[ti] = Some((required.placement[ti], required.est_finish[ti]));
        }
    }
    for (p, tail) in state.free_at.iter_mut().enumerate() {
        *tail = required.proc_tasks[p]
            .iter()
            .map(|t| required.est_finish[t.index()])
            .fold(0.0f64, f64::max);
    }
    let full = replan_partial(inst, &order, &state).map_err(|e| e.to_string())?;
    let combined: Vec<Vec<TaskId>> = required
        .proc_tasks
        .iter()
        .zip(&full.proc_tasks)
        .map(|(head, tail)| head.iter().chain(tail).copied().collect())
        .collect();
    let schedule = Schedule::from_proc_lists(n, combined).map_err(|e| e.to_string())?;
    Ok(DeferredPlan {
        schedule,
        required_makespan: required.est_makespan,
        full_makespan: full.est_makespan,
        deferred: optional,
    })
}

/// An admitted job and its committed plan.
struct Committed {
    /// Index into the caller's job slice.
    idx: usize,
    order: Vec<TaskId>,
    plan: ReplanResult,
    shed: Vec<TaskId>,
    dropped: bool,
    admission_probability: f64,
}

/// Realized spans of the committed stream under truth durations.
struct Realization {
    /// Per committed job: local start times (`NaN` where not executed).
    start: Vec<Vec<f64>>,
    /// Per committed job: local finish times.
    finish: Vec<Vec<f64>>,
    /// Per committed job: earliest absolute start (`+inf` when nothing
    /// ran).
    first_start_abs: Vec<f64>,
}

/// Truth duration closure for one job: per-`(job id, task)` substreams,
/// so a job's realization is identical whether it runs alone or streamed.
fn truth_durations<'a>(
    inst: &'a Instance,
    truth_root: &SeedStream,
    job_id: usize,
) -> impl FnMut(usize, ProcId) -> f64 + 'a {
    let job_stream = SeedStream::new(truth_root.nth_seed(job_id as u64));
    move |t, p| {
        let mut rng = job_stream.nth_rng(t as u64);
        inst.timing.sample(t, p, &mut rng)
    }
}

/// Replays the committed stream in commit order with truth durations.
fn realize(jobs: &[OnlineJob], committed: &[Committed], truth_root: &SeedStream) -> Realization {
    let m = jobs.first().map_or(0, |j| j.instance.proc_count());
    let mut proc_busy = vec![0.0f64; m];
    let mut start = Vec::with_capacity(committed.len());
    let mut finish = Vec::with_capacity(committed.len());
    let mut first_start_abs = Vec::with_capacity(committed.len());
    let mut proc_free: Vec<f64> = Vec::new();
    for c in committed {
        let job = &jobs[c.idx];
        let n = job.instance.task_count();
        if c.dropped {
            start.push(vec![f64::NAN; n]);
            finish.push(vec![f64::NAN; n]);
            first_start_abs.push(f64::INFINITY);
            continue;
        }
        let floors: Vec<f64> = proc_busy
            .iter()
            .map(|&b| (b - job.arrival).max(0.0))
            .collect();
        let mut fin = Vec::new();
        forward_pass(
            &job.instance,
            &c.order,
            &c.plan,
            &floors,
            truth_durations(&job.instance, truth_root, job.id),
            &mut fin,
            &mut proc_free,
        );
        // Recover start times from finishes and the same duration stream.
        let mut dur = truth_durations(&job.instance, truth_root, job.id);
        let mut st = vec![f64::NAN; n];
        let mut first = f64::INFINITY;
        for t in job.instance.graph.tasks() {
            let ti = t.index();
            if !fin[ti].is_nan() {
                st[ti] = fin[ti] - dur(ti, c.plan.placement[ti]);
                let abs = job.arrival + st[ti];
                if abs < first {
                    first = abs;
                }
            }
        }
        for (p, &free) in proc_free.iter().enumerate() {
            if free > floors[p] {
                proc_busy[p] = proc_busy[p].max(job.arrival + free);
            }
        }
        start.push(st);
        finish.push(fin);
        first_start_abs.push(first);
    }
    Realization {
        start,
        finish,
        first_start_abs,
    }
}

/// Runs the online controller over a stream of jobs (sorted by arrival)
/// sharing one platform shape.
///
/// At each arrival the controller (1) re-estimates every admitted,
/// not-yet-started job against the live backlog and applies the drop
/// ladder, then (2) plans the arrival on the remaining backlog and
/// admits or rejects it. Execution is FIFO per processor in commitment
/// order; realized durations come from the truth stream.
///
/// # Errors
/// Returns [`OnlineError`] on shape mismatches, unsorted arrivals,
/// degenerate knobs, or planner failures.
pub fn run_online(jobs: &[OnlineJob], cfg: &OnlineConfig) -> Result<OnlineReport, OnlineError> {
    if cfg.samples == 0 {
        return Err(OnlineError::BadConfig("samples must be positive".into()));
    }
    for (label, v) in [
        ("admission floor", cfg.admission_floor),
        ("drop floor", cfg.drop_floor),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(OnlineError::BadConfig(format!(
                "{label} must lie in [0, 1], got {v}"
            )));
        }
    }
    let Some(first) = jobs.first() else {
        return Ok(empty_report());
    };
    let m = first.instance.proc_count();
    for (i, job) in jobs.iter().enumerate() {
        if job.instance.proc_count() != m {
            return Err(OnlineError::ProcMismatch { job: job.id });
        }
        if i > 0 && job.arrival < jobs[i - 1].arrival {
            return Err(OnlineError::Unsorted { job: job.id });
        }
    }

    let root = SeedStream::new(cfg.seed);
    let est_root = root.branch("online-estimate");
    let truth_root = root.branch("online-truth");
    let mut committed: Vec<Committed> = Vec::new();
    let mut events: Vec<OnlineEvent> = Vec::new();
    let mut rejected: Vec<Option<(f64, ReplanResult)>> = (0..jobs.len()).map(|_| None).collect();
    let mut scratch = OnlineScratch::new();
    let mut est_finish = Vec::new();
    let mut est_free = Vec::new();

    for (ji, job) in jobs.iter().enumerate() {
        let tau = job.arrival;
        let real = realize(jobs, &committed, &truth_root);

        // Controller view of per-processor backlog (absolute time):
        // realized finishes where observed (≤ now), expected durations
        // for everything still pending — the live slack accounts.
        let mut proc_est = vec![0.0f64; m];
        for ci in 0..committed.len() {
            if committed[ci].dropped {
                continue;
            }
            let cjob = &jobs[committed[ci].idx];
            let arrival_i = cjob.arrival;
            let floors: Vec<f64> = proc_est.iter().map(|&b| (b - arrival_i).max(0.0)).collect();
            let started = real.first_start_abs[ci] <= tau;
            if cfg.drop_policy == DropPolicy::Autonomous && !started {
                let rel_deadline = cjob.deadline - arrival_i;
                let est_seed = est_root.nth_seed(cjob.id as u64);
                let p = completion_probability(
                    &cjob.instance,
                    &committed[ci].order,
                    &committed[ci].plan,
                    &floors,
                    rel_deadline,
                    cfg.samples,
                    est_seed,
                    &mut scratch,
                );
                if p < cfg.drop_floor {
                    let optional = cjob.instance.graph.optional_tasks();
                    let mut saved = false;
                    if committed[ci].shed.is_empty() && !optional.is_empty() {
                        let try_shed = plan_with_floors(
                            &cjob.instance,
                            &committed[ci].order,
                            &floors,
                            &optional,
                        );
                        if let Ok(shed_plan) = try_shed {
                            let p2 = completion_probability(
                                &cjob.instance,
                                &committed[ci].order,
                                &shed_plan,
                                &floors,
                                rel_deadline,
                                cfg.samples,
                                est_seed,
                                &mut scratch,
                            );
                            if p2 >= cfg.drop_floor {
                                events.push(OnlineEvent {
                                    at: tau,
                                    job: cjob.id,
                                    kind: OnlineEventKind::Shed {
                                        tasks: optional.len(),
                                        before: p,
                                        after: p2,
                                    },
                                });
                                committed[ci].plan = shed_plan;
                                committed[ci].shed = optional;
                                saved = true;
                            }
                        }
                    }
                    if !saved {
                        committed[ci].dropped = true;
                        events.push(OnlineEvent {
                            at: tau,
                            job: cjob.id,
                            kind: OnlineEventKind::Dropped { probability: p },
                        });
                        continue;
                    }
                }
            }
            // Fold this job's estimated backlog into the live accounts.
            forward_pass(
                &cjob.instance,
                &committed[ci].order,
                &committed[ci].plan,
                &floors,
                |t, p| {
                    let observed = real.finish[ci].get(t).copied().unwrap_or(f64::NAN);
                    if !observed.is_nan() && arrival_i + observed <= tau {
                        let mut dur = truth_durations(&cjob.instance, &truth_root, cjob.id);
                        dur(t, p)
                    } else {
                        cjob.instance.timing.expected(t, p)
                    }
                },
                &mut est_finish,
                &mut est_free,
            );
            for (p, &free) in est_free.iter().enumerate() {
                if free > floors[p] {
                    proc_est[p] = proc_est[p].max(arrival_i + free);
                }
            }
        }

        // Admission of the new arrival.
        let order = rank_order(&job.instance);
        let floors: Vec<f64> = proc_est.iter().map(|&b| (b - tau).max(0.0)).collect();
        let plan = plan_with_floors(&job.instance, &order, &floors, &[])?;
        let rel_deadline = job.deadline - tau;
        let est_seed = est_root.nth_seed(job.id as u64);
        let p = completion_probability(
            &job.instance,
            &order,
            &plan,
            &floors,
            rel_deadline,
            cfg.samples,
            est_seed,
            &mut scratch,
        );
        let mut admit_plan = plan;
        let mut admit_shed: Vec<TaskId> = Vec::new();
        let mut admit_p = p;
        let mut admitted = true;
        if cfg.admission == AdmissionPolicy::CompletionProbability && p < cfg.admission_floor {
            let optional = job.instance.graph.optional_tasks();
            let mut saved = false;
            if cfg.drop_policy == DropPolicy::Autonomous && !optional.is_empty() {
                if let Ok(shed_plan) = plan_with_floors(&job.instance, &order, &floors, &optional) {
                    let p2 = completion_probability(
                        &job.instance,
                        &order,
                        &shed_plan,
                        &floors,
                        rel_deadline,
                        cfg.samples,
                        est_seed,
                        &mut scratch,
                    );
                    if p2 >= cfg.admission_floor {
                        events.push(OnlineEvent {
                            at: tau,
                            job: job.id,
                            kind: OnlineEventKind::Shed {
                                tasks: optional.len(),
                                before: p,
                                after: p2,
                            },
                        });
                        admit_plan = shed_plan;
                        admit_shed = optional;
                        admit_p = p2;
                        saved = true;
                    }
                }
            }
            admitted = saved;
        }
        if admitted {
            events.push(OnlineEvent {
                at: tau,
                job: job.id,
                kind: OnlineEventKind::Admitted {
                    probability: admit_p,
                },
            });
            committed.push(Committed {
                idx: ji,
                order,
                plan: admit_plan,
                shed: admit_shed,
                dropped: false,
                admission_probability: admit_p,
            });
        } else {
            events.push(OnlineEvent {
                at: tau,
                job: job.id,
                kind: OnlineEventKind::Rejected { probability: p },
            });
            rejected[ji] = Some((p, admit_plan));
        }
    }

    // Final realization and report assembly.
    let real = realize(jobs, &committed, &truth_root);
    let mut committed_of: Vec<Option<usize>> = vec![None; jobs.len()];
    for (ci, c) in committed.iter().enumerate() {
        committed_of[c.idx] = Some(ci);
    }
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut report = empty_report();
    report.arrived = jobs.len();
    for (ji, job) in jobs.iter().enumerate() {
        let n = job.instance.task_count();
        report.offered_weight += job.instance.graph.total_weight();
        let outcome = match committed_of[ji] {
            None => {
                let (p, plan) = rejected[ji].take().unwrap_or_else(|| {
                    (
                        0.0,
                        ReplanResult {
                            proc_tasks: vec![Vec::new(); m],
                            est_start: vec![f64::NAN; n],
                            est_finish: vec![f64::NAN; n],
                            placement: vec![ProcId(0); n],
                            replanned: 0,
                            est_makespan: 0.0,
                        },
                    )
                });
                report.rejected += 1;
                JobOutcome {
                    job: job.id,
                    arrival: job.arrival,
                    deadline: job.deadline,
                    verdict: JobVerdict::Rejected,
                    admission_probability: p,
                    placement: plan.placement,
                    start: vec![f64::NAN; n],
                    finish: vec![f64::NAN; n],
                    shed_tasks: Vec::new(),
                }
            }
            Some(ci) => {
                let c = &committed[ci];
                report.admitted += 1;
                if !c.shed.is_empty() {
                    report.shed_jobs += 1;
                    report.shed_tasks += c.shed.len();
                }
                if c.dropped {
                    report.dropped += 1;
                    JobOutcome {
                        job: job.id,
                        arrival: job.arrival,
                        deadline: job.deadline,
                        verdict: JobVerdict::Dropped,
                        admission_probability: c.admission_probability,
                        placement: c.plan.placement.clone(),
                        start: vec![f64::NAN; n],
                        finish: vec![f64::NAN; n],
                        shed_tasks: c.shed.clone(),
                    }
                } else {
                    let completion = real.finish[ci]
                        .iter()
                        .copied()
                        .filter(|f| !f.is_nan())
                        .fold(0.0f64, f64::max);
                    let hit = job.arrival + completion <= job.deadline;
                    if hit {
                        report.hits += 1;
                        let executed_weight: f64 = job
                            .instance
                            .graph
                            .tasks()
                            .filter(|&t| !real.finish[ci][t.index()].is_nan())
                            .map(|t| job.instance.graph.weight_of(t))
                            .sum();
                        report.goodput += executed_weight;
                    } else {
                        report.misses += 1;
                    }
                    report.horizon = report.horizon.max(job.arrival + completion);
                    JobOutcome {
                        job: job.id,
                        arrival: job.arrival,
                        deadline: job.deadline,
                        verdict: if hit {
                            JobVerdict::Hit
                        } else {
                            JobVerdict::Miss
                        },
                        admission_probability: c.admission_probability,
                        placement: c.plan.placement.clone(),
                        start: real.start[ci].clone(),
                        finish: real.finish[ci].clone(),
                        shed_tasks: c.shed.clone(),
                    }
                }
            }
        };
        outcomes.push(outcome);
    }
    report.deadline_hit_rate = if report.arrived == 0 {
        0.0
    } else {
        report.hits as f64 / report.arrived as f64
    };
    report.outcomes = outcomes;
    report.events = events;
    Ok(report)
}

fn empty_report() -> OnlineReport {
    OnlineReport {
        outcomes: Vec::new(),
        events: Vec::new(),
        arrived: 0,
        admitted: 0,
        rejected: 0,
        dropped: 0,
        shed_jobs: 0,
        shed_tasks: 0,
        hits: 0,
        misses: 0,
        deadline_hit_rate: 0.0,
        goodput: 0.0,
        offered_weight: 0.0,
        horizon: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(os: f64, jobs: usize, seed: u64) -> Vec<OnlineJob> {
        OnlineStreamSpec::new(jobs, 18, 3)
            .seed(seed)
            .oversubscription(os)
            .generate()
            .expect("stream generates")
    }

    #[test]
    fn stream_generation_is_deterministic_and_shares_the_platform() {
        let a = stream(1.5, 6, 9);
        let b = stream(1.5, 6, 9);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!(x.deadline.to_bits(), y.deadline.to_bits());
            assert!(x.deadline > x.arrival);
        }
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "arrivals sorted");
        }
        for j in &a {
            assert_eq!(j.instance.platform, a[0].instance.platform);
            assert!(!j.instance.graph.optional_tasks().is_empty());
        }
    }

    #[test]
    fn probability_is_bounded_and_saturates_at_extreme_deadlines() {
        let jobs = stream(1.0, 1, 3);
        let inst = &jobs[0].instance;
        let order = rank_order(inst);
        let plan = plan_isolated(inst, false).unwrap();
        let floors = vec![0.0; inst.proc_count()];
        let mut scratch = OnlineScratch::new();
        let generous =
            completion_probability(inst, &order, &plan, &floors, 1e12, 64, 7, &mut scratch);
        let impossible =
            completion_probability(inst, &order, &plan, &floors, 0.0, 64, 7, &mut scratch);
        assert_eq!(generous, 1.0);
        assert_eq!(impossible, 0.0);
    }

    #[test]
    fn probability_is_monotone_in_backlog() {
        let jobs = stream(1.0, 1, 5);
        let inst = &jobs[0].instance;
        let order = rank_order(inst);
        let plan = plan_isolated(inst, false).unwrap();
        let mut scratch = OnlineScratch::new();
        // Deadline in the distribution's bulk so the estimate can move.
        let rel = plan.est_makespan * 1.1;
        let mut last = f64::INFINITY;
        for load in [0.0, 0.2, 0.5, 1.0, 3.0] {
            let floors = vec![plan.est_makespan * load; inst.proc_count()];
            let p = completion_probability(inst, &order, &plan, &floors, rel, 48, 11, &mut scratch);
            assert!(p <= last, "probability rose with load: {p} > {last}");
            last = p;
        }
    }

    #[test]
    fn undersubscribed_stream_admits_everything_without_degradation() {
        let jobs = stream(0.1, 5, 21);
        let report = run_online(&jobs, &OnlineConfig::default().seed(21)).unwrap();
        assert_eq!(report.arrived, 5);
        assert_eq!(report.admitted, 5);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.shed_jobs, 0);
        assert_eq!(report.hits + report.misses, 5);
    }

    #[test]
    fn oversubscribed_probability_admission_rejects_and_records_events() {
        let jobs = stream(3.0, 14, 2);
        let report = run_online(&jobs, &OnlineConfig::default().seed(2)).unwrap();
        assert!(report.rejected > 0, "3x oversubscription must reject");
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e.kind, OnlineEventKind::Rejected { .. })));
        // Rejected work never produces spans.
        for o in &report.outcomes {
            if o.verdict == JobVerdict::Rejected {
                assert!(o.start.iter().all(|s| s.is_nan()));
            }
        }
        assert!((0.0..=1.0).contains(&report.deadline_hit_rate));
    }

    #[test]
    fn fifo_never_rejects_and_drop_never_drops() {
        let jobs = stream(3.0, 10, 4);
        let fifo = OnlineConfig::default()
            .seed(4)
            .admission(AdmissionPolicy::Fifo)
            .drop_policy(DropPolicy::Never);
        let report = run_online(&jobs, &fifo).unwrap();
        assert_eq!(report.rejected, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.shed_jobs, 0);
        assert_eq!(report.admitted, 10);
    }

    #[test]
    fn runs_are_reproducible() {
        let jobs = stream(2.0, 8, 6);
        let cfg = OnlineConfig::default().seed(6);
        let a = run_online(&jobs, &cfg).unwrap();
        let b = run_online(&jobs, &cfg).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.goodput.to_bits(), b.goodput.to_bits());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.verdict, y.verdict);
            for (s, t) in x.finish.iter().zip(&y.finish) {
                assert_eq!(s.to_bits(), t.to_bits());
            }
        }
    }

    #[test]
    fn deferred_plan_keeps_required_work_unperturbed() {
        let jobs = stream(1.0, 1, 8);
        let inst = &jobs[0].instance;
        let deferred = plan_with_deferred_optional(inst).unwrap();
        assert!(deferred.schedule.validate_against(&inst.graph).is_ok());
        assert!(!deferred.deferred.is_empty());
        assert!(deferred.required_makespan <= deferred.full_makespan);
        // The required portion matches the shed-only plan exactly.
        let required = plan_isolated(inst, true).unwrap();
        assert_eq!(
            deferred.required_makespan.to_bits(),
            required.est_makespan.to_bits()
        );
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let jobs = stream(1.0, 2, 1);
        let bad = OnlineConfig::default().samples(0);
        assert!(matches!(
            run_online(&jobs, &bad),
            Err(OnlineError::BadConfig(_))
        ));
        let bad = OnlineConfig::default().floors(1.5, 0.2);
        assert!(matches!(
            run_online(&jobs, &bad),
            Err(OnlineError::BadConfig(_))
        ));
        let mut unsorted = jobs.clone();
        unsorted.swap(0, 1);
        if unsorted[0].arrival > unsorted[1].arrival {
            assert!(matches!(
                run_online(&unsorted, &OnlineConfig::default()),
                Err(OnlineError::Unsorted { .. })
            ));
        }
    }
}

//! Schedule substrate: everything §3 of the paper defines.
//!
//! * [`instance`] — a problem [`Instance`] bundling task graph, platform and
//!   timing model, plus the [`InstanceSpec`] generator wiring together the
//!   random workload generators of §5.
//! * [`schedule`] — the schedule representation `s = {s_1..s_m}` (per-
//!   processor task orders + assignment).
//! * [`disjunctive`] — the disjunctive graph `G_s = (V, E ∪ E')` of
//!   Definition 3.1, with cycle detection (a schedule incompatible with the
//!   precedence constraints yields a cyclic `G_s`).
//! * [`csr`] — the same graph flattened into compressed-sparse-row arrays
//!   with precomputed transfer times, plus the [`EvalScratch`] arena for
//!   zero-allocation repeated evaluation (the GA/Monte-Carlo hot path).
//! * [`energy`] — DVFS-aware energy and reliability scoring of schedules
//!   (the tri-objective extension): frequency-scaled durations, per-task
//!   power draw, exponential fault model, with a zero-alloc scratch twin
//!   of the CSR kernel and Monte-Carlo energy/reliability distributions.
//! * [`timing`] — start/finish times and makespan under arbitrary duration
//!   vectors: the makespan is the critical-path length of `G_s` (Claim 3.2).
//! * [`slack`] — top/bottom levels on `G_s` and the slack of Definition 3.3,
//!   `σ_i = M − Bl(i) − Tl(i)`.
//! * [`metrics`] — relative tardiness, miss rate, and the robustness
//!   measures `R1` (Def. 3.6) and `R2` (Def. 3.7).
//! * [`realization`] — the Monte Carlo engine standing in for the paper's
//!   "real resource environment": realized durations are drawn from
//!   `U(b, (2·UL−1)·b)` and aggregated into a robustness report
//!   (rayon-parallel, deterministic per seed).
//! * [`faults`] — deterministic, seed-derived fault scenarios layered on a
//!   realization: permanent processor failures, transient slowdown
//!   windows, stragglers, and transient task crashes.
//! * [`recovery`] — pluggable recovery policies (fail-stop, retry with
//!   backoff, migrate + replan) and the discrete-event executor that plays
//!   a schedule through a fault scenario, with first-finisher-wins replica
//!   execution and optional checkpoint/restart.
//! * [`replication`] — proactive robustness: slack-aware placement of task
//!   replicas into idle windows of the expected timeline, under a
//!   configurable budget and placement policy, such that the fault-free
//!   makespan `M0` is untouched.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bounds;
pub mod contention;
pub mod csr;
pub mod disjunctive;
pub mod dynamic;
pub mod energy;
pub mod faults;
pub mod gantt;
pub mod instance;
pub mod io;
pub mod metrics;
pub mod online;
pub mod realization;
pub mod recovery;
pub mod replan;
pub mod replication;
pub mod schedule;
pub mod sentinel;
pub mod slack;
pub mod timing;
pub mod trace;

pub use csr::{DisjunctiveCsr, EvalScratch};
pub use disjunctive::{DisjunctiveGraph, ReachScratch};
pub use energy::{
    full_speed_genes, realized_tri, score_assignment, score_schedule, EnergyReport, EnergyScratch,
    TriDraw, TriReport, TriSummary,
};
pub use faults::{FaultConfig, FaultKind, FaultScenario, ReplicaDraw, ReplicaDraws};
pub use instance::{Instance, InstanceSpec};
pub use metrics::{r1_from_tardiness, r2_from_miss_rate, FaultRobustnessReport, RobustnessReport};
pub use online::{
    completion_probability, plan_isolated, plan_with_deferred_optional, realized_completion,
    run_online, AdmissionPolicy, DeferredPlan, DropPolicy, JobOutcome, JobVerdict, OnlineConfig,
    OnlineError, OnlineEvent, OnlineEventKind, OnlineJob, OnlineReport, OnlineScratch,
    OnlineStreamSpec,
};
pub use realization::{
    failure_penalty, monte_carlo, monte_carlo_adaptive, monte_carlo_faulty, monte_carlo_replicated,
    sample_realized_matrix, RealizationConfig,
};
pub use recovery::{
    execute_replicated, execute_with_faults, CheckpointConfig, CopySpan, ExecutionError, FaultRun,
    Outcome, RecoveryConfig, RecoveryPolicy, RecoveryStats,
};
pub use replan::{rank_order, replan_partial, FrozenState, ReplanError, ReplanResult};
pub use replication::{plan_replicas, PlacementPolicy, ReplicaPlan, ReplicationConfig};
pub use schedule::{Schedule, ScheduleError};
pub use sentinel::{execute_adaptive, SentinelConfig};
pub use slack::{SlackAnalysis, SlackScratch, SlackSummary};
pub use timing::TimedSchedule;

//! Slack-sentinel adaptive execution.
//!
//! The paper's slack theory (Def. 3.3, Theorem 3.4 / Corollary 3.5) bounds
//! how much each task may overrun before the makespan degrades: any set of
//! pairwise-independent overruns strictly below the per-task slacks σ_i
//! leaves the realized makespan at M₀. The static layers exploit this
//! offline (the GA's robustness surrogate, `slack::analyze`); this module
//! makes it *operational at runtime*.
//!
//! [`execute_adaptive`] runs the replicated fault executor of
//! [`crate::recovery`] with a **sentinel** attached: a per-task slack
//! account seeded from the disjunctive-graph analysis (planned finish
//! `Tl(i) + w_i` and slack σ_i), settled whenever a task completes. A task
//! finishing more than `trigger_fraction · σ_i` past its planned finish
//! *fires* the sentinel, which responds with exactly one escalation step
//! per firing:
//!
//! 1. **Bounded replan** — the unstarted subgraph is re-planned over the
//!    live processors through the shared partial-graph HEFT pass in
//!    [`crate::replan`], and every slack account is recomputed from the
//!    repaired plan. A cooldown (fraction of M₀ between replans) and a
//!    `max_replans` budget guarantee overrun storms cannot thrash.
//! 2. **Speculation** — once replans are exhausted (or cooling down) and
//!    the projected makespan threatens the deadline, the pending replicas
//!    of the most critical (minimum-slack) unfinished task are *armed*.
//!    Planned replicas are otherwise held back under the sentinel, so
//!    speculation spends the replication budget only when slack is
//!    actually burning.
//! 3. **Graceful degradation** — against the ε-deadline `ε · M₀`: unarmed
//!    pending replicas are cancelled and every droppable task marked
//!    `optional` in the DAG is shed, recording a degradation level
//!    (dropped weight) instead of a deadline miss.
//!
//! **Quiet runs are bit-identical to the non-sentinel executor**: while no
//! firing occurs the sentinel only *observes* — it never touches dispatch
//! order, durations or data routing — so a run whose overruns all stay
//! below the trigger threshold produces exactly the [`FaultRun`] that
//! [`crate::recovery::execute_with_faults`] produces (this is tested
//! bit-for-bit in `tests/sentinel_invariants.rs`).

use rds_stats::matrix::Matrix;

use crate::faults::{FaultScenario, ReplicaDraws};
use crate::instance::Instance;
use crate::recovery::{execute_inner, ExecutionError, FaultRun, RecoveryConfig};
use crate::replan::ReplanResult;
use crate::replication::ReplicaPlan;
use crate::schedule::Schedule;
use crate::slack::SlackAnalysis;
use crate::timing;

/// Sentinel tuning: when to fire and how far each escalation may go.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Fraction of a task's slack account that may be consumed before the
    /// sentinel fires, in `[0, ∞)`. Lower is more nervous; `1.0` fires
    /// only on overruns that Corollary 3.5 no longer absorbs.
    pub trigger_fraction: f64,
    /// Minimum spacing between sentinel-initiated replans, as a fraction
    /// of the nominal makespan M₀ (hysteresis against thrashing).
    pub cooldown: f64,
    /// Maximum sentinel-initiated replans per run (failure-forced replans
    /// are not counted — they are mandatory, not elective).
    pub max_replans: usize,
    /// Maximum speculation armings per run.
    pub max_speculations: usize,
    /// Deadline factor: the run's deadline is `epsilon · M₀` (ε ≥ 1).
    pub epsilon: f64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            trigger_fraction: 0.3,
            cooldown: 0.05,
            max_replans: 3,
            max_speculations: 4,
            epsilon: 1.2,
        }
    }
}

impl SentinelConfig {
    /// This config with a different deadline factor.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// This config with a different trigger fraction.
    #[must_use]
    pub fn with_trigger(mut self, trigger_fraction: f64) -> Self {
        self.trigger_fraction = trigger_fraction;
        self
    }

    /// This config with a different replan budget.
    #[must_use]
    pub fn with_max_replans(mut self, max_replans: usize) -> Self {
        self.max_replans = max_replans;
        self
    }

    fn validate(&self) -> Result<(), ExecutionError> {
        let ok = self.trigger_fraction >= 0.0
            && self.trigger_fraction.is_finite()
            && self.cooldown >= 0.0
            && self.cooldown.is_finite()
            && self.epsilon >= 1.0
            && self.epsilon.is_finite();
        if ok {
            Ok(())
        } else {
            Err(ExecutionError::Internal(
                "sentinel config requires finite trigger/cooldown >= 0 and epsilon >= 1",
            ))
        }
    }
}

/// Live sentinel bookkeeping, threaded through the executor's event loop.
#[derive(Debug, Clone)]
pub(crate) struct SentinelState {
    /// Planned finish of each task under the current plan (realized values
    /// for work frozen by a repair).
    pub(crate) account_pf: Vec<f64>,
    /// Remaining slack account σ_i of each task under the current plan.
    pub(crate) account_slack: Vec<f64>,
    /// Nominal makespan M₀ of the original plan.
    pub(crate) m0: f64,
    /// The ε-deadline `epsilon · m0`.
    pub(crate) deadline: f64,
    /// Absolute floating-point guard added to the trigger threshold, so
    /// bit-level rounding of an on-time finish can never fire.
    pub(crate) eps_abs: f64,
    /// Time of the last sentinel-initiated replan (−∞ before the first).
    pub(crate) last_replan_at: f64,
    /// Sentinel-initiated replans so far.
    pub(crate) replans_used: usize,
    /// Speculation armings so far.
    pub(crate) speculations_used: usize,
    /// Tasks whose planned replicas are cleared to dispatch.
    pub(crate) armed: Vec<bool>,
    /// Whether graceful degradation has been taken (one-shot).
    pub(crate) degraded: bool,
}

impl SentinelState {
    fn new(analysis: &SlackAnalysis, expected: &[f64], cfg: &SentinelConfig) -> Self {
        let n = expected.len();
        let account_pf: Vec<f64> = (0..n)
            .map(|t| analysis.top_level[t] + expected[t])
            .collect();
        Self {
            account_pf,
            account_slack: analysis.slack.clone(),
            m0: analysis.makespan,
            deadline: cfg.epsilon * analysis.makespan,
            eps_abs: 1e-9 * analysis.makespan,
            last_replan_at: f64::NEG_INFINITY,
            replans_used: 0,
            speculations_used: 0,
            armed: vec![false; n],
            degraded: false,
        }
    }

    /// Minimum slack account over unfinished tasks (0 when none remain).
    pub(crate) fn min_unfinished_slack(&self, finished: &[bool]) -> f64 {
        let min = self
            .account_slack
            .iter()
            .zip(finished)
            .filter(|&(_, &f)| !f)
            .map(|(&s, _)| s)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Pessimistic makespan projection after an overrun of `lateness`: the
    /// latest planned finish over the unfinished subgraph, pushed out by
    /// the full observed lateness (as if no downstream slack absorbs it).
    pub(crate) fn projected(&self, lateness: f64, finished: &[bool]) -> f64 {
        let horizon = self
            .account_pf
            .iter()
            .zip(finished)
            .filter(|&(pf, &f)| !f && pf.is_finite())
            .map(|(&pf, _)| pf)
            .fold(0.0f64, f64::max);
        horizon + lateness.max(0.0)
    }

    /// Re-seeds the accounts from a repair's [`ReplanResult`]: planned
    /// finishes become the repaired estimates, and slacks are recomputed
    /// for the re-planned subgraph by a backward latest-allowed-finish
    /// pass anchored at the repaired makespan estimate (the disjunctive
    /// graph of the new partial plan: DAG edges plus per-processor
    /// successor chains).
    pub(crate) fn rebuild_accounts(&mut self, inst: &Instance, result: &ReplanResult) {
        let n = self.account_pf.len();
        for t in 0..n {
            if result.est_finish[t].is_finite() {
                self.account_pf[t] = result.est_finish[t];
            }
        }

        // Per-processor successor chains of the re-planned tasks.
        let mut proc_succ: Vec<Option<rds_graph::TaskId>> = vec![None; n];
        for list in &result.proc_tasks {
            for w in list.windows(2) {
                proc_succ[w[0].index()] = Some(w[1]);
            }
        }
        let anchor = result.est_makespan;
        // Latest allowed finish, computed in decreasing planned-start
        // order: on a processor the successor starts later, and across a
        // DAG edge the successor starts no earlier than the predecessor's
        // estimated finish, so every constraint is resolved before use.
        let mut replanned: Vec<rds_graph::TaskId> = inst
            .graph
            .tasks()
            .filter(|t| result.est_start[t.index()].is_finite())
            .collect();
        replanned.sort_by(|a, b| {
            result.est_start[b.index()]
                .total_cmp(&result.est_start[a.index()])
                .then_with(|| b.cmp(a))
        });
        let mut latest = vec![f64::NAN; n];
        for &t in &replanned {
            let ti = t.index();
            let mut l = anchor;
            for e in inst.graph.successors(t) {
                let si = e.task.index();
                if !latest[si].is_finite() {
                    continue; // finished, skipped or dropped successor
                }
                let dur = result.est_finish[si] - result.est_start[si];
                let comm =
                    inst.platform
                        .comm_time(e.data, result.placement[ti], result.placement[si]);
                l = l.min(latest[si] - dur - comm);
            }
            if let Some(s) = proc_succ[ti] {
                let si = s.index();
                if latest[si].is_finite() {
                    let dur = result.est_finish[si] - result.est_start[si];
                    l = l.min(latest[si] - dur);
                }
            }
            latest[ti] = l;
            self.account_slack[ti] = (l - result.est_finish[ti]).max(0.0);
        }
    }
}

/// Executes `plan` through `scenario` with the slack sentinel attached.
///
/// `analysis` must be the expected-duration slack analysis of `plan` on
/// `inst` (e.g. [`crate::slack::analyze_expected`]); its makespan defines
/// M₀ and the ε-deadline. `replicas`/`draws` follow the semantics of
/// [`crate::recovery::execute_replicated`], except that pending replicas
/// only dispatch once armed by speculation (or promoted after losing their
/// primary).
///
/// # Errors
/// Returns [`ExecutionError`] on shape mismatches, an invalid sentinel or
/// checkpoint config, or a broken executor invariant.
#[allow(clippy::too_many_arguments)]
pub fn execute_adaptive(
    inst: &Instance,
    plan: &Schedule,
    durations: &Matrix,
    scenario: &FaultScenario,
    cfg: &RecoveryConfig,
    replicas: &ReplicaPlan,
    draws: &ReplicaDraws,
    analysis: &SlackAnalysis,
    sentinel: &SentinelConfig,
) -> Result<FaultRun, ExecutionError> {
    sentinel.validate()?;
    let expected = timing::expected_durations(&inst.timing, plan);
    if expected.len() != inst.task_count() || analysis.slack.len() != inst.task_count() {
        return Err(ExecutionError::Internal(
            "slack analysis does not match the instance",
        ));
    }
    let mut state = SentinelState::new(analysis, &expected, sentinel);
    execute_inner(
        inst,
        plan,
        durations,
        scenario,
        cfg,
        replicas,
        draws,
        Some((sentinel, &mut state)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;
    use crate::recovery::execute_with_faults;
    use crate::slack;

    fn setup(seed: u64) -> (Instance, Schedule) {
        let inst = InstanceSpec::new(40, 4)
            .seed(seed)
            .uncertainty_level(3.0)
            .build()
            .unwrap();
        let heft = rds_heft_like_schedule(&inst);
        (inst, heft)
    }

    /// A deterministic list schedule without depending on `rds-heft`
    /// (which sits above this crate): rank order, earliest-finish
    /// append-only placement.
    fn rds_heft_like_schedule(inst: &Instance) -> Schedule {
        let order = crate::replan::rank_order(inst);
        let state = crate::replan::FrozenState::fresh(inst.task_count(), inst.proc_count());
        let r = crate::replan::replan_partial(inst, &order, &state).unwrap();
        Schedule::from_proc_lists(inst.task_count(), r.proc_tasks).unwrap()
    }

    #[test]
    fn quiet_run_matches_plain_executor_bit_for_bit() {
        for seed in 0..4u64 {
            let (inst, plan) = setup(seed);
            let analysis = slack::analyze_expected(&inst, &plan).unwrap();
            // Nominal durations: nothing overruns (critical tasks have zero
            // slack, so *any* overrun beyond FP noise would fire).
            let durations = Matrix::from_fn(inst.task_count(), inst.proc_count(), |t, p| {
                inst.timing.expected(t, rds_platform::ProcId(p as u32))
            });
            let scenario = FaultScenario::default();
            let cfg = RecoveryConfig::default();
            let adaptive = execute_adaptive(
                &inst,
                &plan,
                &durations,
                &scenario,
                &cfg,
                &ReplicaPlan::empty(inst.task_count()),
                &ReplicaDraws::empty(),
                &analysis,
                &SentinelConfig::default(),
            )
            .unwrap();
            let plain = execute_with_faults(&inst, &plan, &durations, &scenario, &cfg).unwrap();
            assert_eq!(adaptive.outcome, plain.outcome);
            assert_eq!(adaptive.events, plain.events);
            for t in 0..inst.task_count() {
                assert_eq!(adaptive.start[t].to_bits(), plain.start[t].to_bits());
                assert_eq!(adaptive.finish[t].to_bits(), plain.finish[t].to_bits());
            }
            assert_eq!(adaptive.schedule, plain.schedule);
            assert_eq!(adaptive.stats.sentinel_fires, 0);
        }
    }

    #[test]
    fn overrun_fires_and_replans_within_budget() {
        let (inst, plan) = setup(11);
        let analysis = slack::analyze_expected(&inst, &plan).unwrap();
        // Inflate every realized duration 3x: every completion overruns.
        let durations = Matrix::from_fn(inst.task_count(), inst.proc_count(), |t, p| {
            3.0 * inst.timing.expected(t, rds_platform::ProcId(p as u32))
        });
        let scfg = SentinelConfig {
            trigger_fraction: 0.1,
            cooldown: 0.01,
            max_replans: 2,
            ..SentinelConfig::default()
        };
        let run = execute_adaptive(
            &inst,
            &plan,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::default(),
            &ReplicaPlan::empty(inst.task_count()),
            &ReplicaDraws::empty(),
            &analysis,
            &scfg,
        )
        .unwrap();
        assert!(matches!(
            run.outcome,
            crate::recovery::Outcome::Completed { .. }
        ));
        assert!(run.stats.sentinel_fires > 0, "uniform 3x overrun must fire");
        assert!(run.stats.sentinel_replans >= 1);
        assert!(run.stats.sentinel_replans <= scfg.max_replans);
    }

    #[test]
    fn degradation_drops_optional_tasks_instead_of_missing() {
        let (mut inst, plan) = setup(23);
        // Mark every exit-side task optional (reverse topological order
        // keeps the successor-closure invariant).
        let order = rds_graph::topo::topological_order(&inst.graph).unwrap();
        let mut marked = 0usize;
        for &t in order.iter().rev() {
            if marked >= inst.task_count() / 4 {
                break;
            }
            if inst.graph.mark_optional(t) {
                marked += 1;
            }
        }
        assert!(marked > 0);
        let analysis = slack::analyze_expected(&inst, &plan).unwrap();
        let durations = Matrix::from_fn(inst.task_count(), inst.proc_count(), |t, p| {
            4.0 * inst.timing.expected(t, rds_platform::ProcId(p as u32))
        });
        let scfg = SentinelConfig {
            trigger_fraction: 0.05,
            cooldown: 0.01,
            max_replans: 0, // jump straight to deadline defence
            max_speculations: 0,
            epsilon: 1.2,
        };
        let run = execute_adaptive(
            &inst,
            &plan,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::default(),
            &ReplicaPlan::empty(inst.task_count()),
            &ReplicaDraws::empty(),
            &analysis,
            &scfg,
        )
        .unwrap();
        assert!(matches!(
            run.outcome,
            crate::recovery::Outcome::Completed { .. }
        ));
        assert!(run.stats.dropped_tasks > 0, "4x overruns must degrade");
        assert!(run.stats.dropped_weight > 0.0);
        assert!(
            run.schedule.is_none(),
            "degraded runs have no full schedule"
        );
        assert!(run
            .events
            .iter()
            .any(|e| matches!(e, crate::recovery::RecoveryEvent::TaskDropped { .. })));
        // Dropped tasks never ran.
        for t in 0..inst.task_count() {
            if run.finish[t].is_nan() {
                assert!(inst.graph.is_optional(rds_graph::TaskId(t as u32)));
            }
        }
    }

    #[test]
    fn speculation_arms_replicas_under_pressure() {
        let (inst, plan) = setup(31);
        let analysis = slack::analyze_expected(&inst, &plan).unwrap();
        let rcfg = crate::replication::ReplicationConfig {
            budget: 0.5,
            ..crate::replication::ReplicationConfig::default()
        };
        let replicas = crate::replication::plan_replicas(&inst, &plan, &rcfg).unwrap();
        if replicas.count() == 0 {
            return; // nothing to speculate with on this instance
        }
        let draws = ReplicaDraws::nominal(&replicas, &inst.timing);
        let durations = Matrix::from_fn(inst.task_count(), inst.proc_count(), |t, p| {
            3.0 * inst.timing.expected(t, rds_platform::ProcId(p as u32))
        });
        let scfg = SentinelConfig {
            trigger_fraction: 0.05,
            cooldown: 0.01,
            max_replans: 0,
            max_speculations: 3,
            epsilon: 1.1,
        };
        let run = execute_adaptive(
            &inst,
            &plan,
            &durations,
            &FaultScenario::default(),
            &RecoveryConfig::default(),
            &replicas,
            &draws,
            &analysis,
            &scfg,
        )
        .unwrap();
        assert!(run.stats.speculations > 0, "pressure must trigger arming");
        assert!(run.stats.speculations <= scfg.max_speculations);
        // Replica starts only happen after arming under the sentinel.
        assert!(run.stats.replica_starts <= replicas.count());
    }
}

#!/usr/bin/env bash
# Quick-scale online multi-tenant study: a seeded stream of deadline-
# carrying DAG jobs on a shared platform, with completion-probability
# admission and the autonomous drop ladder, against admit-everything
# FIFO baselines. Asserts the headline claim of the study: under
# oversubscription the probability gate rejects a nonzero fraction of
# arrivals and ends up with a strictly higher deadline hit rate than the
# admit-everything, never-drop baseline. Defaults are laptop-scale
# (minutes); override knobs via FLAGS, e.g.
#   FLAGS="--admission-floor 0.7 --online-jobs 30" scripts/online_quick.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rds-experiments

FIG=target/release/figures
OUT=${OUT:-results}
FLAGS=${FLAGS:-}

$FIG online $FLAGS \
  --graphs "${GRAPHS:-2}" --tasks "${TASKS:-20}" --procs "${PROCS:-3}" \
  --online-jobs "${JOBS:-14}" --online-samples "${SAMPLES:-32}" \
  --oversub "${OVERSUB:-0.25,3}" --uls "${ULS:-4}" --out "$OUT"

CSV=$OUT/online.csv
[ -f "$CSV" ] || { echo "online_quick: FAIL: $CSV was not written" >&2; exit 1; }

# At the highest oversubscription the gate must say no sometimes, and
# saying no must win: hit:prob strictly above hit:fifo-nodrop.
awk -F, '
  NR == 1 { next }
  { if ($2 + 0 > xmax) xmax = $2 + 0 }
  $1 == "rejected:prob"   { rej[$2] = $3 + 0 }
  $1 == "hit:prob"        { prob[$2] = $3 + 0 }
  $1 == "hit:fifo-nodrop" { fifo[$2] = $3 + 0 }
  END {
    x = xmax ""
    if (!(x in prob) || !(x in fifo) || !(x in rej)) {
      print "online_quick: FAIL: missing series at oversub " x > "/dev/stderr"
      exit 1
    }
    if (rej[x] <= 0) {
      print "online_quick: FAIL: no rejections at oversub " x > "/dev/stderr"
      exit 1
    }
    if (prob[x] <= fifo[x]) {
      printf "online_quick: FAIL: hit:prob %.3f !> hit:fifo-nodrop %.3f at oversub %s\n", \
        prob[x], fifo[x], x > "/dev/stderr"
      exit 1
    }
    printf "online_quick: hit rate %.3f (prob) vs %.3f (fifo-nodrop), %.0f%% rejected at %sx\n", \
      prob[x], fifo[x], 100 * rej[x], x
  }
' "$CSV"

echo "online_quick: all checks passed"

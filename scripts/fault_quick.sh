#!/usr/bin/env bash
# Quick-scale fault-robustness figure: HEFT / GA / dynamic EFT under
# increasing fault rates, across the three recovery policies. Defaults are
# laptop-scale (minutes); set SCALE=--full for the paper-scale sweep, or
# override knobs via FLAGS, e.g.
#   FLAGS="--fault-scales 0,0.5,1,2 --realizations 500" scripts/fault_quick.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rds-experiments

FIG=target/release/figures
OUT=${OUT:-results}
SCALE=${SCALE:-}
FLAGS=${FLAGS:-}

$FIG faults $SCALE $FLAGS --out "$OUT"

#!/usr/bin/env bash
# Quick-scale adaptive-robustness figure: the sentinel executor (slack
# accounts, bounded replans, speculation, graceful degradation) against
# static fail-stop, static-with-recovery, and fully dynamic baselines,
# under an epsilon-deadline and a straggler-heavy fault mix. Defaults are
# laptop-scale (minutes); set SCALE=--full for the paper-scale sweep, or
# override knobs via FLAGS, e.g.
#   FLAGS="--epsilon 1.5 --optional-fraction 0.4" scripts/adaptive_quick.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rds-experiments

FIG=target/release/figures
OUT=${OUT:-results}
SCALE=${SCALE:-}
FLAGS=${FLAGS:-}

$FIG adaptive $SCALE $FLAGS --uls "${ULS:-1.5,3}" --out "$OUT"

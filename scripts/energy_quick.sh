#!/usr/bin/env bash
# Energy smoke: a tiny tri-objective (makespan, slack, energy) NSGA-II
# run under a reliability floor.
#
#  1. `figures energy` at smoke scale must produce a *feasible* front
#     for the lenient floor at every swept UL (feasible:rX == 1), with
#     strictly positive hypervolume and a non-negative energy saving
#     over full-speed HEFT.
#  2. Every point of the emitted Pareto surface must itself satisfy the
#     floor (reliability >= rel_min).
#  3. The front hypervolume and the tri-kernel evaluation rate are
#     snapshotted into BENCH_energy.json (BENCH_OUT overrides the path).
#
# Usage:
#   scripts/energy_quick.sh         # build + run (CI entry point)
#   FIGURES=path/to/figures scripts/energy_quick.sh   # skip the build
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${FIGURES:-}" ]; then
  cargo build --release -p rds-experiments
  FIGURES=target/release/figures
fi
OUT="${BENCH_OUT:-BENCH_energy.json}"
REL="${REL:-0.85}"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail() { echo "energy_quick: FAIL: $*" >&2; exit 1; }

"$FIGURES" energy \
  --graphs "${GRAPHS:-2}" --tasks "${TASKS:-16}" --procs "${PROCS:-3}" \
  --generations "${GENERATIONS:-30}" --uls "${ULS:-2,8}" \
  --rel-mins "$REL" --seed "${SEED:-7}" --out "$TMP/results" \
  > "$TMP/table.txt"

CSV="$TMP/results/energy.csv"
PARETO="$TMP/results/energy_pareto.csv"
[ -f "$CSV" ] || fail "$CSV was not written"
[ -f "$PARETO" ] || fail "$PARETO was not written"

python3 - "$CSV" "$PARETO" "$OUT" "$REL" <<'PY'
import csv
import json
import sys

csv_path, pareto_path, out_path, rel = sys.argv[1], sys.argv[2], sys.argv[3], float(sys.argv[4])
tag = f"r{rel:.2f}"

series = {}
with open(csv_path) as f:
    for row in csv.DictReader(f):
        series.setdefault(row["series"], {})[float(row["x"])] = float(row["y"])

def need(name):
    if name not in series:
        print(f"energy_quick: FAIL: missing series {name}", file=sys.stderr)
        sys.exit(1)
    return series[name]

feasible = need(f"feasible:{tag}")
hv = need(f"hv:{tag}")
saving = need(f"saving:{tag}")
rate = need(f"evalrate:{tag}")
for ul, y in feasible.items():
    if y != 1.0:
        print(f"energy_quick: FAIL: infeasible front at UL {ul} (feasible={y})", file=sys.stderr)
        sys.exit(1)
for ul, y in hv.items():
    if not y > 0.0:
        print(f"energy_quick: FAIL: hypervolume {y} at UL {ul} is not positive", file=sys.stderr)
        sys.exit(1)
for ul, y in saving.items():
    if y < 0.0:
        print(f"energy_quick: FAIL: negative energy saving {y} at UL {ul}", file=sys.stderr)
        sys.exit(1)

# Every emitted Pareto point must clear the floor itself.
points = 0
with open(pareto_path) as f:
    for row in csv.DictReader(f):
        if row["series"].endswith(":reliability"):
            points += 1
            r = float(row["y"])
            if not (rel <= r <= 1.0):
                print(f"energy_quick: FAIL: Pareto point reliability {r} < floor {rel}",
                      file=sys.stderr)
                sys.exit(1)
if points == 0:
    print("energy_quick: FAIL: Pareto surface is empty", file=sys.stderr)
    sys.exit(1)

snapshot = {
    "rel_min": rel,
    "feasible": True,
    "hypervolume": hv,
    "energy_saving": saving,
    "evals_per_sec": rate,
    "pareto_points": points,
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
mean_rate = sum(rate.values()) / len(rate)
print(f"energy_quick: feasible fronts at floor {rel}, "
      f"hv={min(hv.values()):.3g}..{max(hv.values()):.3g}, "
      f"{points} Pareto points, {mean_rate:,.0f} evals/s -> {out_path}")
PY

echo "energy_quick: all checks passed"

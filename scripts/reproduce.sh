#!/usr/bin/env bash
# Full reproduction pipeline for the paper's evaluation plus the extension
# studies. Paper scale (100 graphs x 1000 realizations x 1000 GA
# generations) takes a while; pass a smaller --graphs/--realizations for a
# quick pass (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rds-experiments

FIG=target/release/figures
OUT=${OUT:-results_full}
SCALE=${SCALE:---full}

# The paper's figures (2-8; fig5-8 share one epsilon sweep).
$FIG fig2 $SCALE --out "$OUT"
$FIG fig3 $SCALE --out "$OUT"
$FIG fig4 $SCALE --uls 2,3,4,5,6,7,8 --out "$OUT"
$FIG sweep $SCALE --out "$OUT"

# Extension studies.
$FIG corr $SCALE --out "$OUT"
$FIG future $SCALE --out "$OUT"
$FIG dynamic $SCALE --out "$OUT"
$FIG law $SCALE --out "$OUT"
$FIG ccr $SCALE --out "$OUT"
$FIG contention $SCALE --ccr 1.0 --out "$OUT"
$FIG gatune $SCALE --out "$OUT"
$FIG faults $SCALE --out "$OUT"

# Render everything as terminal tables.
$FIG report --out "$OUT"

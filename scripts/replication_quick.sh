#!/usr/bin/env bash
# Quick-scale proactive-robustness figure: HEFT + retry-in-place recovery
# with/without slack-aware replication and checkpoint/restart, under
# increasing fault rates. Defaults are laptop-scale (minutes); set
# SCALE=--full for the paper-scale sweep, or override knobs via FLAGS, e.g.
#   FLAGS="--replication-budget 0.5 --placement fragile" scripts/replication_quick.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rds-experiments

FIG=target/release/figures
OUT=${OUT:-results}
SCALE=${SCALE:-}
FLAGS=${FLAGS:-}

$FIG replication $SCALE $FLAGS --out "$OUT"

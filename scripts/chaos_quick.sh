#!/usr/bin/env bash
# Chaos smoke: the crash-safety promises exercised end to end.
#
#  1. Kill-and-recover round trip through the CLI: a journaled serve whose
#     journal file is cut at byte N mid-run (chaos --chaos-kill-at, the
#     file state of a `kill -9`); a second incarnation replays the
#     surviving obligation and must account for every journaled job.
#  2. Brownout flood: a held serve flooded past its ladder fast-rejects
#     with a retry-after hint instead of queueing unbounded work.
#  3. The `figures chaos` study (worker panics, restart recovery,
#     brownout accounting at three panic rates), snapshotted into
#     BENCH_serve.json — any nonzero `lost:*` value fails the run.
#
# Usage:
#   scripts/chaos_quick.sh          # build + run (CI entry point)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${RDS:-}" ]; then
  cargo build --release --workspace
  RDS=target/release/rds
fi
FIGURES="${FIGURES:-target/release/figures}"
OUT="${BENCH_OUT:-BENCH_serve.json}"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail() { echo "chaos_quick: FAIL: $*" >&2; exit 1; }

# --- 1. Kill-and-recover round trip. ------------------------------------
"$RDS" gen --tasks 20 --procs 3 --seed 13 -o "$TMP/inst.rds" >/dev/null
"$RDS" submit -i "$TMP/inst.rds" --algo heft --id job-0 --emit 1 > "$TMP/job.rds"
for n in 0 1 2 3 4 5 6 7; do
  sed "s/^id job-0$/id job-$n/" "$TMP/job.rds"
done > "$TMP/jobs.rds"

# First incarnation: hold mode journals all eight accepts before any
# job runs; the journal file freezes mid-way through the third accepted
# record (simulated crash mid-write) while the process drains normally.
KILL_AT=$(( $(wc -c < "$TMP/job.rds") * 5 / 2 ))
"$RDS" serve --workers 2 --hold 1 --journal "$TMP/jobs.wal" \
  --chaos-seed 5 --chaos-kill-at "$KILL_AT" \
  < "$TMP/jobs.rds" > "$TMP/r1.rds" 2> "$TMP/m1.txt"
[ "$(grep -c '^status ok$' "$TMP/r1.rds")" = 8 ] \
  || fail "first incarnation lost a job: $(cat "$TMP/r1.rds")"
[ -s "$TMP/jobs.wal" ] || fail "journal was never written"

# Second incarnation: recover the cut journal, accept nothing new.
"$RDS" serve --workers 2 --journal "$TMP/jobs.wal" --recover 1 \
  < /dev/null > "$TMP/r2.rds" 2> "$TMP/m2.txt"
grep -q '^recovery: ' "$TMP/m2.txt" \
  || fail "no recovery report: $(cat "$TMP/m2.txt")"
REC_LINE=$(grep '^recovery: ' "$TMP/m2.txt")
REPLAYED=$(echo "$REC_LINE" | sed -n 's/^recovery: \([0-9]*\) replayed.*/\1/p')
REC_FAILED=$(echo "$REC_LINE" | sed -n 's/.*\/ \([0-9]*\) failed.*/\1/p')
RESULTS=$(grep -c '^end rds-result$' "$TMP/r2.rds" || true)
[ "$REPLAYED" -gt 0 ] || fail "the cut journal owed jobs, none were replayed"
[ "$RESULTS" = "$((REPLAYED + REC_FAILED))" ] \
  || fail "replayed $REPLAYED (+$REC_FAILED failed) but emitted $RESULTS results"
[ "$(grep -c '^status ok$' "$TMP/r2.rds")" = "$REPLAYED" ] \
  || fail "a replayed job did not complete: $(cat "$TMP/r2.rds")"

# Third incarnation: the journal now shows everything terminal.
"$RDS" serve --workers 1 --journal "$TMP/jobs.wal" --recover 1 \
  < /dev/null > "$TMP/r3.rds" 2> "$TMP/m3.txt"
grep -q '^recovery: 0 replayed' "$TMP/m3.txt" \
  || fail "recovery is not idempotent: $(cat "$TMP/m3.txt")"

# --- 2. Brownout flood fast-rejects with a retry hint. -------------------
for n in 0 1 2 3 4 5 6 7 8 9 10 11; do
  sed "s/^id job-0$/id flood-$n/" "$TMP/job.rds"
done > "$TMP/flood.rds"
"$RDS" serve --workers 1 --hold 1 --brownout 1 \
  --brownout-degrade 2 --brownout-shed 4 --brownout-open 6 \
  --brownout-retry-ms 75 \
  < "$TMP/flood.rds" > "$TMP/flood_results.rds" 2> "$TMP/flood_metrics.txt"
grep -q '^status rejected$' "$TMP/flood_results.rds" \
  || fail "flood past the open depth was not fast-rejected"
grep -q '^retry-after-ms 75$' "$TMP/flood_results.rds" \
  || fail "fast rejection carries no retry-after hint"
[ "$(grep -c '^status ok$' "$TMP/flood_results.rds")" -ge 1 ] \
  || fail "brownout must degrade, not refuse everything"

# --- 3. Chaos study → BENCH_serve.json, zero loss enforced. --------------
# (stderr holds the injected worker-panic backtraces — noise by design.)
"$FIGURES" chaos --out "$TMP/results" > "$TMP/chaos_table.txt" \
  2> "$TMP/chaos_stderr.txt" \
  || { cat "$TMP/chaos_stderr.txt" >&2; fail "figures chaos failed"; }
[ -f "$TMP/results/chaos.csv" ] || fail "chaos study wrote no CSV"

python3 - "$TMP/results/chaos.csv" "$OUT" <<'PY'
import csv
import json
import sys

csv_path, out_path = sys.argv[1], sys.argv[2]
series = {}
with open(csv_path) as f:
    for row in csv.DictReader(f):
        series.setdefault(row["series"], {})[row["x"]] = float(row["y"])

lost = {
    name: points
    for name, points in series.items()
    if name.startswith("lost:") or name == "pending:live"
}
bad = {
    name: {x: y for x, y in points.items() if y != 0.0}
    for name, points in lost.items()
}
bad = {name: pts for name, pts in bad.items() if pts}
if bad:
    print(f"chaos_quick: FAIL: jobs lost under chaos: {bad}", file=sys.stderr)
    sys.exit(1)

snapshot = {
    "zero_loss": True,
    "panic_rates": sorted({x for pts in series.values() for x in pts}),
    "series": series,
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"chaos_quick: wrote {out_path} (zero job loss at every panic rate)")
PY

echo "chaos_quick: all checks passed"

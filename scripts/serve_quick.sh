#!/usr/bin/env bash
# End-to-end smoke of the scheduling service: a serve process fed over
# pipes must return a valid schedule matching the in-process scheduler,
# record a cache hit on an identical resubmission, and reject queue
# overflow cleanly (with metrics reflecting it). Used by CI; also a
# usage example for `rds serve` / `rds submit`.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${RDS:-}" ]; then
  cargo build --release
  RDS=target/release/rds
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail() { echo "serve_quick: FAIL: $*" >&2; exit 1; }

# --- 1. Instance + in-process reference schedule. -----------------------
"$RDS" gen --tasks 30 --procs 4 --seed 11 -o "$TMP/inst.rds" >/dev/null
"$RDS" schedule -i "$TMP/inst.rds" --algo heft -o "$TMP/ref.rds" >/dev/null

# --- 2. Two identical jobs through a one-worker serve. ------------------
"$RDS" submit -i "$TMP/inst.rds" --algo heft --id job-a --emit 1 > "$TMP/job.rds"
{ cat "$TMP/job.rds"; sed 's/^id job-a$/id job-b/' "$TMP/job.rds"; } > "$TMP/jobs.rds"
"$RDS" serve --workers 1 < "$TMP/jobs.rds" > "$TMP/results.rds" 2> "$TMP/metrics.txt"

[ "$(grep -c '^status ok$' "$TMP/results.rds")" = 2 ] \
  || fail "expected 2 ok results, got: $(cat "$TMP/results.rds")"
grep -q '^cache hit$' "$TMP/results.rds" \
  || fail "identical resubmission was not served from cache"
grep -q '1 hits / 1 misses' "$TMP/metrics.txt" \
  || fail "metrics do not record the cache hit: $(cat "$TMP/metrics.txt")"

# The served schedule must be byte-identical to the in-process one.
awk '/^schedule$/{grab=1; next} /^end rds-result$/{if(grab) exit} grab' \
  "$TMP/results.rds" > "$TMP/served.rds"
diff -u "$TMP/ref.rds" "$TMP/served.rds" \
  || fail "served schedule differs from in-process HEFT"

# --- 3. Queue overflow rejects cleanly. ---------------------------------
# Hold mode queues without draining; capacity 1 means jobs 2-4 overflow.
for n in 1 2 3 4; do
  sed "s/^id job-a$/id ovf-$n/" "$TMP/job.rds"
done > "$TMP/burst.rds"
"$RDS" serve --workers 1 --queue-cap 1 --hold 1 < "$TMP/burst.rds" \
  > "$TMP/burst_results.rds" 2> "$TMP/burst_metrics.txt"

[ "$(grep -c '^status rejected$' "$TMP/burst_results.rds")" = 3 ] \
  || fail "expected 3 rejections, got: $(cat "$TMP/burst_results.rds")"
grep '^status rejected$' -A1 "$TMP/burst_results.rds" | grep -q 'queue full' \
  || fail "rejection reason does not mention queue full"
[ "$(grep -c '^status ok$' "$TMP/burst_results.rds")" = 1 ] \
  || fail "the one admitted job should still complete"
grep -q 'rejected (full)     : 3' "$TMP/burst_metrics.txt" \
  || fail "metrics do not reflect the rejections: $(cat "$TMP/burst_metrics.txt")"

# --- 4. Default-mode submit round trip (spawns its own serve child). ----
"$RDS" submit -i "$TMP/inst.rds" --algo heft -o "$TMP/via_submit.rds" >/dev/null
diff -u "$TMP/ref.rds" "$TMP/via_submit.rds" \
  || fail "submit round trip diverged from in-process HEFT"

# A malformed envelope must come back as a rejection, not kill the serve.
printf 'rds-job v1\nid broken\nalgo quantum\nend rds-job\n' \
  | "$RDS" serve --workers 1 2>/dev/null | grep -q '^status rejected$' \
  || fail "unknown algo should yield a rejection envelope"

echo "serve_quick: all checks passed"

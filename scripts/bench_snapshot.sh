#!/usr/bin/env bash
# Runs the evaluation-kernel criterion benchmarks (benches/eval.rs plus the
# kernel micro-benches) and snapshots their mean estimates into
# BENCH_eval.json: { bench -> { ns_per_iter, evals_per_sec } } plus the
# headline speedups: the parallel CSR population path over the
# alloc-per-eval path, the batched SoA Monte-Carlo walk over the scalar
# walk (the CI regression gate), and delta (suffix) evaluation over the
# full pass.
#
# Usage:
#   scripts/bench_snapshot.sh          # full criterion run
#   scripts/bench_snapshot.sh quick    # short sampling (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="${BENCH_OUT:-BENCH_eval.json}"

FLAGS=()
if [ "$MODE" = "quick" ]; then
  FLAGS=(--warm-up-time 0.3 --measurement-time 1 --sample-size 10)
fi

cargo bench -p rds-bench --bench eval -- "${FLAGS[@]}"
cargo bench -p rds-bench --bench kernels -- "${FLAGS[@]}" \
  'slack_analysis_100|are_independent_100'

python3 - "$OUT" <<'PY'
import json
import os
import sys

out_path = sys.argv[1]

# Chromosome evaluations performed per criterion iteration: the pop64
# benches evaluate 64 chromosomes per iteration, the rest one (the
# non-eval kernels get no evals/sec entry).
EVALS_PER_ITER = {
    "eval_alloc_100x8": 1,
    "eval_csr_100x8": 1,
    "eval_memo_warm_100x8": 1,
    "eval_pop64_alloc_100x8": 64,
    "eval_pop64_csr_par_100x8": 64,
    "eval_pop64_memo_warm_100x8": 64,
    # mc_* benches run 32 realizations per iteration; evals/sec counts
    # realizations.
    "mc_walk_scalar_100x8x32": 32,
    "mc_walk_batched_100x8x32": 32,
    "mc_eval_scalar_100x8x32": 32,
    "mc_eval_batched_100x8x32": 32,
    "mc_delta_100x8x32": 32,
    "delta_full_100x8": 1,
    "delta_suffix_100x8": 1,
    "slack_analysis_100": None,
    "are_independent_100": None,
}

snapshot = {}
for bench, evals in EVALS_PER_ITER.items():
    est = os.path.join("target", "criterion", bench, "new", "estimates.json")
    if not os.path.exists(est):
        print(f"bench_snapshot: missing {est}", file=sys.stderr)
        continue
    with open(est) as f:
        ns = json.load(f)["mean"]["point_estimate"]
    entry = {"ns_per_iter": ns}
    if evals is not None:
        entry["evals_per_sec"] = evals * 1e9 / ns
    snapshot[bench] = entry

alloc = snapshot.get("eval_pop64_alloc_100x8")
par = snapshot.get("eval_pop64_csr_par_100x8")
if alloc and par:
    snapshot["speedup_pop64_csr_par_vs_alloc"] = (
        par["evals_per_sec"] / alloc["evals_per_sec"]
    )

# Headline speedups of this PR's two kernels. The walk pair (sampling
# outside the timed region) is the regression gate: batched below scalar
# means the SoA kernel regressed.
for name, slow, fast in [
    ("speedup_mc_batched_vs_scalar", "mc_walk_scalar_100x8x32", "mc_walk_batched_100x8x32"),
    ("speedup_mc_eval_batched_vs_scalar", "mc_eval_scalar_100x8x32", "mc_eval_batched_100x8x32"),
    ("speedup_mc_delta_vs_batched", "mc_eval_batched_100x8x32", "mc_delta_100x8x32"),
    ("speedup_delta_vs_full", "delta_full_100x8", "delta_suffix_100x8"),
]:
    if slow in snapshot and fast in snapshot:
        snapshot[name] = snapshot[slow]["ns_per_iter"] / snapshot[fast]["ns_per_iter"]

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench_snapshot: wrote {out_path}")
for key in sorted(snapshot):
    print(f"  {key}: {snapshot[key]}")
PY

#!/usr/bin/env bash
# Networked serving smoke: the fault-tolerance promises of the TCP tier
# exercised end to end through the real binaries.
#
#  1. Kill-a-shard drill: two journaled shards behind `rds route`; a job
#     whose fingerprint-primary is shard A is solved there and its warm
#     cache entry gossiped to the rendezvous successor. `kill -9` shard A,
#     re-drive the job through the router: it must fail over and come
#     back as a **cache hit** from the replica, and shard A's journal
#     must account for every job it accepted (zero loss).
#  2. Network chaos: a shard with seeded reply-drop chaos behind a
#     retrying router; every request still completes, and the shard's
#     shutdown counters show the drops actually happened.
#  3. Routed load: `loadgen` drives a mixed heft/GA workload through the
#     router at two live shards and merges routed p50/p95/p99 plus
#     hedge/failover counts into BENCH_serve.json under `routed`.
#
# Usage:
#   scripts/serve_net_quick.sh      # build + run (CI entry point)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${RDS:-}" ]; then
  cargo build --release --workspace
  RDS=target/release/rds
fi
LOADGEN="${LOADGEN:-target/release/loadgen}"
OUT="${BENCH_OUT:-BENCH_serve.json}"

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT
fail() { echo "serve_net_quick: FAIL: $*" >&2; exit 1; }

# Fixed ports derived from the PID keep parallel CI jobs apart; the
# binaries support :0 but the peer list must be known at launch. Stay
# below the Linux ephemeral range (32768+) so an outbound client socket
# in TIME_WAIT can never squat on a shard's listen port.
BASE=$(( 21000 + ( $$ % 2000 ) ))
ADDR_A="127.0.0.1:$BASE"
ADDR_B="127.0.0.1:$((BASE + 1))"
ADDR_R="127.0.0.1:$((BASE + 2))"
ADDR_C="127.0.0.1:$((BASE + 3))"
ADDR_R2="127.0.0.1:$((BASE + 4))"
ADDR_D="127.0.0.1:$((BASE + 5))"
ADDR_E="127.0.0.1:$((BASE + 6))"

# Launches a background process holding a fifo open as its stdin (the
# serve/route binaries run until stdin closes). $1 = tag, rest = argv.
spawn() {
  local tag=$1
  shift
  mkfifo "$TMP/$tag.ctl"
  "$@" < "$TMP/$tag.ctl" > "$TMP/$tag.out" 2> "$TMP/$tag.err" &
  PIDS+=($!)
  eval "PID_$tag=$!"
  # Hold a writer on the fifo; closing the fd shuts the process down.
  exec {fd}> "$TMP/$tag.ctl"
  eval "FD_$tag=$fd"
  for _ in $(seq 1 100); do
    grep -q '^listening ' "$TMP/$tag.out" 2>/dev/null && return 0
    kill -0 "$(eval echo "\$PID_$tag")" 2>/dev/null \
      || fail "$tag exited before binding: $(cat "$TMP/$tag.err")"
    sleep 0.1
  done
  fail "$tag never reported a bound address"
}

# Graceful shutdown: close the fifo writer, wait for exit. Children
# spawned later inherit earlier fifo writer fds, so stops must run in
# LIFO order — the last-spawned process first.
stop() {
  local tag=$1 fd pid
  fd=$(eval echo "\$FD_$tag")
  pid=$(eval echo "\$PID_$tag")
  eval "exec $fd>&-"
  wait "$pid" 2>/dev/null || true
}

# --- 1. Kill-a-shard drill. ----------------------------------------------
spawn A "$RDS" serve --workers 2 --journal "$TMP/a.wal" \
  --listen "$ADDR_A" --peers "$ADDR_A,$ADDR_B" --shard-index 0
spawn B "$RDS" serve --workers 2 --journal "$TMP/b.wal" \
  --listen "$ADDR_B" --peers "$ADDR_A,$ADDR_B" --shard-index 1
spawn R "$RDS" route --shards "$ADDR_A,$ADDR_B" --listen "$ADDR_R" \
  --health-interval-ms 150

# Find a job whose fingerprint-primary is shard A: the accepting shard
# journals the envelope before replying, so ownership is observable.
HOT_SEED=""
for s in $(seq 13 28); do
  "$RDS" gen --tasks 24 --procs 3 --seed "$s" -o "$TMP/inst-$s.rds" >/dev/null
  "$RDS" submit -i "$TMP/inst-$s.rds" --algo heft --id "hot-$s" \
    --connect "$ADDR_R" > "$TMP/hot-$s.txt" \
    || fail "routed submit hot-$s failed: $(cat "$TMP/hot-$s.txt")"
  if grep -q "^jrec [0-9]* accepted hot-$s " "$TMP/a.wal"; then
    HOT_SEED=$s
    break
  fi
done
[ -n "$HOT_SEED" ] || fail "no seed in 13..28 landed on shard A"
grep -q 'cache miss' "$TMP/hot-$HOT_SEED.txt" \
  || fail "first routed solve was not a cache miss"

# Background traffic so both journals carry accepted work.
for n in 0 1 2 3; do
  "$RDS" gen --tasks 20 --procs 3 --seed "$((100 + n))" -o "$TMP/bg-$n.rds" >/dev/null
  "$RDS" submit -i "$TMP/bg-$n.rds" --algo heft --id "bg-$n" \
    --connect "$ADDR_R" >/dev/null || fail "background job bg-$n failed"
done

sleep 1.5 # the gossip hop is async; give the replica time to land

kill -9 "$PID_A" 2>/dev/null || fail "shard A already dead"
wait "$PID_A" 2>/dev/null || true

"$RDS" submit -i "$TMP/inst-$HOT_SEED.rds" --algo heft --id hot-replay \
  --connect "$ADDR_R" > "$TMP/replay.txt" \
  || fail "failover submit failed: $(cat "$TMP/replay.txt")"
grep -q 'cache hit' "$TMP/replay.txt" \
  || fail "failed-over request missed the replicated warm cache: $(cat "$TMP/replay.txt")"

stop R
grep -q '^failover            : ' "$TMP/R.err" || fail "router printed no metrics"
FAILOVERS=$(sed -n 's/^failover .*: [0-9]* retries \/ \([0-9]*\) failovers.*/\1/p' "$TMP/R.err")
[ "${FAILOVERS:-0}" -ge 1 ] || fail "router never failed over: $(cat "$TMP/R.err")"
stop B

# Zero-loss ledger: recover the killed shard's journal; every accepted
# job must be terminal (we held its replies in hand before the kill) or
# replayed to completion now.
"$RDS" serve --workers 1 --journal "$TMP/a.wal" --recover 1 \
  < /dev/null > "$TMP/rec.rds" 2> "$TMP/rec.txt"
grep -q '^recovery: ' "$TMP/rec.txt" || fail "no recovery report for shard A"
REPLAYED=$(sed -n 's/^recovery: \([0-9]*\) replayed.*/\1/p' "$TMP/rec.txt")
REC_FAILED=$(sed -n 's/.*\/ \([0-9]*\) failed.*/\1/p' "$TMP/rec.txt")
[ "${REC_FAILED:-0}" = 0 ] || fail "recovery lost jobs: $(cat "$TMP/rec.txt")"
[ "$(grep -c '^status ok$' "$TMP/rec.rds" || true)" = "$REPLAYED" ] \
  || fail "a replayed job did not complete: $(cat "$TMP/rec.rds")"

# --- 2. Network chaos: dropped replies are survived by retries. ----------
spawn C "$RDS" serve --workers 2 --journal "$TMP/c.wal" \
  --listen "$ADDR_C" --chaos-seed 42 --chaos-net-drop-rate 0.5
spawn R2 "$RDS" route --shards "$ADDR_C" --listen "$ADDR_R2" \
  --retries 10 --io-timeout-ms 1500 --health-interval-ms 0
for n in 0 1 2 3 4 5 6 7; do
  "$RDS" submit -i "$TMP/bg-0.rds" --algo heft --id "chaos-$n" --seed "$n" \
    --connect "$ADDR_R2" >/dev/null \
    || fail "chaos job chaos-$n did not survive reply drops"
done
stop R2
stop C
grep -q '^net chaos ' "$TMP/C.err" || fail "chaos shard printed no transport counters"
DROPPED=$(sed -n 's/^net chaos .*: [0-9]* refused \/ \([0-9]*\) replies dropped.*/\1/p' "$TMP/C.err")
[ "${DROPPED:-0}" -ge 1 ] || fail "drop rate 0.5 never fired: $(cat "$TMP/C.err")"

# --- 3. Routed load → BENCH_serve.json. ----------------------------------
spawn D "$RDS" serve --workers 2 --listen "$ADDR_D" \
  --peers "$ADDR_D,$ADDR_E" --shard-index 0
spawn E "$RDS" serve --workers 2 --listen "$ADDR_E" \
  --peers "$ADDR_D,$ADDR_E" --shard-index 1
"$LOADGEN" --shards "$ADDR_D,$ADDR_E" --jobs 60 --threads 4 \
  --tasks 24 --procs 3 --instances 6 --heavy-frac 0.25 --generations 12 \
  --hedge-ms 250 --seed 7 --out "$TMP/routed.json" > /dev/null \
  || fail "loadgen run failed"
stop E
stop D

python3 - "$TMP/routed.json" "$OUT" <<'PY'
import json
import sys

routed_path, out_path = sys.argv[1], sys.argv[2]
with open(routed_path) as f:
    routed = json.load(f)["routed"]

if routed["ok"] == 0:
    print("serve_net_quick: FAIL: loadgen completed no jobs", file=sys.stderr)
    sys.exit(1)
if routed["errors"] != 0:
    print(f"serve_net_quick: FAIL: routed errors: {routed['errors']}", file=sys.stderr)
    sys.exit(1)

try:
    with open(out_path) as f:
        snapshot = json.load(f)
except FileNotFoundError:
    snapshot = {}
snapshot["routed"] = routed
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(
    f"serve_net_quick: wrote {out_path} "
    f"(p50 {routed['p50_ms']:.1f} ms / p95 {routed['p95_ms']:.1f} ms / "
    f"p99 {routed['p99_ms']:.1f} ms, {routed['hedges']} hedges, "
    f"{routed['failovers']} failovers)"
)
PY

echo "serve_net_quick: all checks passed"

//! The paper's worked example (Figure 1): an 8-task graph on a 4-processor
//! system, the schedule of Fig. 1(c), and the disjunctive graph of
//! Fig. 1(d) with its slack decomposition.
//!
//! ```sh
//! cargo run --release --example paper_example
//! ```

use rds::graph::dag::fig1_example;
use rds::graph::dot::{to_dot, DotOptions};
use rds::prelude::*;
use rds::sched::disjunctive::DisjunctiveGraph;
use rds::sched::slack;
use rds::sched::timing::{evaluate_with_durations, expected_durations};

fn main() {
    // Fig. 1(a): tasks v1..v8 (0-indexed here as v0..v7), uniform data.
    let graph = fig1_example(10.0);
    println!("=== task graph (Fig. 1a) ===");
    println!("{}", to_dot(&graph, &DotOptions::default()));

    // Fig. 1(b): 4 fully connected processors, unit transfer rates.
    let platform = Platform::uniform(4, 1.0).expect("valid platform");

    // Expected durations: the paper's figure draws uniform-looking task
    // boxes; use 2 time units per task on every processor.
    let bcet = Matrix::filled(8, 4, 2.0);
    let timing = TimingModel::deterministic(bcet).expect("valid timing");
    let inst = Instance::new(graph.clone(), platform, timing).expect("consistent instance");

    // Fig. 1(c): s = {{(v1,v2),(v2,v4)}, {(v3,v5),(v5,v8)}, {(v6,v7)}, {}}.
    let t = |i: u32| TaskId(i - 1);
    let schedule = Schedule::from_proc_lists(
        8,
        vec![
            vec![t(1), t(2), t(4)],
            vec![t(3), t(5), t(8)],
            vec![t(6), t(7)],
            vec![],
        ],
    )
    .expect("well-formed schedule");
    println!("=== schedule (Fig. 1c) ===\n{schedule}");
    for p in inst.platform.procs() {
        let pairs = schedule.pairs_on(p);
        if !pairs.is_empty() {
            let text: Vec<String> = pairs
                .iter()
                .map(|(a, b)| format!("(v{},v{})", a.0 + 1, b.0 + 1))
                .collect();
            println!("s_{} = {{{}}}", p.0 + 1, text.join(", "));
        }
    }

    // Fig. 1(d): the disjunctive graph; E' edges are dashed in the DOT.
    let ds = DisjunctiveGraph::build(&inst.graph, &schedule).expect("valid schedule");
    println!("\n=== disjunctive graph (Fig. 1d, E' dashed) ===");
    println!("{}", ds.to_dot(&inst.graph));
    println!("|E'| = {}", ds.disjunctive_edge_count());

    // Timing and slack under the expected durations (Claim 3.2 /
    // Definition 3.3).
    let durations = expected_durations(&inst.timing, &schedule);
    let timed = evaluate_with_durations(&ds, &schedule, &inst.platform, &durations);
    let analysis = slack::analyze(&ds, &schedule, &inst.platform, &durations);
    println!("=== timing (expected durations) ===");
    println!("makespan M = {:.1}", timed.makespan);
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "task", "start", "finish", "Tl", "Bl", "slack"
    );
    for task in inst.graph.tasks() {
        println!(
            "{:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            format!("v{}", task.0 + 1),
            timed.start_of(task),
            timed.finish_of(task),
            analysis.top_level[task.index()],
            analysis.bottom_level[task.index()],
            analysis.slack_of(task),
        );
    }
    let critical: Vec<String> = analysis
        .critical_tasks()
        .iter()
        .map(|c| format!("v{}", c.0 + 1))
        .collect();
    println!("\ncritical tasks (zero slack): {}", critical.join(", "));
    println!("average slack = {:.2}", analysis.average_slack);

    // Theorem 3.4 demonstrated: inflate a slack-bearing task by its slack.
    if let Some(&victim) = analysis
        .slack
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s > 0.0)
        .map(|(i, _)| i)
        .collect::<Vec<_>>()
        .first()
    {
        let vt = TaskId(victim as u32);
        let sigma = analysis.slack_of(vt);
        let mut inflated = durations.clone();
        inflated[victim] += sigma;
        let m = evaluate_with_durations(&ds, &schedule, &inst.platform, &inflated).makespan;
        println!(
            "\nTheorem 3.4: inflating v{} by its slack {:.1} keeps M = {:.1} (was {:.1})",
            vt.0 + 1,
            sigma,
            m,
            timed.makespan
        );
        inflated[victim] += 1.0;
        let m2 = evaluate_with_durations(&ds, &schedule, &inst.platform, &inflated).makespan;
        println!("            one unit beyond the slack extends it to {m2:.1}");
    }
}

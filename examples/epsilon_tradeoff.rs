//! The makespan/robustness trade-off: sweep ε, print the frontier, extract
//! the Pareto front, and report the best ε for several user weights `r`
//! (Eq. 9) — the decision-support workflow of §5.2.
//!
//! ```sh
//! cargo run --release --example epsilon_tradeoff
//! ```

use rds::core::overall::{best_epsilon_for, paper_r_grid, RobustnessKind};
use rds::core::pareto::{pareto_front, ParetoPoint};
use rds::prelude::*;

fn main() {
    let inst = InstanceSpec::new(60, 8)
        .seed(31)
        .uncertainty_level(6.0)
        .build()
        .expect("valid instance");

    let heft = heft_schedule(&inst);
    let mc = RealizationConfig::with_realizations(600).seed(3);
    let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("valid");
    println!(
        "HEFT: M0 = {:.1}, slack = {:.2}, R1 = {:.2}, R2 = {:.2}",
        heft_rep.expected_makespan, heft_rep.average_slack, heft_rep.r1, heft_rep.r2
    );

    // Sweep eps over the paper's 1.0..2.0 range.
    let epsilons: Vec<f64> = (0..=5).map(|i| 1.0 + 0.2 * f64::from(i)).collect();
    let mut cfg = SweepConfig::quick().seed(11);
    cfg.ga = GaParams::paper().max_generations(200).stall_generations(50);
    cfg.realizations = 600;
    let points = epsilon_sweep(&inst, &epsilons, &cfg);

    println!(
        "\n{:>6} {:>10} {:>10} {:>10} {:>10}",
        "eps", "M0", "slack", "R1", "R2"
    );
    for p in &points {
        println!(
            "{:>6.1} {:>10.1} {:>10.2} {:>10.2} {:>10.2}",
            p.epsilon, p.makespan, p.avg_slack, p.r1, p.r2
        );
    }

    // Pareto front in (makespan down, slack up).
    let pp: Vec<ParetoPoint> = points
        .iter()
        .map(|p| ParetoPoint {
            makespan: p.makespan,
            slack: p.avg_slack,
            tag: p.epsilon,
        })
        .collect();
    let front = pareto_front(&pp);
    println!("\nPareto-optimal eps values:");
    for f in &front {
        println!(
            "  eps = {:.1}: M0 = {:.1}, slack = {:.2}",
            f.tag, f.makespan, f.slack
        );
    }

    // Best eps per user weight r (Eq. 9 with R1).
    let picks = best_epsilon_for(
        &points,
        RobustnessKind::R1,
        &paper_r_grid(),
        heft_rep.mean_makespan,
        heft_rep.r1,
    );
    println!("\nbest eps per r (overall performance, R1):");
    for (r, eps) in picks {
        println!("  r = {r:.1} -> eps = {eps:.1}");
    }
    println!("\nLarge r (makespan-focused) favours tight eps; small r favours relaxed eps.");
}

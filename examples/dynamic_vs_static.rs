//! Static-robust vs dynamic scheduling: the two answers to uncertainty
//! that the paper's introduction contrasts, compared head-to-head on the
//! same realizations.
//!
//! * **Static HEFT** plans once with expected durations and never adapts.
//! * **Static robust GA** (the paper's contribution) also plans once, but
//!   buys slack within an ε makespan budget.
//! * **Dynamic EFT** re-decides at run time as actual durations unfold.
//!
//! ```sh
//! cargo run --release --example dynamic_vs_static
//! ```

use rds::prelude::*;
use rds::sched::dynamic::{dynamic_makespans, DynamicPriority};
use rds::stats::describe::Summary;

fn main() {
    let realizations = 600;
    println!(
        "{:>5} {:>22} {:>12} {:>10} {:>10}",
        "UL", "scheduler", "mean M", "p95 M", "CoV"
    );
    for ul in [2.0, 4.0, 8.0] {
        let inst = InstanceSpec::new(50, 6)
            .seed(1234)
            .uncertainty_level(ul)
            .build()
            .expect("valid instance");

        // Static HEFT.
        let heft = heft_schedule(&inst);
        let mc = RealizationConfig::with_realizations(realizations).seed(9);
        let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("valid");

        // Static robust GA at eps = 1.2.
        let outcome = RobustScheduler::new(
            RobustConfig::new(1.2)
                .seed(5)
                .ga(GaParams::paper().max_generations(200).stall_generations(50))
                .realizations(realizations),
        )
        .solve(&inst)
        .expect("solver succeeds");

        // Dynamic EFT with upward-rank priorities.
        let dyn_ms = dynamic_makespans(&inst, DynamicPriority::UpwardRank, realizations, 9);
        let dyn_sum = Summary::from_samples(dyn_ms);

        let row = |name: &str, mean: f64, p95: f64, cov: f64| {
            println!("{ul:>5.1} {name:>22} {mean:>12.1} {p95:>10.1} {cov:>10.3}");
        };
        row(
            "HEFT (static)",
            heft_rep.mean_makespan,
            heft_rep.makespans.quantile(0.95),
            heft_rep.makespan_cov(),
        );
        let ga_rep = &outcome.report;
        // Re-derive quantiles from a fresh MC for the GA schedule.
        let ga_mc = monte_carlo(&inst, &outcome.schedule, &mc).expect("valid");
        row(
            "robust GA (static)",
            ga_rep.mean_realized_makespan,
            ga_mc.makespans.quantile(0.95),
            ga_mc.makespan_cov(),
        );
        row(
            "EFT (dynamic)",
            dyn_sum.mean(),
            dyn_sum.quantile(0.95),
            dyn_sum.std_dev() / dyn_sum.mean(),
        );
        println!();
    }
    println!(
        "Reading: the dynamic dispatcher reacts to reality and usually wins on\n\
         raw speed, but it promises nothing in advance; the robust GA gives a\n\
         *predictable* makespan (low CoV around its declared M0) at a bounded\n\
         premium — which is the paper's value proposition for environments\n\
         where a schedule is a contract (reservations, co-allocations)."
    );
}

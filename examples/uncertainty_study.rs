//! How does the value of robust scheduling change with the environment's
//! uncertainty? Sweep the average uncertainty level UL over the paper's
//! range and compare HEFT against the robust GA at a fixed ε — the
//! single-instance analogue of Figure 4.
//!
//! ```sh
//! cargo run --release --example uncertainty_study
//! ```

use rds::prelude::*;

fn main() {
    let seed = 77;
    let eps = 1.2;
    println!("UL sweep on one 50-task/6-proc workload, eps = {eps}\n");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "UL", "M0 (HEFT)", "M0 (GA)", "R1 (HEFT)", "R1 (GA)", "a (HEFT)", "a (GA)"
    );

    for ul in [2.0, 4.0, 6.0, 8.0] {
        // Same graph and BCET matrix at every UL (only the UL matrix
        // varies) — the paper's sweep design.
        let inst = InstanceSpec::new(50, 6)
            .seed(seed)
            .uncertainty_level(ul)
            .build()
            .expect("valid instance");

        let outcome = RobustScheduler::new(
            RobustConfig::new(eps)
                .seed(5)
                .ga(GaParams::paper().max_generations(200).stall_generations(50))
                .realizations(800),
        )
        .solve(&inst)
        .expect("solver succeeds");

        println!(
            "{:>5.1} {:>12.1} {:>12.1} {:>10.2} {:>10.2} {:>10.3} {:>10.3}",
            ul,
            outcome.heft_report.expected_makespan,
            outcome.report.expected_makespan,
            outcome.heft_report.r1,
            outcome.report.r1,
            outcome.heft_report.miss_rate,
            outcome.report.miss_rate,
        );
    }

    println!(
        "\nReading: at every uncertainty level the GA's schedule keeps its\n\
         expected makespan within eps x HEFT while achieving a higher R1\n\
         (overruns are relatively smaller). The paper's Figure 4 shows the\n\
         improvement is largest at low UL — at high UL the bounded extra\n\
         slack cannot absorb the (much larger) duration variance."
    );
}

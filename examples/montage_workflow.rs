//! Robust scheduling of a realistic scientific workflow: a Montage-style
//! astronomy mosaicking pipeline on a heterogeneous cluster whose node
//! performance fluctuates (shared filesystem, co-tenant jobs).
//!
//! Demonstrates assembling an [`Instance`] from a *structured* workflow
//! (not the random generator), heterogeneous transfer rates, and comparing
//! HEFT / CPOP / the robust GA at two ε values.
//!
//! ```sh
//! cargo run --release --example montage_workflow
//! ```

use rds::graph::gen::workflows::montage;
use rds::prelude::*;
use rds::stats::rng::SeedStream;

fn main() {
    let images = 12;
    let graph = montage(images, 50.0); // 50 MB between stages
    let n = graph.task_count();
    println!(
        "Montage workflow: {images} input images -> {n} tasks, {} edges",
        graph.edge_count()
    );

    // 6 nodes; link bandwidths spread over a 4x span (shared switch).
    let platform = PlatformSpec::uniform(6)
        .heterogeneous(4.0)
        .base_rate(10.0) // 10 MB per time unit
        .generate(99)
        .expect("valid platform");

    // Execution times: projections and background corrections are
    // data-parallel and comparable; the fits and the final co-add are
    // heavier. Build a BCET matrix with per-stage means and machine
    // heterogeneity via the COV method.
    let seeds = SeedStream::new(4242);
    let stage_mean = |task: usize| -> f64 {
        // Layout (see rds_graph::gen::workflows::montage):
        //   [0, w)            mProject    : 20
        //   [w, 2w-1)         mDiffFit    : 8
        //   2w-1               mConcatFit : 5
        //   2w                 mBgModel   : 15
        //   [2w+1, 3w+1)      mBackground : 10
        //   3w+1               mImgtbl    : 4
        //   3w+2               mAdd       : 30
        let w = images;
        match task {
            t if t < w => 20.0,
            t if t < 2 * w - 1 => 8.0,
            t if t == 2 * w - 1 => 5.0,
            t if t == 2 * w => 15.0,
            t if t < 3 * w + 1 => 10.0,
            t if t == 3 * w + 1 => 4.0,
            _ => 30.0,
        }
    };
    let mut rng = seeds.branch("bcet").nth_rng(0);
    let bcet = Matrix::from_fn(n, 6, |t, _| {
        let g = rds::stats::dist::Gamma::with_mean_cov(stage_mean(t), 0.3).expect("valid gamma");
        g.sample(&mut rng).max(0.5)
    });
    // Uncertainty: I/O-heavy stages (projections, co-add) fluctuate more.
    let mut ul_rng = seeds.branch("ul").nth_rng(0);
    let ul = Matrix::from_fn(n, 6, |t, _| {
        let base = if stage_mean(t) >= 20.0 { 3.0 } else { 1.5 };
        let g = rds::stats::dist::Gamma::with_mean_cov(base, 0.3).expect("valid gamma");
        g.sample(&mut ul_rng).max(1.0)
    });
    let timing = TimingModel::new(bcet, ul).expect("valid timing");
    let inst = Instance::new(graph, platform, timing).expect("consistent instance");

    // Baselines.
    let heft = heft_schedule(&inst);
    let cpop = cpop_schedule(&inst);
    let mc = RealizationConfig::with_realizations(1000).seed(5);
    let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("valid");
    let cpop_rep = monte_carlo(&inst, &cpop.schedule, &mc).expect("valid");

    println!(
        "\n{:<22} {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "M0", "slack", "R1", "miss rate"
    );
    let row = |name: &str, r: &RobustnessReport| {
        println!(
            "{:<22} {:>10.1} {:>10.2} {:>10.2} {:>10.3}",
            name, r.expected_makespan, r.average_slack, r.r1, r.miss_rate
        );
    };
    row("HEFT", &heft_rep);
    row("CPOP", &cpop_rep);

    for eps in [1.1, 1.4] {
        let outcome = RobustScheduler::new(
            RobustConfig::new(eps)
                .seed(17)
                .ga(GaParams::paper().max_generations(250).stall_generations(60))
                .realizations(1000),
        )
        .solve(&inst)
        .expect("solver succeeds");
        let r = &outcome.report;
        println!(
            "{:<22} {:>10.1} {:>10.2} {:>10.2} {:>10.3}",
            format!("robust GA (eps={eps})"),
            r.expected_makespan,
            r.average_slack,
            r.r1,
            r.miss_rate
        );
    }

    println!(
        "\nReading: the robust schedules trade a bounded increase of the\n\
         expected makespan for more slack, which absorbs node slowdowns —\n\
         higher R1 (rarer and smaller overruns) at the same miss budget."
    );
}

//! The island-model GA and population-diversity diagnostics.
//!
//! Compares one big population against several migrating islands at an
//! equal evaluation budget, and shows how diversity decays during a run —
//! the premature-convergence risk the paper's §4.2.2 uniqueness filter
//! guards against.
//!
//! ```sh
//! cargo run --release --example islands_and_diversity
//! ```

use rds::ga::diversity::{assignment_entropy, unique_fraction};
use rds::ga::islands::{run_islands, IslandParams};
use rds::prelude::*;

fn main() {
    let inst = InstanceSpec::new(60, 6)
        .seed(909)
        .uncertainty_level(4.0)
        .build()
        .expect("valid instance");
    let heft = heft_schedule(&inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.4,
        reference_makespan: heft.makespan,
    };

    // Equal budget: 1 x 40 population vs 4 x 10 islands, 200 generations.
    let single = GaEngine::new(
        &inst,
        GaParams::paper()
            .population(40)
            .max_generations(200)
            .stall_generations(200)
            .seed(1),
        objective,
    )
    .run();

    let mut ip = IslandParams::new(
        GaParams::paper()
            .population(10)
            .max_generations(200)
            .stall_generations(200)
            .seed(1),
    );
    ip.islands = 4;
    ip.migration_interval = 25;
    ip.migrants = 2;
    let islands = run_islands(&inst, ip, objective);

    println!("equal budget (8000 evaluations), eps = 1.4:");
    println!(
        "  single 1x40 population: slack {:8.2}  (makespan {:.1})",
        single.best_eval.avg_slack, single.best_eval.makespan
    );
    println!(
        "  islands 4x10 + ring migration: slack {:8.2}  (makespan {:.1})",
        islands.best_eval.avg_slack, islands.best_eval.makespan
    );
    println!(
        "  per-island bests: {:?}",
        islands
            .island_bests
            .iter()
            .map(|e| (e.avg_slack * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    // Diversity decay along a single-population run.
    println!("\ndiversity along the single-population run:");
    println!("{:>12} {:>10} {:>10}", "generation", "unique", "entropy");
    for gens in [1usize, 25, 100, 200] {
        let r = GaEngine::new(
            &inst,
            GaParams::paper()
                .population(40)
                .max_generations(gens)
                .stall_generations(gens)
                .seed(1),
            objective,
        )
        .run();
        println!(
            "{:>12} {:>10.2} {:>10.3}",
            gens,
            unique_fraction(&r.final_population),
            assignment_entropy(&r.final_population, inst.proc_count()),
        );
    }
    println!(
        "\nSelection collapses assignment entropy within a few dozen generations.\n\
         Note the honest trade-off above: at this instance size a single large\n\
         population typically finds MORE slack per evaluation than 4 small\n\
         islands — the island model's payoff is wall-clock (islands evolve in\n\
         parallel) and resistance to the entropy collapse shown here, not\n\
         per-evaluation quality."
    );
}

//! Quickstart: generate a random heterogeneous workload, schedule it with
//! HEFT, then find a more robust schedule with the ε-constraint GA and
//! compare both in the simulated non-deterministic environment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rds::prelude::*;

fn main() {
    // A random 50-task workload on 6 heterogeneous processors with
    // moderate uncertainty (average UL = 4: tasks take on average 4x their
    // best-case time, with per-(task, processor) variability).
    let inst = InstanceSpec::new(50, 6)
        .seed(2024)
        .uncertainty_level(4.0)
        .build()
        .expect("valid instance");

    println!(
        "instance: {} tasks, {} processors, {} edges",
        inst.task_count(),
        inst.proc_count(),
        inst.graph.edge_count()
    );

    // Baseline: HEFT with expected execution times.
    let heft = heft_schedule(&inst);
    println!("\nHEFT expected makespan: {:.2}", heft.makespan);

    // Robust schedule: maximize average slack subject to the expected
    // makespan staying within 1.3x HEFT.
    let config = RobustConfig::new(1.3)
        .seed(7)
        .ga(GaParams::paper().max_generations(200).stall_generations(50))
        .realizations(500);
    let outcome = RobustScheduler::new(config)
        .solve(&inst)
        .expect("solver succeeds");

    println!("\n=== HEFT under uncertainty ===");
    println!("{}", ScheduleReport::to_pretty_string(&outcome.heft_report));
    println!("\n=== robust (eps = 1.3) under uncertainty ===");
    println!("{}", ScheduleReport::to_pretty_string(&outcome.report));

    println!(
        "\nmakespan ratio (robust / HEFT): {:.3}",
        outcome.makespan_ratio()
    );
    if outcome.r1_ratio().is_finite() {
        println!("R1 ratio (robust / HEFT):       {:.3}", outcome.r1_ratio());
    }
    println!(
        "\nGA: {} generations, best feasible = {}",
        outcome.ga.generations, outcome.ga.best_feasible
    );
    println!("\nrobust schedule:\n{}", outcome.schedule);
}

//! Approximating the whole makespan/slack Pareto front two ways:
//!
//! 1. the paper's **ε-constraint** method — one GA run per ε value;
//! 2. **NSGA-II** — a single multi-objective run (the evolutionary
//!    alternative from Deb's book, which the paper cites for MOOP
//!    background).
//!
//! Both fronts are scored by hypervolume against a common reference point
//! and by mutual coverage.
//!
//! ```sh
//! cargo run --release --example pareto_front
//! ```

use rds::core::pareto::{coverage, hypervolume, pareto_front, ParetoPoint};
use rds::ga::nsga2::nsga2;
use rds::prelude::*;

fn main() {
    let inst = InstanceSpec::new(50, 6)
        .seed(404)
        .uncertainty_level(4.0)
        .build()
        .expect("valid instance");
    let heft = heft_schedule(&inst);
    println!(
        "instance: {} tasks / {} procs, HEFT M0 = {:.1}",
        inst.task_count(),
        inst.proc_count(),
        heft.makespan
    );

    // --- epsilon-constraint sweep (the paper's method) ---
    let epsilons: Vec<f64> = (0..=8).map(|i| 1.0 + 0.125 * f64::from(i)).collect();
    let mut cfg = SweepConfig::quick().seed(7);
    cfg.ga = GaParams::paper().max_generations(120).stall_generations(40);
    cfg.realizations = 100;
    let sweep = epsilon_sweep(&inst, &epsilons, &cfg);
    let eps_points: Vec<ParetoPoint> = sweep
        .iter()
        .map(|p| ParetoPoint {
            makespan: p.makespan,
            slack: p.avg_slack,
            tag: p.epsilon,
        })
        .collect();

    // --- NSGA-II: one run, whole front ---
    let params = GaParams::paper()
        .seed(7)
        .population(40)
        .max_generations(120);
    let moo = nsga2(&inst, params);
    let moo_points: Vec<ParetoPoint> = moo
        .front
        .iter()
        .map(|p| ParetoPoint {
            makespan: p.eval.makespan,
            slack: p.eval.avg_slack,
            tag: 0.0,
        })
        .collect();

    let show = |name: &str, pts: &[ParetoPoint]| {
        println!("\n{name} front ({} points):", pareto_front(pts).len());
        for p in pareto_front(pts) {
            println!("  M0 = {:>8.1}  slack = {:>8.2}", p.makespan, p.slack);
        }
    };
    show("eps-constraint", &eps_points);
    show("NSGA-II", &moo_points);

    // Common reference: a bit beyond the worst makespan, zero slack.
    let ref_mk = eps_points
        .iter()
        .chain(&moo_points)
        .map(|p| p.makespan)
        .fold(0.0, f64::max)
        * 1.05;
    let hv_eps = hypervolume(&eps_points, ref_mk, 0.0);
    let hv_moo = hypervolume(&moo_points, ref_mk, 0.0);
    println!("\nhypervolume (ref makespan {ref_mk:.1}, ref slack 0):");
    println!("  eps-constraint: {hv_eps:.0}");
    println!("  NSGA-II:        {hv_moo:.0}");
    println!(
        "coverage C(eps, nsga2) = {:.2}, C(nsga2, eps) = {:.2}",
        coverage(&eps_points, &moo_points),
        coverage(&moo_points, &eps_points)
    );
    println!(
        "\nThe eps-constraint method spends one full GA per point but inherits\n\
         the HEFT anchor at every eps; NSGA-II covers the front in one run.\n\
         Pick eps-constraint when you need a *specific* makespan bound (the\n\
         paper's use case), NSGA-II for a fast overview of the trade-off."
    );
}

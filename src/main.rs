//! `rds` — command-line front end for the robust-scheduling library.
//!
//! ```text
//! rds gen      --tasks 60 --procs 8 --ul 4 --seed 1 -o inst.rds
//! rds info     -i inst.rds
//! rds schedule -i inst.rds --algo ga --epsilon 1.3 -o sched.rds
//! rds eval     -i inst.rds -s sched.rds --realizations 1000
//! rds gantt    -i inst.rds -s sched.rds [--svg chart.svg]
//! rds serve    --workers 4 --queue-cap 64 --cache-cap 128
//! rds submit   -i inst.rds --algo ga --epsilon 1.3 --deadline-ms 2000
//! ```
//!
//! Instances and schedules use the plain-text formats of
//! [`rds::sched::io`], so everything the CLI produces can be archived,
//! diffed and re-read by the library.

use std::collections::HashMap;
use std::process::ExitCode;

use rds::core::prelude::*;
use rds::ga::objective::evaluate as evaluate_chromosome;
use rds::ga::Chromosome;
use rds::sched::gantt::{ascii_gantt, svg_gantt};
use rds::sched::io;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: rds <gen|info|schedule|eval|gantt|serve|route|submit> [flags]

  gen      --tasks N --procs M [--ul U] [--ccr C] [--alpha A] [--seed S] -o FILE
  info     -i INSTANCE
  schedule -i INSTANCE --algo heft|cpop|laheft|sheft|ga|random|sa
           [--epsilon E] [--k K] [--seed S] [--generations G] -o FILE
  eval     -i INSTANCE -s SCHEDULE [--realizations N] [--seed S] [--law uniform|normal|exp]
  gantt    -i INSTANCE -s SCHEDULE [--width W] [--svg FILE] [--trace FILE]
  serve    [--workers N] [--queue-cap N] [--cache-cap N] [--hold 1]
           [--online-floor P] [--online-samples N]
           [--journal FILE [--recover 1] [--journal-compact-every N]]
           [--max-attempts N] [--job-timeout-ms D]
           [--brownout 1 [--brownout-degrade D --brownout-shed D
            --brownout-open D] [--brownout-retry-ms MS]]
           [--rate-per-sec R [--rate-burst B]: per-client token-bucket
            admission keyed on the job envelope's client field]
           [--chaos-seed S [--chaos-panic-rate P] [--chaos-stall-rate P]
            [--chaos-stall-ms MS] [--chaos-journal-error-rate P]
            [--chaos-kill-at BYTES] [--chaos-net-refuse-rate P]
            [--chaos-net-cut-rate P] [--chaos-net-drop-rate P]
            [--chaos-net-stall-rate P] [--chaos-net-stall-ms MS]]
           [--listen HOST:PORT [--peers A,B,..] [--shard-index I]
            [--net-max-frame BYTES] [--net-max-inflight N]
            [--net-idle-timeout-ms MS]: serve the envelope protocol over
            TCP instead of stdin; prints the bound address, runs until
            stdin closes]
           without --listen: reads rds-job envelopes from stdin, writes
           rds-result envelopes to stdout, metrics to stderr at shutdown
  route    --shards A,B,.. [--listen HOST:PORT] [--retries N]
           [--hedge-ms MS] [--health-interval-ms MS] [--io-timeout-ms MS]
           [--seed S] [--rate-per-sec R [--rate-burst B]]
           failover front tier: routes jobs to shards by instance
           fingerprint, retries around dead shards with seeded backoff,
           hedges stragglers; prints the bound address, runs until stdin
           closes, metrics to stderr at shutdown
  submit   -i INSTANCE [--algo A] [--epsilon E] [--seed S] [--generations G]
           [--deadline-ms D] [--timeout MS] [--lane express|online|heavy]
           [--objective epsilon|tri [--rel-min R]: tri adds energy and a
            reliability floor (ga only)] [--client NAME]
           [--id ID] [--arrival T --deadline T: online job in simulated time]
           [-o FILE] [--emit 1: print the job envelope instead of running it]
           [--connect HOST:PORT: send to a networked shard or router
            instead of a local serve child]
           exits non-zero on failed, rejected, or deadline-missing jobs
           and on connect/timeout failures against --connect";

/// Parses `--flag value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !flag.starts_with('-') {
            return Err(format!("unexpected positional argument '{flag}'"));
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        flags.insert(flag.trim_start_matches('-').to_owned(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        Some(v) => v
            .parse::<T>()
            .map_err(|e| format!("invalid --{key} '{v}': {e}")),
        None => Ok(default),
    }
}

fn require<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}\n\n{USAGE}"))
}

fn load_instance(flags: &HashMap<String, String>) -> Result<Instance, String> {
    let path = require(flags, "i")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    io::read_instance(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_schedule(flags: &HashMap<String, String>) -> Result<Schedule, String> {
    let path = require(flags, "s")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    io::read_schedule(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// The instance and schedule files must describe the same problem.
fn check_compatible(inst: &Instance, schedule: &Schedule) -> Result<(), String> {
    if schedule.task_count() != inst.task_count() {
        return Err(format!(
            "schedule has {} tasks but instance has {} — mismatched files?",
            schedule.task_count(),
            inst.task_count()
        ));
    }
    if schedule.proc_count() != inst.proc_count() {
        return Err(format!(
            "schedule has {} processors but instance has {}",
            schedule.proc_count(),
            inst.proc_count()
        ));
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(USAGE.to_owned());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "info" => cmd_info(&flags),
        "schedule" => cmd_schedule(&flags),
        "eval" => cmd_eval(&flags),
        "gantt" => cmd_gantt(&flags),
        "serve" => cmd_serve(&flags),
        "route" => cmd_route(&flags),
        "submit" => cmd_submit(&flags),
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let tasks: usize = get(flags, "tasks", 60)?;
    let procs: usize = get(flags, "procs", 8)?;
    let ul: f64 = get(flags, "ul", 2.0)?;
    let ccr: f64 = get(flags, "ccr", 0.1)?;
    let alpha: f64 = get(flags, "alpha", 1.0)?;
    let seed: u64 = get(flags, "seed", 0)?;
    let out = require(flags, "o")?;

    let inst = InstanceSpec::new(tasks, procs)
        .seed(seed)
        .uncertainty_level(ul)
        .ccr(ccr)
        .alpha(alpha)
        .build()?;
    std::fs::write(out, io::write_instance(&inst)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} tasks, {} procs, {} edges, avg UL {:.2}",
        inst.task_count(),
        inst.proc_count(),
        inst.graph.edge_count(),
        inst.timing.ul_matrix().mean()
    );
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let heft = heft_schedule(&inst);
    let hops = rds::graph::paths::critical_path_length(&inst.graph, |_| 1.0, |_, _, _| 0.0);
    println!("tasks          : {}", inst.task_count());
    println!("processors     : {}", inst.proc_count());
    println!("edges          : {}", inst.graph.edge_count());
    println!(
        "entry/exit     : {} / {}",
        inst.graph.entries().len(),
        inst.graph.exits().len()
    );
    println!("depth (hops)   : {hops}");
    println!("mean BCET      : {:.3}", inst.timing.bcet_matrix().mean());
    println!("mean UL        : {:.3}", inst.timing.ul_matrix().mean());
    println!("HEFT makespan  : {:.3}", heft.makespan);
    Ok(())
}

fn cmd_schedule(flags: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let algo = require(flags, "algo")?;
    let out = require(flags, "o")?;
    let seed: u64 = get(flags, "seed", 0)?;

    let schedule = match algo {
        "heft" => heft_schedule(&inst).schedule,
        "cpop" => cpop_schedule(&inst).schedule,
        "laheft" => rds::heft::lookahead_heft_schedule(&inst).schedule,
        "sheft" => {
            let k: f64 = get(flags, "k", 1.0)?;
            rds::heft::sheft_schedule(&inst, k).schedule
        }
        "random" => {
            let mut rng = rds::stats::rng::rng_from_seed(seed);
            random_schedule(&inst, &mut rng)
        }
        "ga" => {
            let epsilon: f64 = get(flags, "epsilon", 1.3)?;
            let generations: usize = get(flags, "generations", 300)?;
            let cfg = RobustConfig::new(epsilon)
                .seed(seed)
                .ga(GaParams::paper()
                    .max_generations(generations)
                    .stall_generations((generations / 5).max(10)))
                .realizations(1); // report computed separately by `eval`
            RobustScheduler::new(cfg)
                .solve(&inst)
                .map_err(|e| e.to_string())?
                .schedule
        }
        "sa" => {
            let epsilon: f64 = get(flags, "epsilon", 1.3)?;
            let heft = heft_schedule(&inst);
            let obj = Objective::EpsilonConstraint {
                epsilon,
                reference_makespan: heft.makespan,
            };
            let sa = rds::anneal::anneal(&inst, rds::anneal::SaParams::default().seed(seed), obj);
            sa.best.decode(inst.proc_count())
        }
        other => {
            return Err(format!(
                "unknown --algo '{other}' (heft|cpop|laheft|sheft|ga|random|sa)"
            ))
        }
    };

    // Report the expected metrics before writing.
    let c = Chromosome::from_schedule(&inst.graph, &schedule);
    let ev = evaluate_chromosome(&inst, &c);
    std::fs::write(out, io::write_schedule(&schedule))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: algo={algo}, expected makespan {:.3}, average slack {:.3}",
        ev.makespan, ev.avg_slack
    );
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut inst = load_instance(flags)?;
    let schedule = load_schedule(flags)?;
    check_compatible(&inst, &schedule)?;
    let realizations: usize = get(flags, "realizations", 1000)?;
    let seed: u64 = get(flags, "seed", 0)?;
    if let Some(law) = flags.get("law") {
        use rds::platform::RealizationLaw;
        let law = match law.as_str() {
            "uniform" => RealizationLaw::Uniform,
            "normal" => RealizationLaw::TruncatedNormal,
            "exp" | "exponential" => RealizationLaw::ShiftedExponential,
            other => return Err(format!("unknown --law '{other}' (uniform|normal|exp)")),
        };
        let timing = inst.timing.clone().with_law(law);
        inst = Instance::new(inst.graph, inst.platform, timing)
            .map_err(|e| format!("instance became inconsistent after law swap: {e}"))?;
    }
    let mc = RealizationConfig::with_realizations(realizations).seed(seed);
    let rep = monte_carlo(&inst, &schedule, &mc)
        .map_err(|_| "schedule is incompatible with the instance's precedence constraints")?;
    println!(
        "{}",
        ScheduleReport::from_robustness(&rep).to_pretty_string()
    );
    println!("makespan CoV       : {:>10.4}", rep.makespan_cov());
    println!("p95/M0 ratio       : {:>10.4}", rep.quantile_ratio(0.95));
    println!("P(M <= 1.1 M0)     : {:>10.4}", rep.prob_within(0.1));
    let hist = rds::stats::Histogram::from_samples(rep.makespans.sorted(), 40);
    println!(
        "distribution       : {:.1} {} {:.1}",
        rep.makespans.min(),
        hist.sparkline(),
        rep.makespans.max()
    );
    Ok(())
}

fn cmd_gantt(flags: &HashMap<String, String>) -> Result<(), String> {
    let inst = load_instance(flags)?;
    let schedule = load_schedule(flags)?;
    check_compatible(&inst, &schedule)?;
    let timed =
        rds::sched::timing::evaluate_expected(&inst.graph, &inst.platform, &inst.timing, &schedule)
            .map_err(|_| "schedule is incompatible with the instance's precedence constraints")?;
    if let Some(trace_path) = flags.get("trace") {
        let json = rds::sched::trace::to_chrome_trace(&schedule, &timed);
        std::fs::write(trace_path, json).map_err(|e| format!("writing {trace_path}: {e}"))?;
        println!("wrote {trace_path} (open in chrome://tracing or Perfetto)");
    } else if let Some(svg_path) = flags.get("svg") {
        let svg = svg_gantt(&schedule, &timed, 900);
        std::fs::write(svg_path, svg).map_err(|e| format!("writing {svg_path}: {e}"))?;
        println!("wrote {svg_path}");
    } else {
        let width: usize = get(flags, "width", 100)?;
        print!("{}", ascii_gantt(&schedule, &timed, width));
    }
    Ok(())
}

/// Parses an optional `--flag value`: absent flag stays `None`.
fn get_opt<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    flags
        .get(key)
        .map(|v| {
            v.parse::<T>()
                .map_err(|e| format!("invalid --{key} '{v}': {e}"))
        })
        .transpose()
}

/// The scheduling service behind line-framed envelopes: jobs in on stdin,
/// results out on stdout, metrics on stderr at shutdown.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use rds::service::{
        BrownoutConfig, JobError, JobResult, JobSpec, Lane, RateLimitConfig, Service, ServiceChaos,
        ServiceConfig, SupervisorConfig,
    };
    use std::io::{BufRead as _, Write as _};
    use std::time::Duration;

    let workers: usize = get(flags, "workers", 2)?;
    let queue_cap: usize = get(flags, "queue-cap", 64)?;
    let cache_cap: usize = get(flags, "cache-cap", 128)?;
    let hold: usize = get(flags, "hold", 0)?;
    let online_floor: f64 = get(flags, "online-floor", 0.5)?;
    let online_samples: usize = get(flags, "online-samples", 64)?;

    // Bad values surface as the service's own typed config error at start.
    let mut config = ServiceConfig::default()
        .workers(workers)
        .queue_capacity(queue_cap)
        .cache_capacity(cache_cap)
        .online_floor(online_floor)
        .online_samples(online_samples);

    // Durability: journal accepted jobs, optionally replay survivors.
    if let Some(path) = flags.get("journal") {
        config = config.journal(path);
    }
    if let Some(every) = get_opt::<u64>(flags, "journal-compact-every")? {
        config = config.journal_compact_every(every);
    }
    let recover: usize = get(flags, "recover", 0)?;
    if recover != 0 && config.journal.is_none() {
        return Err("serve --recover requires --journal PATH".into());
    }

    // Supervision knobs.
    let mut sup = SupervisorConfig::default();
    if let Some(n) = get_opt::<u32>(flags, "max-attempts")? {
        sup = sup.max_attempts(n);
    }
    if let Some(ms) = get_opt::<u64>(flags, "job-timeout-ms")? {
        sup = sup.job_timeout(Duration::from_millis(ms));
    }
    config = config.supervisor(sup);

    // Overload brownout ladder.
    if get::<usize>(flags, "brownout", 0)? != 0 {
        let mut brown = BrownoutConfig::default();
        brown = brown.depths(
            get(flags, "brownout-degrade", brown.degrade_depth)?,
            get(flags, "brownout-shed", brown.shed_depth)?,
            get(flags, "brownout-open", brown.open_depth)?,
        );
        brown = brown.retry_after_ms(get(flags, "brownout-retry-ms", brown.retry_after_ms)?);
        config = config.brownout(brown);
    }

    // Per-client token-bucket rate limiting.
    if let Some(rate) = get_opt::<f64>(flags, "rate-per-sec")? {
        let limit = RateLimitConfig::default()
            .rate_per_sec(rate)
            .burst(get(flags, "rate-burst", RateLimitConfig::default().burst)?);
        config = config.rate_limit(limit);
    }

    // Chaos injection (testing only; all off by default).
    if let Some(seed) = get_opt::<u64>(flags, "chaos-seed")? {
        let mut chaos = ServiceChaos::seeded(seed)
            .panic_rate(get(flags, "chaos-panic-rate", 0.0)?)
            .stall_rate(get(flags, "chaos-stall-rate", 0.0)?)
            .journal_error_rate(get(flags, "chaos-journal-error-rate", 0.0)?)
            .net_refuse_rate(get(flags, "chaos-net-refuse-rate", 0.0)?)
            .net_cut_rate(get(flags, "chaos-net-cut-rate", 0.0)?)
            .net_drop_rate(get(flags, "chaos-net-drop-rate", 0.0)?)
            .net_stall_rate(get(flags, "chaos-net-stall-rate", 0.0)?);
        if let Some(ms) = get_opt::<u64>(flags, "chaos-stall-ms")? {
            chaos = chaos.stall(Duration::from_millis(ms));
        }
        if let Some(ms) = get_opt::<u64>(flags, "chaos-net-stall-ms")? {
            chaos = chaos.net_stall(Duration::from_millis(ms));
        }
        if let Some(n) = get_opt::<u64>(flags, "chaos-kill-at")? {
            chaos = chaos.journal_kill_at(n);
        }
        config = config.chaos(chaos);
    }

    // Networked shard mode: same service, TCP front instead of stdin.
    if let Some(listen) = flags.get("listen") {
        return serve_listen(flags, config, recover != 0, listen);
    }

    if hold != 0 {
        // Hold mode: queue everything first, drain only after stdin EOF.
        // Makes queue-overflow behavior deterministic for smoke tests.
        config = config.paused();
    }
    let (service, results_rx) = Service::try_start(config).map_err(|e| e.to_string())?;
    if recover != 0 {
        let report = service.recover().map_err(|e| e.to_string())?;
        eprintln!(
            "recovery: {} replayed / {} already completed / {} failed{}",
            report.replayed,
            report.already_completed,
            report.failed,
            if report.torn {
                " / torn tail repaired"
            } else {
                ""
            },
        );
    }
    let injector = service.result_sender();

    // Writer thread: the only stdout producer, so result envelopes from
    // concurrent workers never interleave.
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for result in results_rx {
            let text = io::write_result(&result.to_envelope());
            let mut out = stdout.lock();
            let _ = out.write_all(text.as_bytes());
            let _ = out.flush();
        }
    });

    // Frame stdin into envelopes: collect lines up to the terminator.
    let stdin = std::io::stdin();
    let mut buf = String::new();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let terminal = line.trim() == io::JOB_END;
        buf.push_str(&line);
        buf.push('\n');
        if !terminal {
            continue;
        }
        let text = std::mem::take(&mut buf);
        // Untrusted input: every failure becomes a rejection envelope on
        // the result stream, never a daemon exit.
        let rejection = match io::read_job(&text) {
            Ok(envelope) => {
                let id = envelope.id.clone();
                match JobSpec::from_envelope(envelope) {
                    Ok(spec) => {
                        let lane = spec.lane();
                        service.submit(spec).err().map(|e| (id, e, lane))
                    }
                    Err(reason) => Some((id, JobError::Rejected(reason), Lane::Express)),
                }
            }
            Err(e) => Some((
                "-".to_owned(),
                JobError::Rejected(format!("bad job envelope: {e}")),
                Lane::Express,
            )),
        };
        if let Some((id, err, lane)) = rejection {
            let _ = injector.send(JobResult {
                id,
                outcome: Err(err),
                lane,
            });
        }
    }

    if hold != 0 {
        service.resume();
    }
    drop(injector);
    let metrics = service.shutdown();
    let _ = writer.join();
    eprint!("{}", metrics.to_pretty_string());
    Ok(())
}

/// TCP shard mode for `rds serve --listen`: bind, print the bound
/// address on stdout (scripts capture ephemeral ports from it), run
/// until stdin closes, then drain and report.
fn serve_listen(
    flags: &HashMap<String, String>,
    config: rds::service::ServiceConfig,
    recover: bool,
    listen: &str,
) -> Result<(), String> {
    use rds::service::net::{NetServer, NetServerConfig};
    use rds::service::Service;
    use std::io::Read as _;
    use std::time::Duration;

    let chaos = config.chaos;
    let mut net = NetServerConfig::default()
        .listen(listen)
        .max_frame(get(flags, "net-max-frame", 4 << 20)?)
        .max_inflight(get(flags, "net-max-inflight", 64)?);
    if let Some(ms) = get_opt::<u64>(flags, "net-idle-timeout-ms")? {
        net = net.idle_timeout(Duration::from_millis(ms));
    }
    if let Some(peers) = flags.get("peers") {
        let peers: Vec<String> = peers
            .split(',')
            .map(|p| p.trim().to_owned())
            .filter(|p| !p.is_empty())
            .collect();
        let index: usize = get(flags, "shard-index", 0)?;
        if index >= peers.len() {
            return Err(format!(
                "--shard-index {index} out of range for {} peers",
                peers.len()
            ));
        }
        net = net.peers(peers, index);
    }
    if let Some(chaos) = chaos {
        net = net.chaos(chaos);
    }

    let (service, results_rx) = Service::try_start(config).map_err(|e| e.to_string())?;
    let server = NetServer::start(service, results_rx, net).map_err(|e| e.to_string())?;
    if recover {
        let report = server.recover().map_err(|e| e.to_string())?;
        eprintln!(
            "recovery: {} replayed / {} already completed / {} failed{}",
            report.replayed,
            report.already_completed,
            report.failed,
            if report.torn {
                " / torn tail repaired"
            } else {
                ""
            },
        );
    }
    println!("listening {}", server.local_addr());
    // Hold the shard open until the launcher closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    let (metrics, net_metrics) = server.shutdown();
    eprint!("{}", metrics.to_pretty_string());
    eprintln!(
        "transport           : {} conns / {} jobs / {} probes / {} gossip-in / {} gossip-out ({} failed) / {} proto-errors",
        net_metrics.connections,
        net_metrics.jobs_in,
        net_metrics.probes,
        net_metrics.gossip_in,
        net_metrics.gossip_out,
        net_metrics.gossip_fails,
        net_metrics.protocol_errors,
    );
    eprintln!(
        "net chaos           : {} refused / {} replies dropped / {} frames cut / {} stalled",
        net_metrics.refused,
        net_metrics.replies_dropped,
        net_metrics.frames_cut,
        net_metrics.replies_stalled,
    );
    Ok(())
}

/// Failover router front tier: `rds route --shards A,B`.
fn cmd_route(flags: &HashMap<String, String>) -> Result<(), String> {
    use rds::service::router::{Router, RouterConfig, RouterServer};
    use std::io::Read as _;
    use std::time::Duration;

    let shards: Vec<String> = require(flags, "shards")?
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        return Err("route needs at least one --shards address".into());
    }
    let mut config = RouterConfig::default()
        .shards(shards)
        .max_attempts(get(flags, "retries", 0)?)
        .seed(get(flags, "seed", 0)?);
    if let Some(ms) = get_opt::<u64>(flags, "hedge-ms")? {
        config = config.hedge_fixed(Duration::from_millis(ms));
    }
    if let Some(ms) = get_opt::<u64>(flags, "health-interval-ms")? {
        config = config.health_interval(if ms == 0 {
            None
        } else {
            Some(Duration::from_millis(ms))
        });
    }
    if let Some(ms) = get_opt::<u64>(flags, "io-timeout-ms")? {
        config = config.io_timeout(Duration::from_millis(ms));
    }
    if let Some(rate) = get_opt::<f64>(flags, "rate-per-sec")? {
        use rds::service::RateLimitConfig;
        let limit = RateLimitConfig::default()
            .rate_per_sec(rate)
            .burst(get(flags, "rate-burst", RateLimitConfig::default().burst)?);
        config = config.rate_limit(limit);
    }

    let listen = flags.get("listen").map_or("127.0.0.1:0", String::as_str);
    let router = Router::start(config).map_err(|e| e.to_string())?;
    let server = RouterServer::start(router, listen).map_err(|e| e.to_string())?;
    println!("listening {}", server.local_addr());
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    let metrics = server.shutdown();
    eprintln!(
        "router              : {} requests / {} ok / {} rejected / {} errors / {} rate limited",
        metrics.requests, metrics.completed, metrics.rejected, metrics.errors, metrics.rate_limited,
    );
    eprintln!(
        "failover            : {} retries / {} failovers / {} retry-after waits / {} probe cycles",
        metrics.retries, metrics.failovers, metrics.retry_after_waits, metrics.probe_cycles,
    );
    eprintln!(
        "hedging             : {} hedges / {} hedge wins",
        metrics.hedges, metrics.hedge_wins,
    );
    Ok(())
}

/// One-shot client: builds a job envelope and either prints it (`--emit`)
/// or drives a private single-worker `rds serve` child over pipes.
fn cmd_submit(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::io::Write as _;
    use std::process::{Command, Stdio};

    let instance = load_instance(flags)?;
    let envelope = io::JobEnvelope {
        id: get(flags, "id", "job-1".to_owned())?,
        algo: get(flags, "algo", "heft".to_owned())?,
        epsilon: get(flags, "epsilon", 1.3)?,
        seed: get(flags, "seed", 0)?,
        generations: get_opt(flags, "generations")?,
        deadline_ms: get_opt(flags, "deadline-ms")?,
        lane: flags.get("lane").cloned(),
        arrival: get_opt(flags, "arrival")?,
        deadline: get_opt(flags, "deadline")?,
        objective: flags.get("objective").cloned(),
        rel_min: get_opt(flags, "rel-min")?,
        client: flags.get("client").cloned(),
        instance,
    };
    let text = io::write_job(&envelope);
    if get(flags, "emit", 0usize)? != 0 {
        print!("{text}");
        return Ok(());
    }

    // Networked client: one request against a shard or router; typed
    // transport errors (connect/timeout/protocol) exit non-zero.
    if let Some(addr) = flags.get("connect") {
        use rds::service::net::{request, NetClientConfig};
        let mut cfg = NetClientConfig::default();
        if let Some(ms) = get_opt::<u64>(flags, "timeout")? {
            cfg.io_timeout = std::time::Duration::from_millis(ms);
        }
        let result = request(addr, &text, &cfg).map_err(|e| format!("submit to {addr}: {e}"))?;
        return report_result(result, flags);
    }

    let exe = std::env::current_exe().map_err(|e| format!("locating rds binary: {e}"))?;
    let mut serve_args = vec!["serve".to_owned(), "--workers".to_owned(), "1".to_owned()];
    if let Some(ms) = get_opt::<u64>(flags, "timeout")? {
        serve_args.push("--job-timeout-ms".to_owned());
        serve_args.push(ms.to_string());
    }
    let mut child = Command::new(exe)
        .args(&serve_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawning serve child: {e}"))?;
    child
        .stdin
        .take()
        .ok_or("serve child has no stdin")?
        .write_all(text.as_bytes())
        .map_err(|e| format!("sending job to serve child: {e}"))?;
    let output = child
        .wait_with_output()
        .map_err(|e| format!("waiting for serve child: {e}"))?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    let result =
        io::read_result(&stdout).map_err(|e| format!("parsing serve child response: {e}"))?;
    report_result(result, flags)
}

/// Shared tail of `rds submit`: print the verdict, enforce exit-status
/// semantics, optionally write the schedule.
fn report_result(
    result: io::ResultEnvelope,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    if result.status != "ok" {
        let retry = result
            .retry_after_ms
            .map(|ms| format!(" (retry after {ms} ms)"))
            .unwrap_or_default();
        return Err(format!(
            "job {} {}: {}{retry}",
            result.id,
            result.status,
            result.reason.as_deref().unwrap_or("(no reason given)")
        ));
    }
    println!(
        "job {}: expected makespan {:.3}, average slack {:.3}, cache {}, degraded {}",
        result.id,
        result.makespan.unwrap_or(f64::NAN),
        result.avg_slack.unwrap_or(f64::NAN),
        result.cache.as_deref().unwrap_or("-"),
        result.degraded.as_deref().unwrap_or("none"),
    );
    if let (Some(energy), Some(reliability)) = (result.energy, result.reliability) {
        println!("energy {energy:.3}, reliability {reliability:.6}");
    }
    if let Some(verdict) = result.verdict.as_deref() {
        println!(
            "online verdict {verdict} (admission probability {:.3})",
            result.probability.unwrap_or(f64::NAN)
        );
        // A missed deadline is a scheduling failure even though the
        // service completed the job; scripts keying on exit status care.
        if verdict == "miss" {
            return Err(format!("job {} missed its deadline", result.id));
        }
    }
    let schedule = result
        .schedule
        .ok_or("ok result carried no schedule — serve/submit version mismatch?")?;
    if let Some(out) = flags.get("o") {
        std::fs::write(out, io::write_schedule(&schedule))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect()
    }

    #[test]
    fn parse_flags_happy_and_sad() {
        let ok = parse_flags(&["--tasks".into(), "5".into(), "-o".into(), "x".into()]).unwrap();
        assert_eq!(ok.get("tasks").unwrap(), "5");
        assert_eq!(ok.get("o").unwrap(), "x");
        assert!(parse_flags(&["--tasks".into()]).is_err());
        assert!(parse_flags(&["oops".into()]).is_err());
    }

    #[test]
    fn get_parses_defaults_and_values() {
        let f = flags(&[("n", "7")]);
        assert_eq!(get::<usize>(&f, "n", 1).unwrap(), 7);
        assert_eq!(get::<usize>(&f, "missing", 3).unwrap(), 3);
        let bad = flags(&[("n", "x")]);
        assert!(get::<usize>(&bad, "n", 1).is_err());
    }

    #[test]
    fn end_to_end_gen_schedule_eval_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("rds_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.rds").to_str().unwrap().to_owned();
        let sched_path = dir.join("sched.rds").to_str().unwrap().to_owned();

        run(&[
            "gen".into(),
            "--tasks".into(),
            "20".into(),
            "--procs".into(),
            "3".into(),
            "--seed".into(),
            "5".into(),
            "-o".into(),
            inst_path.clone(),
        ])
        .unwrap();
        run(&[
            "schedule".into(),
            "-i".into(),
            inst_path.clone(),
            "--algo".into(),
            "heft".into(),
            "-o".into(),
            sched_path.clone(),
        ])
        .unwrap();
        run(&[
            "eval".into(),
            "-i".into(),
            inst_path.clone(),
            "-s".into(),
            sched_path.clone(),
            "--realizations".into(),
            "50".into(),
        ])
        .unwrap();
        run(&["info".into(), "-i".into(), inst_path.clone()]).unwrap();
        run(&[
            "gantt".into(),
            "-i".into(),
            inst_path,
            "-s".into(),
            sched_path,
            "--width".into(),
            "60".into(),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_opt_parses_optional_flags() {
        let f = flags(&[("generations", "40")]);
        assert_eq!(get_opt::<usize>(&f, "generations").unwrap(), Some(40));
        assert_eq!(get_opt::<usize>(&f, "deadline-ms").unwrap(), None);
        let bad = flags(&[("generations", "x")]);
        assert!(get_opt::<usize>(&bad, "generations").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&[]).is_err());
    }
}

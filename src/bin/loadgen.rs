//! Mixed-traffic load generator for the networked serving tier.
//!
//! Embeds a [`rds_service::router::Router`] in-process, drives a fixed
//! number of jobs through it from concurrent client threads, and writes
//! routed latency percentiles plus rejection/hedge/failover counts as a
//! JSON object — `scripts/serve_net_quick.sh` merges it into
//! `BENCH_serve.json` under the `routed` key.
//!
//! Traffic mix: instances cycle through a seeded pool, and a seeded
//! fraction of jobs run the GA (`--heavy-frac`) so latencies spread
//! enough to exercise hedging.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rds_sched::io::{write_job, JobEnvelope};
use rds_sched::InstanceSpec;
use rds_service::router::{Router, RouterConfig};
use rds_stats::describe::Summary;
use rds_stats::rng::SeedStream;

const USAGE: &str = "usage: loadgen --shards A,B,.. [--jobs N] [--threads C]
       [--tasks T] [--procs P] [--instances K] [--seed S]
       [--heavy-frac F] [--generations G] [--hedge-ms MS] [--retries N]
       [--io-timeout-ms MS] [--out FILE]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !flag.starts_with('-') {
            return Err(format!("unexpected positional argument '{flag}'\n{USAGE}"));
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value\n{USAGE}"))?;
        flags.insert(flag.trim_start_matches('-').to_owned(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        Some(v) => v
            .parse::<T>()
            .map_err(|e| format!("invalid --{key} '{v}': {e}")),
        None => Ok(default),
    }
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let shards: Vec<String> = flags
        .get("shards")
        .ok_or_else(|| format!("missing required flag --shards\n{USAGE}"))?
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        return Err("need at least one shard address".into());
    }
    let shard_count = shards.len();
    let jobs: usize = get(&flags, "jobs", 200)?;
    let threads: usize = get(&flags, "threads", 4)?.max(1);
    let tasks: usize = get(&flags, "tasks", 30)?;
    let procs: usize = get(&flags, "procs", 4)?;
    let instances: usize = get(&flags, "instances", 8)?.max(1);
    let seed: u64 = get(&flags, "seed", 0)?;
    let heavy_frac: f64 = get(&flags, "heavy-frac", 0.2)?;
    let generations: usize = get(&flags, "generations", 20)?;

    let mut router_cfg = RouterConfig::default()
        .shards(shards)
        .max_attempts(get(&flags, "retries", 0)?)
        .seed(seed);
    if let Some(ms) = flags.get("hedge-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|e| format!("invalid --hedge-ms '{ms}': {e}"))?;
        router_cfg = router_cfg.hedge_fixed(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = flags.get("io-timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|e| format!("invalid --io-timeout-ms '{ms}': {e}"))?;
        router_cfg = router_cfg.io_timeout(std::time::Duration::from_millis(ms));
    }

    // Pre-serialize every job so worker threads only measure transport
    // and solve time, not generation.
    let seeds = SeedStream::new(seed);
    let pool: Vec<_> = (0..instances)
        .map(|k| {
            InstanceSpec::new(tasks, procs)
                .seed(seeds.branch("instance").nth_seed(k as u64))
                .build()
                .map_err(|e| format!("building instance {k}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let texts: Vec<String> = (0..jobs)
        .map(|i| {
            let draw = seeds.branch("mix").nth_seed(i as u64);
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            let heavy = unit < heavy_frac;
            write_job(&JobEnvelope {
                id: format!("lg-{i}"),
                algo: if heavy { "ga" } else { "heft" }.to_owned(),
                epsilon: 1.3,
                seed: seeds.branch("job-seed").nth_seed(i as u64),
                generations: heavy.then_some(generations),
                deadline_ms: None,
                lane: None,
                arrival: None,
                deadline: None,
                objective: None,
                rel_min: None,
                client: None,
                instance: pool[i % instances].clone(),
            })
        })
        .collect();

    let router = Router::start(router_cfg).map_err(|e| e.to_string())?;
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let mut lane_latencies: Vec<Vec<f64>> = Vec::new();
    let mut ok = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut latencies = Vec::new();
                    let (mut ok, mut rejected, mut errors) = (0u64, 0u64, 0u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        let t0 = Instant::now();
                        match router.route(&texts[i]) {
                            Ok(env) if env.status == "ok" => {
                                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                                ok += 1;
                            }
                            Ok(_) => rejected += 1,
                            Err(_) => errors += 1,
                        }
                    }
                    (latencies, ok, rejected, errors)
                })
            })
            .collect();
        for h in handles {
            let (lat, o, r, e) = h.join().expect("loadgen worker panicked");
            lane_latencies.push(lat);
            ok += o;
            rejected += r;
            errors += e;
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let metrics = router.shutdown();

    let all: Vec<f64> = lane_latencies.into_iter().flatten().collect();
    let (p50, p95, p99, max) = if all.is_empty() {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        let s = Summary::from_samples(all);
        (
            s.quantile(0.50),
            s.quantile(0.95),
            s.quantile(0.99),
            s.max(),
        )
    };

    let json = format!(
        "{{\n  \"routed\": {{\n    \"jobs\": {jobs},\n    \"threads\": {threads},\n    \"shards\": {shard_count},\n    \"wall_s\": {wall:.3},\n    \"throughput_jobs_per_s\": {tput:.1},\n    \"p50_ms\": {p50:.3},\n    \"p95_ms\": {p95:.3},\n    \"p99_ms\": {p99:.3},\n    \"max_ms\": {max:.3},\n    \"ok\": {ok},\n    \"rejected\": {rejected},\n    \"errors\": {errors},\n    \"retries\": {retries},\n    \"failovers\": {failovers},\n    \"hedges\": {hedges},\n    \"hedge_wins\": {hedge_wins},\n    \"retry_after_waits\": {retry_after_waits}\n  }}\n}}\n",
        tput = if wall > 0.0 { ok as f64 / wall } else { 0.0 },
        retries = metrics.retries,
        failovers = metrics.failovers,
        hedges = metrics.hedges,
        hedge_wins = metrics.hedge_wins,
        retry_after_waits = metrics.retry_after_waits,
    );
    print!("{json}");
    if let Some(out) = flags.get("out") {
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    }
    eprintln!(
        "loadgen: {ok} ok / {rejected} rejected / {errors} errors in {wall:.2}s ({} hedges, {} failovers)",
        metrics.hedges, metrics.failovers,
    );
    if ok == 0 {
        return Err("no job completed".into());
    }
    Ok(())
}

//! # rds — Robust DAG Scheduling for non-deterministic heterogeneous systems
//!
//! A complete Rust reproduction of *"Robust task scheduling in
//! non-deterministic heterogeneous computing systems"* (Zhiao Shi, Emmanuel
//! Jeannot, Jack J. Dongarra — IEEE CLUSTER 2006).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`stats`] — matrices, seeded RNG streams, gamma sampling, statistics.
//! * [`graph`] — task DAGs, topological sorts, random workload generators.
//! * [`platform`] — heterogeneous platform, BCET and uncertainty models.
//! * [`sched`] — schedules, disjunctive graphs, timing, slack, robustness
//!   metrics, the Monte Carlo realization engine.
//! * [`heft`] — the HEFT baseline (and CPOP).
//! * [`ga`] — the paper's bi-objective genetic algorithm.
//! * [`anneal`] — a simulated-annealing alternative used in ablations.
//! * [`core`] — the high-level ε-constraint robust scheduler API.
//! * [`service`] — the concurrent scheduling service: job queue with
//!   admission control, worker pool, schedule cache, deadline degradation.
//!
//! ## Quickstart
//!
//! ```no_run
//! use rds::prelude::*;
//!
//! // A random 40-task workload on 4 heterogeneous processors.
//! let inst = InstanceSpec::new(40, 4)
//!     .seed(7)
//!     .uncertainty_level(2.0)
//!     .build()
//!     .expect("valid instance");
//!
//! // Baseline: HEFT.
//! let heft = heft_schedule(&inst);
//!
//! // Robust schedule: maximize slack subject to makespan <= 1.3 × HEFT.
//! let config = RobustConfig::new(1.3).seed(7);
//! let robust = RobustScheduler::new(config)
//!     .solve(&inst)
//!     .expect("solver succeeds");
//!
//! println!("HEFT makespan:   {:.2}", heft.makespan);
//! println!("robust makespan: {:.2}", robust.report.expected_makespan);
//! println!("robust slack:    {:.2}", robust.report.average_slack);
//! ```

pub use rds_anneal as anneal;
pub use rds_core as core;
pub use rds_ga as ga;
pub use rds_graph as graph;
pub use rds_heft as heft;
pub use rds_platform as platform;
pub use rds_sched as sched;
pub use rds_service as service;
pub use rds_stats as stats;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use rds_core::prelude::*;
}

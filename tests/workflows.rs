//! Robust scheduling of structured (non-random) workflows: fork–join,
//! Gaussian elimination, FFT, Montage, wavefront. Exercises the public API
//! on the workload classes the DAG-scheduling literature evaluates.

use rds::graph::gen::cov::CovMatrixSpec;
use rds::graph::gen::workflows;
use rds::graph::TaskGraph;
use rds::prelude::*;

/// Wraps a structured topology into a full instance with COV-generated
/// timings.
fn instance_for(graph: TaskGraph, procs: usize, ul: f64, seed: u64) -> Instance {
    let n = graph.task_count();
    let bcet = CovMatrixSpec::bcet(n, procs).generate(seed).unwrap();
    let ulm = CovMatrixSpec::uncertainty(n, procs, ul)
        .generate(seed ^ 0xA5)
        .unwrap();
    let timing = TimingModel::new(bcet, ulm).unwrap();
    let platform = Platform::uniform(procs, 1.0).unwrap();
    Instance::new(graph, platform, timing).unwrap()
}

fn solve_and_check(inst: &Instance, label: &str) {
    let heft = heft_schedule(inst);
    assert!(heft.makespan > 0.0, "{label}: HEFT failed");
    let outcome = RobustScheduler::new(RobustConfig::quick(1.5).seed(3))
        .solve(inst)
        .unwrap_or_else(|e| panic!("{label}: solve failed: {e}"));
    assert!(
        outcome.report.expected_makespan <= 1.5 * heft.makespan + 1e-9,
        "{label}: epsilon bound violated"
    );
    assert!(
        outcome.report.average_slack >= outcome.heft_report.average_slack - 1e-9,
        "{label}: GA slack below HEFT"
    );
}

#[test]
fn fork_join_workflow() {
    let inst = instance_for(workflows::fork_join(12, 5.0), 4, 4.0, 1);
    solve_and_check(&inst, "fork-join");
}

#[test]
fn gaussian_elimination_workflow() {
    let inst = instance_for(workflows::gaussian_elimination(6, 5.0), 4, 2.0, 2);
    solve_and_check(&inst, "gaussian-elimination");
}

#[test]
fn fft_workflow() {
    let inst = instance_for(workflows::fft(3, 5.0), 4, 2.0, 3);
    solve_and_check(&inst, "fft");
}

#[test]
fn montage_workflow() {
    let inst = instance_for(workflows::montage(6, 5.0), 4, 4.0, 4);
    solve_and_check(&inst, "montage");
}

#[test]
fn cholesky_workflow() {
    let inst = instance_for(workflows::cholesky(4, 5.0), 4, 2.0, 8);
    solve_and_check(&inst, "cholesky");
}

#[test]
fn wavefront_workflow() {
    let inst = instance_for(workflows::wavefront(4, 5, 5.0), 4, 2.0, 5);
    solve_and_check(&inst, "wavefront");
}

#[test]
fn chain_workflow_single_processor_is_degenerate_but_valid() {
    // A pure chain on one processor has zero slack everywhere: the GA can
    // only return the (unique) order; robustness metrics stay defined.
    let inst = instance_for(workflows::chain(8, 0.0), 1, 2.0, 6);
    let heft = heft_schedule(&inst);
    let a = rds::sched::slack::analyze_expected(&inst, &heft.schedule).unwrap();
    assert!(
        a.average_slack < 1e-9,
        "chains are fully critical, got {}",
        a.average_slack
    );
    let mc = RealizationConfig::with_realizations(64).seed(1);
    let rep = monte_carlo(&inst, &heft.schedule, &mc).unwrap();
    assert!(rep.miss_rate > 0.0, "UL=2 chain must sometimes overrun");
}

#[test]
fn wide_fork_join_gains_more_slack_than_chain() {
    // Structural sanity: parallel structures leave room for slack, chains
    // do not.
    let fj = instance_for(workflows::fork_join(10, 1.0), 4, 2.0, 7);
    let heft_fj = heft_schedule(&fj);
    let a_fj = rds::sched::slack::analyze_expected(&fj, &heft_fj.schedule).unwrap();
    assert!(
        a_fj.average_slack > 0.0,
        "fork-join under HEFT should have slack"
    );
}

//! Property-based verification of the fault model's contracts:
//!
//! * Theorem 3.4 carries over to the fault executor: a single straggler
//!   inflating a task by Δ ≤ σ never extends the makespan under
//!   `FailStop` (stragglers only delay, never fail);
//! * `MigrateReplan` always completes generated scenarios with a valid
//!   schedule, and nothing executes on a processor after its failure;
//! * scenario generation is a pure function of `(config, shape, seed)`.

use proptest::prelude::*;

use rds::ga::chromosome::Chromosome;
use rds::prelude::*;
use rds::sched::disjunctive::DisjunctiveGraph;
use rds::sched::faults::Straggler;
use rds::sched::slack;
use rds::sched::timing::expected_durations;
use rds::stats::rng::rng_from_seed;

/// Builds a random instance plus a random valid schedule for it.
fn setup(seed: u64, tasks: usize, procs: usize) -> (Instance, Schedule) {
    let inst = InstanceSpec::new(tasks, procs)
        .seed(seed)
        .uncertainty_level(4.0)
        .build()
        .unwrap();
    let mut rng = rng_from_seed(seed ^ 0xDEAD);
    let c = Chromosome::random_for(&inst, &mut rng);
    let s = c.decode(procs);
    (inst, s)
}

/// Full `n × m` matrix of expected durations (the executor's input).
fn expected_matrix(inst: &Instance) -> Matrix {
    let n = inst.task_count();
    let m = inst.proc_count();
    let mut mx = Matrix::zeros(n, m);
    for t in 0..n {
        for p in 0..m {
            mx.set(t, p, inst.timing.expected(t, ProcId(p as u32)));
        }
    }
    mx
}

/// Empty scenario to splice hand-built faults into.
fn quiet_scenario() -> FaultScenario {
    FaultScenario {
        failures: Vec::new(),
        slowdowns: Vec::new(),
        stragglers: Vec::new(),
        crashes: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single straggler inflating task `i` by Δ ≤ σ_i never extends the
    /// realized makespan under `FailStop` — Theorem 3.4 restated against
    /// the fault executor instead of the static evaluator.
    #[test]
    fn straggler_within_slack_never_extends_makespan(
        seed in 0u64..500, tasks in 5usize..40, procs in 2usize..6, frac in 0.0f64..1.0
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let analysis = slack::analyze(&ds, &s, &inst.platform, &durations);
        let (victim, &sigma) = analysis
            .slack
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        prop_assume!(sigma > 1e-9 && durations[victim] > 1e-9);

        let mut scenario = quiet_scenario();
        scenario.stragglers.push(Straggler {
            task: TaskId(victim as u32),
            factor: 1.0 + frac * sigma / durations[victim],
        });
        let run = execute_with_faults(
            &inst,
            &s,
            &expected_matrix(&inst),
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        let m = run.outcome.makespan().expect("stragglers never fail a run");
        prop_assert!(
            m <= analysis.makespan * (1.0 + 1e-9),
            "straggler on {victim} (Δ = {} ≤ σ = {sigma}) extended {} -> {m}",
            frac * sigma, analysis.makespan
        );
    }

    /// `MigrateReplan` completes every generated scenario with a valid
    /// schedule: each task exactly once, precedence and processor
    /// exclusivity respected, and no work finishing on a processor after
    /// its failure onset.
    #[test]
    fn migrate_replan_always_yields_valid_schedule(
        seed in 0u64..300, tasks in 5usize..30, procs in 2usize..6
    ) {
        let (inst, s) = setup(seed, tasks, procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let horizon = slack::analyze(&ds, &s, &inst.platform, &durations).makespan;
        let faults = FaultConfig {
            failure_rate: 0.5,
            crash_rate: 0.3,
            ..FaultConfig::default()
        }
        .with_horizon(horizon);
        let scenario =
            FaultScenario::generate(&faults, tasks, procs, seed ^ 0xFA17);
        let run = execute_with_faults(
            &inst,
            &s,
            &expected_matrix(&inst),
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::MigrateReplan),
        )
        .unwrap();
        let realized = run
            .schedule
            .as_ref()
            .expect("MigrateReplan completes: the generator leaves a survivor");
        prop_assert!(run.outcome.makespan().is_some());
        prop_assert!(realized.validate_against(&inst.graph).is_ok());

        // Precedence on realized times.
        for t in 0..tasks {
            for e in inst.graph.predecessors(TaskId(t as u32)) {
                prop_assert!(
                    run.finish[e.task.index()] <= run.start[t] + 1e-9,
                    "pred {} finishes after {t} starts", e.task
                );
            }
        }
        // Processor exclusivity on realized times.
        for p in 0..procs {
            let mut spans: Vec<(f64, f64)> = realized
                .tasks_on(ProcId(p as u32))
                .iter()
                .map(|&t| (run.start[t.index()], run.finish[t.index()]))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(w[1].0 >= w[0].1 - 1e-9, "overlap on proc {p}");
            }
        }
        // Dead processors finish nothing after their failure onset.
        for f in &scenario.failures {
            for &t in realized.tasks_on(f.proc) {
                prop_assert!(
                    run.finish[t.index()] <= f.at + 1e-9,
                    "{t} finished at {} on {} which died at {}",
                    run.finish[t.index()], f.proc, f.at
                );
            }
        }
    }

    /// Scenario generation is deterministic in `(config, shape, seed)` and
    /// scale 0 silences every fault kind.
    #[test]
    fn scenario_generation_is_deterministic(
        seed in 0u64..1000, tasks in 1usize..40, procs in 1usize..8
    ) {
        let faults = FaultConfig::default().with_horizon(100.0);
        let a = FaultScenario::generate(&faults, tasks, procs, seed);
        let b = FaultScenario::generate(&faults, tasks, procs, seed);
        prop_assert_eq!(&a.failures, &b.failures);
        prop_assert_eq!(&a.slowdowns, &b.slowdowns);
        prop_assert_eq!(&a.stragglers, &b.stragglers);
        prop_assert_eq!(&a.crashes, &b.crashes);
        prop_assert!(a.failures.len() < procs.max(1), "a survivor always remains");
        let quiet = FaultScenario::generate(
            &faults.scaled(0.0), tasks, procs, seed
        );
        prop_assert!(quiet.is_quiet());
    }
}

/// Deterministic spot check: a straggler at exactly the slack boundary
/// (Δ = σ) holds the makespan, while Δ = 4σ on the max-slack task must
/// extend it by at least 3σ (the path through the victim has length
/// M − σ + Δ) — and neither ever fails the run.
#[test]
fn straggler_boundary_holds_makespan() {
    let (inst, s) = setup(11, 20, 3);
    let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
    let durations = expected_durations(&inst.timing, &s);
    let analysis = slack::analyze(&ds, &s, &inst.platform, &durations);
    let (victim, &sigma) = analysis
        .slack
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    assert!(sigma > 1e-9, "seed 11 has a slack-bearing task");
    for (frac, must_hold) in [(1.0, true), (4.0, false)] {
        let mut scenario = quiet_scenario();
        scenario.stragglers.push(Straggler {
            task: TaskId(victim as u32),
            factor: 1.0 + frac * sigma / durations[victim],
        });
        let run = execute_with_faults(
            &inst,
            &s,
            &expected_matrix(&inst),
            &scenario,
            &RecoveryConfig::new(RecoveryPolicy::FailStop),
        )
        .unwrap();
        let m = run.outcome.makespan().expect("stragglers never fail");
        if must_hold {
            assert!(m <= analysis.makespan * (1.0 + 1e-9), "{m}");
        } else {
            assert!(m >= analysis.makespan + 3.0 * sigma - 1e-6, "{m}");
        }
    }
}

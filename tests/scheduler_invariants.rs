//! Cross-crate property tests of the scheduler stack: HEFT/CPOP/SHEFT
//! timelines are physical (no processor overlap, precedence + transfer
//! delays respected), and the contention evaluation only ever delays.

use proptest::prelude::*;

use rds::prelude::*;
use rds::sched::contention::evaluate_with_contention;
use rds::sched::disjunctive::DisjunctiveGraph;
use rds::sched::gantt::overlapping_tasks;
use rds::sched::timing::{evaluate_with_durations, expected_durations};

fn build(seed: u64, tasks: usize, procs: usize, ccr: f64) -> Instance {
    InstanceSpec::new(tasks, procs)
        .seed(seed)
        .ccr(ccr)
        .uncertainty_level(3.0)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn heft_timeline_is_physical(seed in 0u64..400, tasks in 2usize..60, procs in 1usize..8) {
        let inst = build(seed, tasks, procs, 0.5);
        let r = heft_schedule(&inst);
        // No two tasks overlap on a processor.
        prop_assert!(overlapping_tasks(&r.schedule, &r.timed).is_empty());
        // Starts respect predecessors + communication.
        for t in inst.graph.tasks() {
            let pt = r.schedule.proc_of(t);
            for e in inst.graph.predecessors(t) {
                let q = e.task;
                let arrive = r.timed.finish_of(q)
                    + inst.platform.comm_time(e.data, r.schedule.proc_of(q), pt);
                prop_assert!(
                    r.timed.start_of(t) >= arrive - 1e-9,
                    "{t} started before data from {q} arrived"
                );
            }
        }
        // Makespan is the max finish.
        let max_finish = inst
            .graph
            .tasks()
            .map(|t| r.timed.finish_of(t))
            .fold(0.0_f64, f64::max);
        prop_assert!((r.makespan - max_finish).abs() < 1e-9);
    }

    #[test]
    fn cpop_and_sheft_timelines_are_physical(seed in 0u64..200, tasks in 2usize..40) {
        let inst = build(seed, tasks, 4, 0.5);
        for result in [cpop_schedule(&inst), rds::heft::sheft_schedule(&inst, 1.0)] {
            prop_assert!(overlapping_tasks(&result.schedule, &result.timed).is_empty());
            prop_assert!(result.schedule.validate_against(&inst.graph).is_ok());
        }
    }

    #[test]
    fn contention_only_delays(seed in 0u64..200, tasks in 2usize..40, ccr in 0.0f64..2.0) {
        let inst = build(seed, tasks, 4, ccr);
        let heft = heft_schedule(&inst);
        let ds = DisjunctiveGraph::build(&inst.graph, &heft.schedule).unwrap();
        let dur = expected_durations(&inst.timing, &heft.schedule);
        let free = evaluate_with_durations(&ds, &heft.schedule, &inst.platform, &dur);
        let cont = evaluate_with_contention(&inst.graph, &ds, &heft.schedule, &inst.platform, &dur);
        prop_assert!(cont.timed.makespan >= free.makespan - 1e-9);
        // Per-task: contention can only push starts later.
        for t in inst.graph.tasks() {
            prop_assert!(
                cont.timed.start_of(t) >= free.start_of(t) - 1e-9,
                "{t} started earlier under contention"
            );
        }
    }

    #[test]
    fn dynamic_runs_are_physical(seed in 0u64..200, tasks in 2usize..40, rseed in 0u64..50) {
        use rds::sched::dynamic::{run_dynamic, DynamicPriority};
        let inst = build(seed, tasks, 4, 0.3);
        let r = run_dynamic(&inst, DynamicPriority::UpwardRank, rseed);
        prop_assert!(r.schedule.validate_against(&inst.graph).is_ok());
        for t in inst.graph.tasks() {
            for e in inst.graph.predecessors(t) {
                prop_assert!(r.start[t.index()] >= r.finish[e.task.index()] - 1e-9);
            }
        }
    }
}

//! End-to-end integration: instance generation → baselines → robust GA →
//! Monte Carlo, crossing every crate boundary.

use rds::prelude::*;

#[test]
fn full_pipeline_produces_consistent_reports() {
    let inst = InstanceSpec::new(40, 4)
        .seed(100)
        .uncertainty_level(4.0)
        .build()
        .unwrap();

    let outcome = RobustScheduler::new(RobustConfig::quick(1.3).seed(1))
        .solve(&inst)
        .unwrap();

    // Constraint holds.
    assert!(outcome.report.expected_makespan <= 1.3 * outcome.heft.makespan + 1e-9);
    // The robust schedule is valid.
    assert!(outcome.schedule.validate_against(&inst.graph).is_ok());
    // Slack never below HEFT's (HEFT is in the initial population and
    // elitism keeps the best).
    assert!(outcome.report.average_slack >= outcome.heft_report.average_slack - 1e-9);
    // Reports are internally consistent.
    for rep in [&outcome.report, &outcome.heft_report] {
        assert!(rep.expected_makespan > 0.0);
        assert!(rep.mean_realized_makespan > 0.0);
        assert!((0.0..=1.0).contains(&rep.miss_rate));
        assert!(rep.r1 > 0.0);
        assert!(rep.r2 >= 1.0);
    }
}

#[test]
fn ga_beats_heft_on_slack_with_relaxed_epsilon() {
    // With eps = 2.0 the GA has ample room; its slack advantage over HEFT
    // should be strict on most instances.
    let mut strict_wins = 0;
    let total = 5;
    for seed in 0..total {
        let inst = InstanceSpec::new(30, 4).seed(seed).build().unwrap();
        let outcome = RobustScheduler::new(RobustConfig::quick(2.0).seed(seed))
            .solve(&inst)
            .unwrap();
        if outcome.report.average_slack > outcome.heft_report.average_slack + 1e-9 {
            strict_wins += 1;
        }
    }
    assert!(
        strict_wins >= 3,
        "GA should strictly beat HEFT's slack on most instances, won {strict_wins}/{total}"
    );
}

#[test]
fn epsilon_controls_the_tradeoff() {
    let inst = InstanceSpec::new(40, 4)
        .seed(7)
        .uncertainty_level(6.0)
        .build()
        .unwrap();
    let mut cfg = SweepConfig::quick().seed(3);
    cfg.realizations = 150;
    let pts = epsilon_sweep(&inst, &[1.0, 2.0], &cfg);
    // More room -> at least as much slack (allow small stochastic wobble).
    assert!(
        pts[1].avg_slack >= pts[0].avg_slack - 0.05 * pts[0].avg_slack.abs(),
        "slack at eps=2 ({}) collapsed below eps=1 ({})",
        pts[1].avg_slack,
        pts[0].avg_slack
    );
}

#[test]
fn all_baselines_schedule_the_same_instance() {
    let inst = InstanceSpec::new(50, 5).seed(11).build().unwrap();
    let heft = heft_schedule(&inst);
    let cpop = cpop_schedule(&inst);
    let mut rng = rds::stats::rng::rng_from_seed(1);
    let rand_s = random_schedule(&inst, &mut rng);

    for s in [&heft.schedule, &cpop.schedule, &rand_s] {
        assert!(s.validate_against(&inst.graph).is_ok());
        assert_eq!(s.task_count(), 50);
    }
    // Sanity ordering: HEFT should beat random.
    let mc = RealizationConfig::with_realizations(100).seed(9);
    let rand_rep = monte_carlo(&inst, &rand_s, &mc).unwrap();
    let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).unwrap();
    assert!(heft_rep.expected_makespan < rand_rep.expected_makespan);
}

#[test]
fn simulated_annealing_integrates_with_the_same_objectives() {
    let inst = InstanceSpec::new(30, 3).seed(13).build().unwrap();
    let heft = heft_schedule(&inst);
    let obj = Objective::EpsilonConstraint {
        epsilon: 1.5,
        reference_makespan: heft.makespan,
    };
    let sa = rds::anneal::anneal(&inst, rds::anneal::SaParams::quick().seed(5), obj);
    let schedule = sa.best.decode(inst.proc_count());
    assert!(schedule.validate_against(&inst.graph).is_ok());
    assert!(sa.best_eval.makespan <= 1.5 * heft.makespan + 1e-9);
}

#[test]
fn island_ga_and_direct_mc_ga_integrate_through_the_facade() {
    use rds::ga::islands::{run_islands, IslandParams};
    use rds::ga::robust_engine::{run_robust_ga, RobustGaParams};
    let inst = InstanceSpec::new(25, 3)
        .seed(21)
        .uncertainty_level(4.0)
        .build()
        .unwrap();
    let heft = heft_schedule(&inst);

    // Island model respects the epsilon constraint.
    let mut ip = IslandParams::new(GaParams::quick().seed(1).max_generations(30).population(8));
    ip.islands = 2;
    ip.migration_interval = 10;
    ip.migrants = 1;
    let obj = Objective::EpsilonConstraint {
        epsilon: 1.3,
        reference_makespan: heft.makespan,
    };
    let ir = run_islands(&inst, ip, obj);
    assert!(ir.best_eval.makespan <= 1.3 * heft.makespan + 1e-9);
    assert!(ir.best.decode(3).validate_against(&inst.graph).is_ok());

    // Direct-MC GA's schedule validates and respects the constraint too.
    let rr = run_robust_ga(&inst, RobustGaParams::quick(1.3).seed(2));
    assert!(rr.best_eval.makespan <= 1.3 * heft.makespan + 1e-9);
    assert!(rr.best.decode(3).validate_against(&inst.graph).is_ok());
}

#[test]
fn bounds_hold_for_every_scheduler() {
    use rds::sched::bounds::makespan_lower_bounds;
    let inst = InstanceSpec::new(30, 4).seed(22).build().unwrap();
    let lb = makespan_lower_bounds(&inst).best();
    for makespan in [
        heft_schedule(&inst).makespan,
        cpop_schedule(&inst).makespan,
        rds::heft::sheft_schedule(&inst, 1.0).makespan,
    ] {
        assert!(makespan >= lb - 1e-9, "{makespan} < bound {lb}");
    }
}

#[test]
fn prelude_exposes_the_advertised_api() {
    // Compile-time check that the prelude surface is complete enough to
    // write the quickstart without extra imports.
    let inst: Instance = InstanceSpec::new(10, 2).seed(1).build().unwrap();
    let _: HeftResult = heft_schedule(&inst);
    let _: GaParams = GaParams::paper();
    let _: RealizationConfig = RealizationConfig::default();
    let m: Matrix = Matrix::zeros(2, 2);
    assert_eq!(m.rows(), 2);
    let _: Summary = Summary::from_samples(vec![1.0]);
    let _: OnlineStats = OnlineStats::new();
}

//! Reproducibility: every stochastic pipeline in the workspace must be a
//! pure function of its seed — across parallel/serial execution and across
//! repeated runs in one process.

use rds::prelude::*;

#[test]
fn instance_generation_is_seed_deterministic() {
    let a = InstanceSpec::new(40, 4).seed(123).build().unwrap();
    let b = InstanceSpec::new(40, 4).seed(123).build().unwrap();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.timing, b.timing);
    assert_eq!(a.platform, b.platform);
}

#[test]
fn monte_carlo_is_thread_count_independent() {
    let inst = InstanceSpec::new(30, 3).seed(5).build().unwrap();
    let heft = heft_schedule(&inst);
    let cfg_par = RealizationConfig::with_realizations(256).seed(9);
    let cfg_ser = RealizationConfig::with_realizations(256).seed(9).serial();
    let a = rds::sched::realization::realized_makespans(&inst, &heft.schedule, &cfg_par).unwrap();
    let b = rds::sched::realization::realized_makespans(&inst, &heft.schedule, &cfg_ser).unwrap();
    assert_eq!(a, b, "parallel and serial realizations must be identical");
}

#[test]
fn robust_solver_is_reproducible_end_to_end() {
    let inst = InstanceSpec::new(25, 3).seed(2).build().unwrap();
    let cfg = RobustConfig::quick(1.4).seed(31);
    let a = RobustScheduler::new(cfg).solve(&inst).unwrap();
    let b = RobustScheduler::new(cfg).solve(&inst).unwrap();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.report.r1, b.report.r1);
    assert_eq!(a.report.miss_rate, b.report.miss_rate);
    assert_eq!(a.ga.generations, b.ga.generations);
}

#[test]
fn different_seeds_explore_different_solutions() {
    let inst = InstanceSpec::new(25, 3).seed(2).build().unwrap();
    let a = RobustScheduler::new(RobustConfig::quick(1.4).seed(1))
        .solve(&inst)
        .unwrap();
    let b = RobustScheduler::new(RobustConfig::quick(1.4).seed(2))
        .solve(&inst)
        .unwrap();
    // Schedules may coincide by luck, but the full Monte Carlo trace
    // differs because realization seeds differ.
    assert!(
        a.schedule != b.schedule
            || a.report.mean_realized_makespan != b.report.mean_realized_makespan
    );
}

#[test]
fn epsilon_sweep_reproducible() {
    let inst = InstanceSpec::new(20, 2).seed(8).build().unwrap();
    let mut cfg = SweepConfig::quick().seed(4);
    cfg.realizations = 64;
    cfg.ga = cfg.ga.max_generations(15).stall_generations(10);
    let a = epsilon_sweep(&inst, &[1.0, 1.5], &cfg);
    let b = epsilon_sweep(&inst, &[1.0, 1.5], &cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.makespan, y.makespan);
        assert_eq!(x.avg_slack, y.avg_slack);
        assert_eq!(x.r1, y.r1);
    }
}

//! Property-based verification of the GA operators' structural guarantees
//! (§4.2.5–4.2.6): crossover and mutation always produce valid
//! chromosomes — topological scheduling strings and in-range assignments —
//! across arbitrary instances, seeds and cut points.

use proptest::prelude::*;

use rds::ga::chromosome::Chromosome;
use rds::ga::crossover::{crossover, crossover_at};
use rds::ga::mutation::mutate;
use rds::graph::is_topological_order;
use rds::prelude::*;
use rds::stats::rng::rng_from_seed;

fn build(seed: u64, tasks: usize, procs: usize) -> Instance {
    InstanceSpec::new(tasks, procs).seed(seed).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn crossover_preserves_validity_at_every_cut(
        seed in 0u64..300,
        tasks in 2usize..50,
        procs in 2usize..8,
        cut_seed in 0u64..1000,
    ) {
        let inst = build(seed, tasks, procs);
        let mut rng = rng_from_seed(seed ^ 0xC0FFEE);
        let p1 = Chromosome::random_for(&inst, &mut rng);
        let p2 = Chromosome::random_for(&inst, &mut rng);
        let cut_order = 1 + (cut_seed as usize % (tasks.max(2) - 1));
        let cut_assign = (cut_seed / 7) as usize % (tasks + 1);
        let (c1, c2) = crossover_at(&p1, &p2, cut_order.min(tasks), cut_assign);
        prop_assert!(c1.is_valid(&inst.graph, procs));
        prop_assert!(c2.is_valid(&inst.graph, procs));
        // Children are permutations of all tasks.
        prop_assert!(is_topological_order(&inst.graph, &c1.order));
        prop_assert!(is_topological_order(&inst.graph, &c2.order));
    }

    #[test]
    fn repeated_mutation_never_breaks_validity(
        seed in 0u64..300,
        tasks in 2usize..50,
        procs in 1usize..8,
        rounds in 1usize..40,
    ) {
        let inst = build(seed, tasks, procs);
        let mut rng = rng_from_seed(seed ^ 0xBEEF);
        let mut c = Chromosome::random_for(&inst, &mut rng);
        for _ in 0..rounds {
            mutate(&mut c, &inst.graph, procs, &mut rng);
            prop_assert!(c.is_valid(&inst.graph, procs));
        }
    }

    #[test]
    fn crossover_children_decode_to_valid_schedules(
        seed in 0u64..200,
        tasks in 2usize..40,
        procs in 2usize..6,
    ) {
        let inst = build(seed, tasks, procs);
        let mut rng = rng_from_seed(seed ^ 0xFEED);
        let p1 = Chromosome::random_for(&inst, &mut rng);
        let p2 = Chromosome::random_for(&inst, &mut rng);
        let (c1, c2) = crossover(&p1, &p2, &mut rng);
        for c in [&c1, &c2] {
            let s = c.decode(procs);
            prop_assert!(s.validate_against(&inst.graph).is_ok());
            // Decoding then re-encoding preserves the schedule.
            let re = Chromosome::from_schedule(&inst.graph, &s);
            prop_assert_eq!(re.decode(procs), s);
        }
    }

    #[test]
    fn chromosome_fingerprints_equal_iff_equal_on_small_space(
        seed in 0u64..100,
    ) {
        // On a tiny instance, draw chromosome pairs and check the
        // fingerprint respects equality (collision-freedom cannot be
        // proven, but equal inputs must hash equal and the test space is
        // small enough that collisions would show up as flakes).
        let inst = build(seed, 6, 2);
        let mut rng = rng_from_seed(seed);
        let a = Chromosome::random_for(&inst, &mut rng);
        let b = Chromosome::random_for(&inst, &mut rng);
        if a == b {
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        } else {
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }
    }
}

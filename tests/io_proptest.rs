//! Property tests of the plain-text serialization: arbitrary generated
//! instances and schedules must round-trip exactly.

use proptest::prelude::*;

use rds::ga::Chromosome;
use rds::prelude::*;
use rds::sched::io;
use rds::stats::rng::rng_from_seed;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn instance_roundtrip(seed in 0u64..1000, tasks in 1usize..60, procs in 1usize..9, ul in 1.5f64..8.0) {
        let inst = InstanceSpec::new(tasks, procs)
            .seed(seed)
            .uncertainty_level(ul)
            .build()
            .unwrap();
        let text = io::write_instance(&inst);
        let back = io::read_instance(&text).unwrap();
        prop_assert!(back.graph.same_structure(&inst.graph));
        prop_assert_eq!(back.timing.bcet_matrix(), inst.timing.bcet_matrix());
        prop_assert_eq!(back.timing.ul_matrix(), inst.timing.ul_matrix());
        // Text is a fixed point.
        prop_assert_eq!(io::write_instance(&back), text);
    }

    #[test]
    fn schedule_roundtrip(seed in 0u64..1000, tasks in 1usize..60, procs in 1usize..9) {
        let inst = InstanceSpec::new(tasks, procs).seed(seed).build().unwrap();
        let mut rng = rng_from_seed(seed ^ 0xAA);
        let schedule = Chromosome::random_for(&inst, &mut rng).decode(procs);
        let text = io::write_schedule(&schedule);
        let back = io::read_schedule(&text).unwrap();
        prop_assert_eq!(back, schedule);
    }

    #[test]
    fn roundtripped_instance_schedules_identically(seed in 0u64..300, tasks in 2usize..40) {
        // The real guarantee users need: scheduling the round-tripped
        // instance yields bit-identical results.
        let inst = InstanceSpec::new(tasks, 4).seed(seed).build().unwrap();
        let back = io::read_instance(&io::write_instance(&inst)).unwrap();
        let a = heft_schedule(&inst);
        let b = heft_schedule(&back);
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }
}

//! Property-based verification of the paper's formal claims:
//!
//! * Claim 3.2 — the makespan is the critical-path length of `G_s`;
//! * Theorem 3.4 — a single overrun within a task's slack never extends
//!   the makespan, and independent tasks' slacks are unaffected;
//! * Corollary 3.5 — several independent overruns within their own slacks
//!   never extend the makespan;
//! * Definition 3.3 consistency — slack is non-negative, zero on the
//!   critical path.

use proptest::prelude::*;

use rds::ga::chromosome::Chromosome;
use rds::prelude::*;
use rds::sched::disjunctive::DisjunctiveGraph;
use rds::sched::slack;
use rds::sched::timing::{evaluate_with_durations, expected_durations};
use rds::stats::rng::rng_from_seed;

/// Builds a random instance plus a random valid schedule for it.
fn setup(seed: u64, tasks: usize, procs: usize) -> (Instance, Schedule) {
    let inst = InstanceSpec::new(tasks, procs)
        .seed(seed)
        .uncertainty_level(4.0)
        .build()
        .unwrap();
    let mut rng = rng_from_seed(seed ^ 0xDEAD);
    let c = Chromosome::random_for(&inst, &mut rng);
    let s = c.decode(procs);
    (inst, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Claim 3.2: start-as-soon-as-ready timing equals the critical path of
    /// Gs, i.e. max over tasks of (Tl + duration + remaining Bl) — checked
    /// via the slack analysis makespan.
    #[test]
    fn claim_3_2_makespan_is_critical_path(seed in 0u64..500, tasks in 5usize..40, procs in 2usize..6) {
        let (inst, s) = setup(seed, tasks, procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let timed = evaluate_with_durations(&ds, &s, &inst.platform, &durations);
        let analysis = slack::analyze(&ds, &s, &inst.platform, &durations);
        prop_assert!((timed.makespan - analysis.makespan).abs() <= 1e-9 * timed.makespan.max(1.0));
        // Top level equals the earliest start everywhere.
        for i in 0..tasks {
            prop_assert!((analysis.top_level[i] - timed.start[i]).abs() <= 1e-9 * timed.makespan.max(1.0));
        }
    }

    /// Theorem 3.4, first part: inflating one task by δ ≤ σ keeps M.
    #[test]
    fn theorem_3_4_inflation_within_slack(seed in 0u64..500, tasks in 5usize..40, procs in 2usize..6, frac in 0.0f64..1.0) {
        let (inst, s) = setup(seed, tasks, procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let analysis = slack::analyze(&ds, &s, &inst.platform, &durations);
        // Pick the task with the largest slack (if all zero, nothing to test).
        let (victim, &sigma) = analysis
            .slack
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        prop_assume!(sigma > 1e-9);
        let mut inflated = durations.clone();
        inflated[victim] += frac * sigma;
        let m = evaluate_with_durations(&ds, &s, &inst.platform, &inflated).makespan;
        prop_assert!(
            m <= analysis.makespan * (1.0 + 1e-9),
            "inflating {victim} by {} <= slack {} extended makespan {} -> {}",
            frac * sigma, sigma, analysis.makespan, m
        );
    }

    /// Theorem 3.4, second part: the slack of tasks independent of the
    /// inflated one (in Gs) is unchanged.
    #[test]
    fn theorem_3_4_independent_slacks_unchanged(seed in 0u64..300, tasks in 5usize..30, procs in 2usize..5) {
        let (inst, s) = setup(seed, tasks, procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let analysis = slack::analyze(&ds, &s, &inst.platform, &durations);
        let (victim, &sigma) = analysis
            .slack
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        prop_assume!(sigma > 1e-9);
        let mut inflated = durations.clone();
        inflated[victim] += 0.5 * sigma;
        let after = slack::analyze(&ds, &s, &inst.platform, &inflated);
        let vt = TaskId(victim as u32);
        for i in 0..tasks {
            let ti = TaskId(i as u32);
            if ds.are_independent(vt, ti) {
                prop_assert!(
                    (after.slack[i] - analysis.slack[i]).abs() <= 1e-9 * analysis.makespan.max(1.0),
                    "independent task {i} slack changed {} -> {}",
                    analysis.slack[i], after.slack[i]
                );
            }
        }
    }

    /// Corollary 3.5: inflate EVERY task of a pairwise-independent set
    /// within its own slack; makespan must hold.
    #[test]
    fn corollary_3_5_independent_set_inflation(seed in 0u64..300, tasks in 6usize..30, procs in 2usize..5) {
        let (inst, s) = setup(seed, tasks, procs);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let durations = expected_durations(&inst.timing, &s);
        let analysis = slack::analyze(&ds, &s, &inst.platform, &durations);

        // Greedily build a pairwise-independent set of slack-bearing tasks.
        let mut chosen: Vec<usize> = Vec::new();
        for i in 0..tasks {
            if analysis.slack[i] <= 1e-9 {
                continue;
            }
            let ti = TaskId(i as u32);
            if chosen.iter().all(|&j| ds.are_independent(ti, TaskId(j as u32))) {
                chosen.push(i);
            }
        }
        prop_assume!(!chosen.is_empty());
        let mut inflated = durations.clone();
        for &i in &chosen {
            inflated[i] += analysis.slack[i]; // boundary case δ = σ
        }
        let m = evaluate_with_durations(&ds, &s, &inst.platform, &inflated).makespan;
        prop_assert!(
            m <= analysis.makespan * (1.0 + 1e-9),
            "inflating independent set {chosen:?} extended {} -> {}",
            analysis.makespan, m
        );
    }

    /// Definition 3.3 consistency: slacks are non-negative, the critical
    /// path has zero slack, and some task always has zero slack.
    #[test]
    fn slack_definition_consistency(seed in 0u64..500, tasks in 2usize..40, procs in 1usize..6) {
        let (inst, s) = setup(seed, tasks, procs);
        let a = slack::analyze_expected(&inst, &s).unwrap();
        prop_assert!(a.slack.iter().all(|&x| x >= 0.0));
        prop_assert!(!a.critical_tasks().is_empty(), "some task is always critical");
        prop_assert!(a.average_slack >= 0.0);
        prop_assert!(a.makespan > 0.0);
    }

    /// Realized makespans never undercut the all-BCET critical path and the
    /// expected makespan never undercuts any single realization's floor.
    #[test]
    fn realization_bounds(seed in 0u64..200, tasks in 5usize..25) {
        let (inst, s) = setup(seed, tasks, 3);
        let ds = DisjunctiveGraph::build(&inst.graph, &s).unwrap();
        let bcet: Vec<f64> = (0..tasks)
            .map(|i| inst.timing.best_case(i, s.proc_of(TaskId(i as u32))))
            .collect();
        let floor = evaluate_with_durations(&ds, &s, &inst.platform, &bcet).makespan;
        let mc = RealizationConfig::with_realizations(32).seed(seed);
        let ms = rds::sched::realization::realized_makespans_with(&inst, &s, &ds, &mc);
        for m in ms {
            prop_assert!(m >= floor - 1e-9);
        }
    }
}
